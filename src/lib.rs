//! # globe — consistent, replicated Web objects
//!
//! A Rust reproduction of *"A Framework for Consistent, Replicated Web
//! Objects"* (Kermarrec, Kuz, van Steen, Tanenbaum — ICDCS 1998): each
//! Web document is a distributed shared object that encapsulates its own
//! replication and coherence strategy, chosen per object from five
//! object-based coherence models, four client-based session guarantees,
//! and the full Table-1 implementation-parameter space.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`wire`] — the binary marshalling layer;
//! * [`net`] — deterministic virtual-time simulator + real TCP mesh;
//! * [`coherence`] — models, clocks, and execution-history checkers;
//! * [`naming`] — name space and replica location service;
//! * [`core`] — the object framework: semantics/replication/communication/
//!   control sub-objects, stores, binding, policies, runtimes;
//! * [`web`] — Web-document semantics, typed client, HTTP gateway;
//! * [`workload`] — scenario library, generators, and measurement.
//!
//! See the `examples/` directory for runnable walk-throughs, starting
//! with `quickstart.rs` (the paper's Fig. 1 in ~50 lines).
//!
//! # Examples
//!
//! ```
//! use globe::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = GlobeSim::new(Topology::wan(), 42);
//! let server = sim.add_node_in(RegionId::new(0));
//! let cache = sim.add_node_in(RegionId::new(1));
//! let object = ObjectSpec::new("/conf/icdcs98")
//!     .policy(ReplicationPolicy::conference_page())
//!     .semantics(WebSemantics::new)
//!     .store(server, StoreClass::Permanent)
//!     .store(cache, StoreClass::ClientInitiated)
//!     .create(&mut sim)?;
//! let mut master = WebClient::bind(
//!     &mut sim,
//!     object,
//!     cache,
//!     BindOptions::new().read_node(cache).guard(ClientModel::ReadYourWrites),
//! )?;
//! master.put_page("program.html", Page::html("<h2>Program</h2>"))?;
//! // Read-Your-Writes holds even though the cache has not been pushed yet.
//! let page = master.get_page("program.html")?.unwrap();
//! assert_eq!(&page.body[..], b"<h2>Program</h2>");
//! # Ok(())
//! # }
//! ```

pub use globe_coherence as coherence;
pub use globe_core as core;
pub use globe_naming as naming;
pub use globe_net as net;
pub use globe_web as web;
pub use globe_wire as wire;
pub use globe_workload as workload;

/// Everything the examples and most applications need.
pub mod prelude {
    pub use globe_coherence::{
        ClientModel, History, ModelCombination, ObjectModel, StoreClass, VersionVector, WriteId,
    };
    pub use globe_core::{
        AccessTransfer, BindOptions, CallError, ClientHandle, CoherenceTransfer, GlobeRuntime,
        GlobeSim, GlobeTcp, MethodKind, ObjectHandle, ObjectSpec, OutdateReaction, Propagation,
        ReplicationPolicy, RuntimeConfig, Semantics, StoreScope, TransferInitiative,
        TransferInstant, WriteChoice, WriteSet,
    };
    pub use globe_naming::{ObjectId, ObjectName};
    pub use globe_net::{LinkConfig, NodeId, RegionId, SimTime, Topology};
    pub use globe_web::{methods, Page, WebClient, WebDocument, WebSemantics};
    pub use globe_workload::{
        run_workload, Arrival, LatencySummary, SetupSpec, WorkloadOutcome, WorkloadSpec,
    };
}
