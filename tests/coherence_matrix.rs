//! The model matrix: every object-based coherence model runs the same
//! randomized multi-writer workload, and the recorded history must pass
//! its model's checker. Every client-based model is exercised on top of
//! a weaker object model and must hold for the guarded client.

use std::time::Duration;

use globe::prelude::*;
use globe::workload::{build, run_workload, SetupSpec, TopologyKind};

fn spec_for(model: ObjectModel, seed: u64) -> SetupSpec {
    let policy = ReplicationPolicy::builder(model)
        .immediate()
        .build()
        .expect("valid policy");
    SetupSpec {
        name: format!("/matrix/{}", model.paper_name()),
        topology: TopologyKind::Wan,
        mirrors: 1,
        caches: 2,
        readers: 4,
        writers: 2,
        policy,
        reader_guards: vec![],
        writer_guards: vec![],
        local_writes: false,
        seed,
    }
}

fn short_workload(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        duration: Duration::from_secs(30),
        drain: Duration::from_secs(15),
        pages: 5,
        zipf_theta: 0.8,
        page_bytes: 128,
        incremental: true,
        reader_arrival: Arrival::Poisson(1.0),
        writer_arrival: Arrival::Poisson(0.4),
        seed,
    }
}

#[test]
fn every_model_passes_its_checker() {
    for (seed, model) in [
        (10, ObjectModel::Sequential),
        (11, ObjectModel::Pram),
        (12, ObjectModel::Fifo),
        (13, ObjectModel::Causal),
        (14, ObjectModel::Eventual),
    ] {
        let mut instance = build(&spec_for(model, seed)).expect("setup");
        let outcome = run_workload(
            &mut instance.sim,
            &instance.readers,
            &instance.writers,
            &short_workload(seed),
        );
        assert!(outcome.reads_completed > 0, "{model}: no reads completed");
        assert_eq!(
            outcome.writes_completed, outcome.writes_issued,
            "{model}: writes lost on a clean network"
        );
        let history = instance.sim.history();
        let history = history.lock();
        globe::coherence::check::check_object_model(&history, model)
            .unwrap_or_else(|violation| panic!("{model} violated: {violation}"));
    }
}

#[test]
fn eventual_converges_for_every_model() {
    // Ordering models are also eventually convergent on a clean network
    // once traffic drains (single-ingress architecture).
    for (seed, model) in [
        (20, ObjectModel::Sequential),
        (21, ObjectModel::Pram),
        (23, ObjectModel::Causal),
        (24, ObjectModel::Eventual),
    ] {
        let mut instance = build(&spec_for(model, seed)).expect("setup");
        let _ = run_workload(
            &mut instance.sim,
            &instance.readers,
            &instance.writers,
            &short_workload(seed),
        );
        instance.sim.run_for(Duration::from_secs(10));
        instance.sim.finalize_digests();
        let history = instance.sim.history();
        let history = history.lock();
        globe::coherence::check::check_eventual(&history)
            .unwrap_or_else(|violation| panic!("{model} diverged: {violation}"));
    }
}

#[test]
fn every_guard_holds_on_weak_base_models() {
    // Each session guarantee is enforced on a base model that does NOT
    // subsume it, for both readers and writers.
    let cases = [
        (ObjectModel::Eventual, ClientModel::MonotonicWrites),
        (ObjectModel::Eventual, ClientModel::WritesFollowReads),
        (ObjectModel::Pram, ClientModel::ReadYourWrites),
        (ObjectModel::Pram, ClientModel::MonotonicReads),
        (ObjectModel::Fifo, ClientModel::ReadYourWrites),
        (ObjectModel::Eventual, ClientModel::MonotonicReads),
    ];
    for (round, (model, guard)) in cases.into_iter().enumerate() {
        let seed = 30 + round as u64;
        assert!(
            !model.subsumes(guard),
            "test must target non-subsumed combos"
        );
        let mut spec = spec_for(model, seed);
        spec.name = format!("/guards/{round}");
        spec.policy = ReplicationPolicy::builder(model)
            .lazy(Duration::from_secs(2))
            .client_outdate(OutdateReaction::Demand)
            .build()
            .expect("valid");
        spec.reader_guards = vec![guard];
        spec.writer_guards = vec![guard];
        let mut instance = build(&spec).expect("setup");
        let _ = run_workload(
            &mut instance.sim,
            &instance.readers,
            &instance.writers,
            &short_workload(seed),
        );
        let history = instance.sim.history();
        let history = history.lock();
        for handle in instance.readers.iter().chain(&instance.writers) {
            globe::coherence::check::check_session(&history, handle.client, guard).unwrap_or_else(
                |violation| {
                    panic!(
                        "{guard} on {model} violated for {}: {violation}",
                        handle.client
                    )
                },
            );
        }
    }
}

#[test]
fn subsumption_matrix_matches_enforcement() {
    // Sequential subsumes everything: the bind layer must strip guards.
    let policy = ReplicationPolicy::whiteboard();
    let mut sim = GlobeSim::new(Topology::lan(), 40);
    let server = sim.add_node();
    let object = ObjectSpec::new("/subsume")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .create(&mut sim)
        .expect("create");
    let handle = sim
        .bind(
            object,
            server,
            BindOptions::new()
                .read_node(server)
                .guard(ClientModel::ReadYourWrites)
                .guard(ClientModel::MonotonicReads)
                .guard(ClientModel::MonotonicWrites)
                .guard(ClientModel::WritesFollowReads),
        )
        .expect("bind");
    // All four guarantees hold without any guard machinery, because the
    // object model provides them.
    sim.handle(handle)
        .write(methods::put_page("p", &Page::html("v")))
        .expect("write");
    let _ = sim
        .handle(handle)
        .read(methods::get_page("p"))
        .expect("read");
    let history = sim.history();
    let history = history.lock();
    for &guard in ClientModel::ALL {
        globe::coherence::check::check_session(&history, handle.client, guard)
            .expect("sequential subsumes all session guarantees");
    }
}
