//! FIG2 — The layered store model as testable behaviour: deeper layers
//! answer faster but may be staler when the coherence scope excludes
//! them; widening the scope removes the staleness.

use std::time::Duration;

use globe::prelude::*;

fn build(scope: StoreScope, seed: u64) -> (GlobeSim, ObjectId, NodeId, NodeId, NodeId, NodeId) {
    let policy = ReplicationPolicy {
        store_scope: scope,
        lazy_period: Duration::from_secs(3),
        ..ReplicationPolicy::builder(ObjectModel::Pram)
            .immediate()
            .build()
            .expect("valid")
    };
    let mut sim = GlobeSim::new(Topology::wan(), seed);
    let server = sim.add_node_in(RegionId::new(0));
    let mirror = sim.add_node_in(RegionId::new(1));
    let cache = sim.add_node_in(RegionId::new(1));
    let client_site = sim.add_node_in(RegionId::new(1));
    let object = ObjectSpec::new("/layers/object")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create");
    (sim, object, server, mirror, cache, client_site)
}

#[test]
fn deeper_layers_are_faster_but_staler_out_of_scope() {
    let (mut sim, object, server, mirror, _cache, client_site) = build(StoreScope::Permanent, 60);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind master");
    let far_reader = sim
        .bind(object, client_site, BindOptions::new().read_node(server))
        .expect("bind far");
    let near_reader = sim
        .bind(object, client_site, BindOptions::new().read_node(mirror))
        .expect("bind near");

    sim.handle(master)
        .write(methods::put_page("page", &Page::html("v1")))
        .expect("write");

    // Immediately after the write: reading the server is slow but fresh.
    let ops_before = sim.metrics().lock().ops.len();
    let fresh = sim
        .handle(far_reader)
        .read(methods::get_page("page"))
        .expect("far read");
    let page: Option<Page> = globe_wire::from_bytes(&fresh).expect("decode");
    assert!(page.is_some(), "permanent store must be fresh");

    // Reading the nearby mirror is fast but stale (out of scope).
    let stale = sim
        .handle(near_reader)
        .read(methods::get_page("page"))
        .expect("near read");
    let page: Option<Page> = globe_wire::from_bytes(&stale).expect("decode");
    assert!(page.is_none(), "out-of-scope mirror lags the lazy flush");

    let metrics = sim.metrics();
    let metrics = metrics.lock();
    let latencies: Vec<Duration> = metrics.ops[ops_before..]
        .iter()
        .map(|op| op.latency())
        .collect();
    assert!(
        latencies[1] * 4 < latencies[0],
        "mirror read ({:?}) should be much faster than server read ({:?})",
        latencies[1],
        latencies[0]
    );
    drop(metrics);

    // After the lazy flush the mirror converges.
    sim.run_for(Duration::from_secs(4));
    let caught_up = sim
        .handle(near_reader)
        .read(methods::get_page("page"))
        .expect("near read 2");
    let page: Option<Page> = globe_wire::from_bytes(&caught_up).expect("decode");
    assert!(page.is_some(), "mirror must catch up after the flush");
}

#[test]
fn widening_scope_to_all_removes_the_staleness() {
    let (mut sim, object, server, mirror, cache, client_site) = build(StoreScope::All, 61);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind master");
    let near_reader = sim
        .bind(object, client_site, BindOptions::new().read_node(mirror))
        .expect("bind near");
    sim.handle(master)
        .write(methods::put_page("page", &Page::html("v1")))
        .expect("write");
    sim.run_for(Duration::from_millis(400)); // just the WAN hop
    let got = sim
        .handle(near_reader)
        .read(methods::get_page("page"))
        .expect("read");
    let page: Option<Page> = globe_wire::from_bytes(&got).expect("decode");
    assert!(page.is_some(), "in-scope mirror receives immediate pushes");
    // The cache layer too.
    let cache_version = sim.store_version(object, cache).expect("cache");
    assert_eq!(cache_version.get(master.client), 1);
}

#[test]
fn location_service_prefers_deeper_nearby_layers() {
    let (mut sim, object, server, mirror, _cache, client_site) = build(StoreScope::All, 62);
    let _ = (server, mirror);
    // Nearest-any-layer binding from region 1 must pick a region-1
    // replica, not the faraway server.
    let handle = sim
        .bind(object, client_site, BindOptions::new())
        .expect("bind nearest");
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind master");
    sim.handle(master)
        .write(methods::put_page("p", &Page::html("x")))
        .expect("write");
    sim.run_for(Duration::from_secs(1));
    let ops_before = sim.metrics().lock().ops.len();
    sim.handle(handle)
        .read(methods::get_page("p"))
        .expect("read");
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    let latency = metrics.ops[ops_before..]
        .iter()
        .find(|op| op.client == handle.client)
        .expect("read sample")
        .latency();
    assert!(
        latency < Duration::from_millis(60),
        "nearest binding should stay in-region, got {latency:?}"
    );
}
