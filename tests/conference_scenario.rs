//! FIG3/FIG4 — Asserts the paper's worked example produces exactly the
//! message flows of Fig. 4: WiD-tagged writes to the server, periodic
//! aggregated pushes to caches, and a demand-update when the master's
//! Read-Your-Writes requirement is violated at cache M.

use std::time::Duration;

use globe::prelude::*;

fn build() -> (GlobeSim, ObjectId, NodeId, NodeId, NodeId) {
    let mut sim = GlobeSim::new(Topology::wan(), 1998);
    let web_server = sim.add_node_in(RegionId::new(0));
    let cache_m = sim.add_node_in(RegionId::new(0));
    let cache_u = sim.add_node_in(RegionId::new(1));
    let mut policy = ReplicationPolicy::conference_page();
    policy.lazy_period = Duration::from_secs(5);
    let object = ObjectSpec::new("/conf/icdcs98/home")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(web_server, StoreClass::Permanent)
        .store(cache_m, StoreClass::ClientInitiated)
        .store(cache_u, StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create conference object");
    (sim, object, web_server, cache_m, cache_u)
}

#[test]
fn fig4_message_flow() {
    let (mut sim, object, _server, cache_m, cache_u) = build();
    let master = sim
        .bind(
            object,
            cache_m,
            BindOptions::new()
                .read_node(cache_m)
                .guard(ClientModel::ReadYourWrites),
        )
        .expect("bind master");
    let user = sim
        .bind(object, cache_u, BindOptions::new().read_node(cache_u))
        .expect("bind user");

    // Master writes twice (incremental updates with WiDs), then reads
    // through cache M before any push has happened.
    let mut m = sim.handle(master);
    m.write(methods::put_page("program.html", &Page::html("v1")))
        .expect("write 1");
    m.write(methods::patch_page("program.html", b" + keynote"))
        .expect("write 2");
    let seen = m
        .read(methods::get_page("program.html"))
        .expect("master read");
    let page: Option<Page> = globe_wire::from_bytes(&seen).expect("decode page");
    assert_eq!(
        page.expect("page present").body,
        bytes::Bytes::from("v1 + keynote"),
        "RYW: the master must see both of its writes"
    );

    // The user's early read sees nothing (lazy push still pending).
    let early = sim
        .handle(user)
        .read(methods::get_page("program.html"))
        .expect("user read");
    let page: Option<Page> = globe_wire::from_bytes(&early).expect("decode");
    assert!(page.is_none(), "cache U must still be stale");

    // After the periodic push, the user converges.
    sim.run_for(Duration::from_secs(6));
    let late = sim
        .handle(user)
        .read(methods::get_page("program.html"))
        .expect("user read 2");
    let page: Option<Page> = globe_wire::from_bytes(&late).expect("decode");
    assert_eq!(
        page.expect("pushed").body,
        bytes::Bytes::from("v1 + keynote")
    );

    // The exact Fig. 4 message kinds must all have been exercised.
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    for kind in [
        "WriteReq",
        "ReadReq",
        "Reply",
        "UpdateBatch",
        "DemandUpdate",
    ] {
        assert!(
            metrics.traffic.contains_key(kind),
            "expected {kind} in the flow; saw {:?}",
            metrics.traffic.keys().collect::<Vec<_>>()
        );
    }
    // Full access transfer: replies carry whole-document snapshots.
    assert!(metrics.traffic["Reply"].bytes > metrics.traffic["ReadReq"].bytes);
    drop(metrics);

    // And the history satisfies PRAM + RYW + convergence.
    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    globe::coherence::check::check_pram(&history).expect("pram");
    globe::coherence::check::check_read_your_writes(&history, master.client).expect("ryw");
    globe::coherence::check::check_eventual(&history).expect("convergence");
}

#[test]
fn table2_wait_reaction_keeps_server_passive() {
    // Object-outdate is `wait`: the server never demands, it just waits
    // for the next write; no DemandResend traffic should appear on a
    // clean network.
    let (mut sim, object, server, _cache_m, _cache_u) = build();
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind");
    for i in 0..5 {
        sim.handle(master)
            .write(methods::patch_page(
                "news.html",
                format!("item{i};").as_bytes(),
            ))
            .expect("write");
    }
    sim.run_for(Duration::from_secs(12));
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    assert!(
        !metrics.traffic.contains_key("DemandResend"),
        "wait reaction must not demand resends on a clean network"
    );
}

#[test]
fn user_cache_applies_pushes_in_wid_order() {
    let (mut sim, object, _server, cache_m, cache_u) = build();
    let master = sim
        .bind(object, cache_m, BindOptions::new().read_node(cache_m))
        .expect("bind");
    for i in 0..12 {
        sim.handle(master)
            .write(methods::patch_page(
                "program.html",
                format!("s{i};").as_bytes(),
            ))
            .expect("write");
        sim.run_for(Duration::from_millis(700));
    }
    sim.run_for(Duration::from_secs(8));
    // Cache U applied every write, in sequence-number order.
    let version = sim.store_version(object, cache_u).expect("cache U version");
    assert_eq!(version.get(master.client), 12);
    let history = sim.history();
    let history = history.lock();
    globe::coherence::check::check_pram(&history).expect("pram at caches");
}
