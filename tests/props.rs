//! Property tests over whole distributed executions: random workloads,
//! random (seeded) networks, arbitrary interleavings — the recorded
//! history must always satisfy the object's coherence model, and the
//! guarded clients' session guarantees must always hold.

use std::time::Duration;

use globe::prelude::*;
use proptest::prelude::*;

fn doc() -> Box<dyn globe::core::Semantics> {
    Box::new(WebSemantics::new())
}

#[derive(Debug, Clone)]
struct RandomRun {
    seed: u64,
    model: ObjectModel,
    jitter_ms: u64,
    fifo: bool,
    guards: Vec<ClientModel>,
    ops: Vec<(u8, u8, bool)>, // (client 0..3, page 0..3, is_write)
}

fn arb_run() -> impl Strategy<Value = RandomRun> {
    (
        any::<u64>(),
        prop::sample::select(vec![
            ObjectModel::Sequential,
            ObjectModel::Pram,
            ObjectModel::Fifo,
            ObjectModel::Causal,
            ObjectModel::Eventual,
        ]),
        0u64..60,
        any::<bool>(),
        prop::collection::vec(
            prop::sample::select(vec![
                ClientModel::ReadYourWrites,
                ClientModel::MonotonicReads,
                ClientModel::MonotonicWrites,
                ClientModel::WritesFollowReads,
            ]),
            0..3,
        ),
        prop::collection::vec((0u8..3, 0u8..3, any::<bool>()), 1..40),
    )
        .prop_map(|(seed, model, jitter_ms, fifo, guards, ops)| RandomRun {
            seed,
            model,
            jitter_ms,
            fifo,
            guards,
            ops,
        })
}

fn execute(run: &RandomRun) -> (GlobeSim, Vec<ClientHandle>, ObjectId) {
    let link = LinkConfig::new(Duration::from_millis(5))
        .with_jitter(Duration::from_millis(run.jitter_ms))
        .with_fifo(run.fifo);
    let policy = ReplicationPolicy::builder(run.model)
        .immediate()
        .build()
        .expect("valid");
    let mut sim = GlobeSim::new(Topology::uniform(link), run.seed);
    let server = sim.add_node();
    let caches = [sim.add_node(), sim.add_node()];
    let object = ObjectSpec::new("/prop/object")
        .policy(policy)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(caches[0], StoreClass::ClientInitiated)
        .store(caches[1], StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create");
    let nodes = [server, caches[0], caches[1]];
    let handles: Vec<ClientHandle> = (0..3)
        .map(|i| {
            let mut opts = BindOptions::new().read_node(nodes[i]);
            for &g in &run.guards {
                opts = opts.guard(g);
            }
            sim.bind(object, nodes[i], opts).expect("bind")
        })
        .collect();
    for &(client, page, is_write) in &run.ops {
        let handle = handles[client as usize];
        let page_name = format!("p{page}");
        if is_write {
            // Eventual coherence only promises convergence for
            // overwrite-style (LWW-able) writes; incremental patches are
            // non-commutative and need an ordering model.
            let inv = if run.model == ObjectModel::Eventual {
                methods::put_page(&page_name, &Page::html(format!("w{client};")))
            } else {
                methods::patch_page(&page_name, format!("w{client};").as_bytes())
            };
            let _ = sim.handle(handle).write(inv);
        } else {
            let _ = sim.handle(handle).read(methods::get_page(&page_name));
        }
        sim.run_for(Duration::from_millis(20));
    }
    sim.run_for(Duration::from_secs(10));
    sim.finalize_digests();
    (sim, handles, object)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the model, seed, jitter, and op mix: the model's own
    /// checker passes and read integrity holds.
    #[test]
    fn random_runs_satisfy_their_model(run in arb_run()) {
        let (sim, _handles, _object) = execute(&run);
        let _ = &_handles;
        let history = sim.history();
        let history = history.lock();
        globe::coherence::check::check_object_model(&history, run.model)
            .map_err(|v| TestCaseError::fail(format!("{} violated: {v}", run.model)))?;
        // Eventual resolves concurrent same-page writes by LWW, so its
        // visible value is the LWW winner, not the last applied write.
        let integrity = if run.model == ObjectModel::Eventual {
            globe::coherence::check::check_read_integrity_lww(&history)
        } else {
            globe::coherence::check::check_read_integrity(&history)
        };
        integrity.map_err(|v| TestCaseError::fail(format!("read integrity: {v}")))?;
        // Every requested session guarantee must have held for every
        // client (guards the object model subsumes hold a fortiori).
        for handle in &_handles {
            for &guard in &run.guards {
                globe::coherence::check::check_session(&history, handle.client, guard)
                    .map_err(|v| TestCaseError::fail(format!("{guard} violated: {v}")))?;
            }
        }
    }

    /// On FIFO lossless links, every model converges at quiescence.
    #[test]
    fn random_runs_converge(mut run in arb_run()) {
        run.fifo = true; // lossless FIFO: convergence must be exact
        let (sim, _handles, object) = execute(&run);
        let stores = sim.stores_of(object);
        let digests: Vec<Option<u64>> = stores
            .iter()
            .map(|(node, _, _)| sim.store_digest(object, *node))
            .collect();
        for pair in digests.windows(2) {
            prop_assert_eq!(pair[0], pair[1], "replicas diverged in {:?}", run.model);
        }
    }

    /// Identical runs are bit-for-bit reproducible.
    #[test]
    fn runs_are_deterministic(run in arb_run()) {
        let (sim_a, _, object_a) = execute(&run);
        let (sim_b, _, object_b) = execute(&run);
        prop_assert_eq!(sim_a.net_stats(), sim_b.net_stats());
        let ha = sim_a.history();
        let hb = sim_b.history();
        let (ha, hb) = (ha.lock(), hb.lock());
        prop_assert_eq!(ha.ops().len(), hb.ops().len());
        prop_assert_eq!(ha.applies().len(), hb.applies().len());
        let da: Vec<_> = sim_a.stores_of(object_a).iter().map(|(n, _, _)| sim_a.store_digest(object_a, *n)).collect();
        let db: Vec<_> = sim_b.stores_of(object_b).iter().map(|(n, _, _)| sim_b.store_digest(object_b, *n)).collect();
        prop_assert_eq!(da, db);
    }
}
