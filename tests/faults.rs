//! Fault injection across the facade: partitions, datagram loss, and
//! reordering, with recovery through the paper's outdate-reaction and
//! anti-entropy machinery.

use std::time::Duration;

use globe::prelude::*;

fn doc() -> Box<dyn globe::core::Semantics> {
    Box::new(WebSemantics::new())
}

#[test]
fn partitioned_mirror_catches_up_after_heal() {
    let policy = ReplicationPolicy::builder(ObjectModel::Eventual)
        .lazy(Duration::from_millis(500))
        .build()
        .expect("valid");
    let mut sim = GlobeSim::new(Topology::lan(), 50);
    let server = sim.add_node();
    let mirror = sim.add_node();
    let object = ObjectSpec::new("/faults/partition")
        .policy(policy)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .create(&mut sim)
        .expect("create");
    let writer = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind");

    sim.topology_mut().partition(server, mirror);
    for i in 0..5 {
        sim.handle(writer)
            .write(methods::put_page(&format!("p{i}"), &Page::html("cut off")))
            .expect("write during partition");
    }
    sim.run_for(Duration::from_secs(5));
    assert_ne!(
        sim.store_digest(object, mirror),
        sim.store_digest(object, server),
        "mirror cannot converge while partitioned"
    );

    sim.topology_mut().heal(server, mirror);
    sim.run_for(Duration::from_secs(5));
    assert_eq!(
        sim.store_digest(object, mirror),
        sim.store_digest(object, server),
        "anti-entropy must converge the mirror after healing"
    );
}

#[test]
fn repeated_partition_cycles_still_converge() {
    let policy = ReplicationPolicy::builder(ObjectModel::Eventual)
        .lazy(Duration::from_millis(300))
        .build()
        .expect("valid");
    let mut sim = GlobeSim::new(Topology::lan(), 51);
    let server = sim.add_node();
    let mirror = sim.add_node();
    let object = ObjectSpec::new("/faults/flap")
        .policy(policy)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .create(&mut sim)
        .expect("create");
    let writer = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind");
    for cycle in 0..4 {
        sim.topology_mut().partition(server, mirror);
        sim.handle(writer)
            .write(methods::put_page(
                "flapping",
                &Page::html(format!("cycle {cycle}")),
            ))
            .expect("write");
        sim.run_for(Duration::from_secs(1));
        sim.topology_mut().heal(server, mirror);
        sim.run_for(Duration::from_secs(1));
    }
    sim.run_for(Duration::from_secs(3));
    assert_eq!(
        sim.store_digest(object, mirror),
        sim.store_digest(object, server)
    );
}

#[test]
fn lossy_reordering_network_preserves_pram_and_converges() {
    // The §4.2 configuration: datagram links, loss, reordering; PRAM +
    // demand reaction recovers everything.
    let link = LinkConfig::new(Duration::from_millis(10))
        .with_loss(0.15)
        .with_jitter(Duration::from_millis(30))
        .with_fifo(false);
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .object_outdate(OutdateReaction::Demand)
        .build()
        .expect("valid");
    let mut sim = GlobeSim::new(Topology::uniform(link), 52);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/faults/udp")
        .policy(policy)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create");
    let writer = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind");
    for i in 0..25 {
        let _ = sim
            .handle(writer)
            .issue_write(methods::patch_page("log", format!("e{i};").as_bytes()));
        sim.run_for(Duration::from_millis(60));
    }
    sim.run_for(Duration::from_secs(60));
    sim.finalize_digests();

    let server_version = sim.store_version(object, server).expect("version");
    assert_eq!(
        server_version.get(writer.client),
        25,
        "client retransmission must deliver every write to the server"
    );
    assert_eq!(
        sim.store_digest(object, cache),
        sim.store_digest(object, server),
        "demand reaction must repair every lost update"
    );
    let history = sim.history();
    let history = history.lock();
    globe::coherence::check::check_pram(&history).expect("pram under loss");
}

#[test]
fn loss_on_read_path_is_survivable() {
    // Reads ride the same datagram links; the synchronous API surfaces a
    // timeout/stall rather than hanging, and a retry succeeds eventually.
    let link = LinkConfig::new(Duration::from_millis(5))
        .with_loss(0.3)
        .with_fifo(false);
    let policy = ReplicationPolicy::builder(ObjectModel::Eventual)
        .lazy(Duration::from_millis(200))
        .build()
        .expect("valid");
    let mut sim = GlobeSim::new(Topology::uniform(link), 53);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/faults/lossy-reads")
        .policy(policy)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create");
    let reader = sim
        .bind(object, cache, BindOptions::new().read_node(cache))
        .expect("bind");
    sim.set_call_timeout(Duration::from_secs(5));
    let mut successes = 0;
    for _ in 0..20 {
        if sim.handle(reader).read(methods::get_page("x")).is_ok() {
            successes += 1;
        }
    }
    assert!(
        successes >= 10,
        "at 30% loss, at least half the reads should still complete (got {successes})"
    );
}
