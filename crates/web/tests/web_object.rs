//! Integration tests of the Web layer: the typed client against live
//! replicated objects, multi-page documents, and the gateway under
//! concurrent load.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use globe_coherence::StoreClass;
use globe_core::{
    BindOptions, CallError, ClientHandle, GlobeRuntime, GlobeSim, ObjectSpec, ReplicationPolicy,
};
use globe_net::Topology;
use globe_web::{DocumentProvider, Gateway, Page, WebClient, WebDocument, WebSemantics, WebSpec};

fn setup() -> (GlobeSim, ClientHandle, ClientHandle) {
    let mut sim = GlobeSim::new(Topology::lan(), 7);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/web/test")
        .policy(
            ReplicationPolicy::builder(globe_coherence::ObjectModel::Pram)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap();
    let writer = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reader = sim
        .bind(object, cache, BindOptions::new().read_node(cache))
        .unwrap();
    (sim, writer, reader)
}

/// `ObjectSpec::web(..)` pre-sets `WebSemantics`, so a Web caller
/// cannot silently inherit the core `RegisterDoc` default and find out
/// at the first typed invocation.
#[test]
fn web_spec_constructor_presets_web_semantics() {
    let mut sim = GlobeSim::new(Topology::lan(), 8);
    let server = sim.add_node();
    let object = ObjectSpec::web("/web/spec")
        .policy(ReplicationPolicy::personal_home_page())
        .store(server, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    let handle = sim.bind(object, server, BindOptions::new()).unwrap();
    let mut client = WebClient::new(sim.handle(handle));
    // A typed Web invocation succeeds immediately: the semantics are
    // WebSemantics, not the core default.
    client
        .put_page("index.html", Page::html("<h1>typed</h1>"))
        .unwrap();
    assert_eq!(client.list_pages().unwrap(), vec!["index.html".to_string()]);
}

#[test]
fn full_document_lifecycle_through_the_typed_client() {
    let (mut sim, writer, reader) = setup();
    {
        let mut w = WebClient::attach(&mut sim, writer);
        w.put_page("index.html", Page::html("<h1>home</h1>"))
            .unwrap();
        w.put_page("logo.png", Page::with_type("image/png", vec![1u8, 2, 3]))
            .unwrap();
        w.patch_page("news.html", b"day 1; ").unwrap();
        w.patch_page("news.html", b"day 2;").unwrap();
    }
    sim.run_for(Duration::from_secs(1));

    {
        let mut r = WebClient::attach(&mut sim, reader);
        assert_eq!(
            r.list_pages().unwrap(),
            vec!["index.html", "logo.png", "news.html"]
        );
        let news = r.get_page("news.html").unwrap().unwrap();
        assert_eq!(&news.body[..], b"day 1; day 2;");
        let logo = r.get_page("logo.png").unwrap().unwrap();
        assert_eq!(logo.content_type, "image/png");

        let doc: WebDocument = r.get_document().unwrap();
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.total_bytes(), 13 + 3 + 13);
    }

    WebClient::attach(&mut sim, writer)
        .remove_page("logo.png")
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    let mut r = WebClient::attach(&mut sim, reader);
    assert!(r.get_page("logo.png").unwrap().is_none());
    assert_eq!(r.list_pages().unwrap().len(), 2);
}

#[test]
fn typed_client_surfaces_call_errors_across_partitions() {
    let (mut sim, writer, _) = setup();
    sim.set_call_timeout(Duration::from_secs(2));
    let stores: Vec<_> = sim.stores_of(writer.object);
    let (server_node, _, _) = stores[0];
    let (cache_node, _, _) = stores[1];
    sim.topology_mut().partition(server_node, cache_node);

    // The writer is co-located with the server: unaffected.
    WebClient::attach(&mut sim, writer)
        .put_page("p", Page::html("ok"))
        .expect("server-side write unaffected by the partition");

    // A client at the cache node reads locally (stale but served)…
    let cache_client = sim
        .bind(
            writer.object,
            cache_node,
            BindOptions::new().read_node(cache_node),
        )
        .unwrap();
    {
        let mut c = WebClient::attach(&mut sim, cache_client);
        assert!(
            c.get_page("p").unwrap().is_none(),
            "cache serves its (stale) local state during the partition"
        );
        // …but its writes must cross the partition to the home store: the
        // typed client surfaces the timeout instead of hanging.
        match c.put_page("mine", Page::html("x")) {
            Err(CallError::TimedOut) | Err(CallError::Stalled) => {}
            other => panic!("expected a stall across the partition, got {other:?}"),
        }
    }

    // After healing, the session's retransmission delivers the stuck
    // write and new operations flow again.
    sim.topology_mut().heal(server_node, cache_node);
    sim.run_for(Duration::from_secs(3));
    WebClient::attach(&mut sim, cache_client)
        .put_page("mine2", Page::html("y"))
        .expect("healed network: writes complete");
    sim.run_for(Duration::from_secs(1));
    let page = WebClient::attach(&mut sim, writer)
        .get_page("mine")
        .unwrap();
    assert!(
        page.is_some(),
        "the write stuck during the partition must be retransmitted"
    );
}

#[test]
fn gateway_serves_many_concurrent_clients() {
    let provider = DocumentProvider::new();
    let doc = provider.document();
    for i in 0..8 {
        doc.lock()
            .put(format!("p{i}.html"), Page::html(format!("body {i}")));
    }
    let mut gateway = Gateway::serve(provider).unwrap();
    let addr = gateway.addr();

    let mut handles = Vec::new();
    for i in 0..8 {
        handles.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET /p{i}.html HTTP/1.0\r\n\r\n").unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.0 200"), "{response}");
            assert!(response.contains(&format!("body {i}")));
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    gateway.shutdown();
}
