//! A minimal HTTP/1.0 gateway in front of a Web object.
//!
//! The paper's clients are "existing Web browsers" (§4.2): the prototype
//! bridges browser traffic onto the distributed object. This gateway does
//! the same: GET fetches a page through a [`PageProvider`], PUT stores
//! one. It speaks just enough HTTP/1.0 for browsers and `curl`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::{Page, WebDocument};

/// Source and sink of pages for the gateway.
pub trait PageProvider: Send + 'static {
    /// Fetches the page at `path` (no leading slash).
    fn fetch(&mut self, path: &str) -> Option<Page>;

    /// Stores a page; returns `false` if writes are not allowed.
    fn store(&mut self, path: &str, page: Page) -> bool;
}

/// A provider backed by a shared in-memory [`WebDocument`] (the replica a
/// gateway node holds).
#[derive(Debug, Clone, Default)]
pub struct DocumentProvider {
    doc: Arc<Mutex<WebDocument>>,
}

impl DocumentProvider {
    /// An empty shared document.
    pub fn new() -> Self {
        DocumentProvider::default()
    }

    /// The shared document handle.
    pub fn document(&self) -> Arc<Mutex<WebDocument>> {
        Arc::clone(&self.doc)
    }
}

impl PageProvider for DocumentProvider {
    fn fetch(&mut self, path: &str) -> Option<Page> {
        self.doc.lock().page(path).cloned()
    }

    fn store(&mut self, path: &str, page: Page) -> bool {
        self.doc.lock().put(path, page);
        true
    }
}

/// A running HTTP gateway.
#[derive(Debug)]
pub struct Gateway {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds `127.0.0.1:0` and serves `provider` on a background thread.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot be bound.
    pub fn serve<P: PageProvider>(provider: P) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let provider = Arc::new(Mutex::new(provider));
        let thread = std::thread::Builder::new()
            .name("globe-gateway".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = conn else { continue };
                    let provider = Arc::clone(&provider);
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, &provider);
                    });
                }
            })?;
        Ok(Gateway {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (e.g. to point a browser at).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection<P: PageProvider>(
    stream: TcpStream,
    provider: &Mutex<P>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let raw_path = parts.next().unwrap_or("/").to_string();
    let path = raw_path.trim_start_matches('/').to_string();

    let mut content_length = 0usize;
    let mut content_type = "text/html".to_string();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().unwrap_or(0),
                "content-type" => content_type = value.trim().to_string(),
                _ => {}
            }
        }
    }

    let mut stream = stream;
    match method.as_str() {
        "GET" => {
            let page = provider.lock().fetch(&path);
            match page {
                Some(page) => {
                    write!(
                        stream,
                        "HTTP/1.0 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\n\r\n",
                        page.content_type,
                        page.body.len()
                    )?;
                    stream.write_all(&page.body)?;
                }
                None => {
                    let body = b"<h1>404 Not Found</h1>";
                    write!(
                        stream,
                        "HTTP/1.0 404 Not Found\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n",
                        body.len()
                    )?;
                    stream.write_all(body)?;
                }
            }
        }
        "PUT" | "POST" => {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let stored = provider.lock().store(
                &path,
                Page {
                    content_type,
                    body: Bytes::from(body),
                },
            );
            if stored {
                write!(stream, "HTTP/1.0 204 No Content\r\n\r\n")?;
            } else {
                write!(stream, "HTTP/1.0 403 Forbidden\r\n\r\n")?;
            }
        }
        _ => {
            write!(stream, "HTTP/1.0 405 Method Not Allowed\r\n\r\n")?;
        }
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn get_put_and_404() {
        let provider = DocumentProvider::new();
        let doc = provider.document();
        doc.lock().put("index.html", Page::html("<h1>Globe</h1>"));
        let mut gateway = Gateway::serve(provider).unwrap();
        let addr = gateway.addr();

        let resp = http(addr, "GET /index.html HTTP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
        assert!(resp.contains("<h1>Globe</h1>"));

        let resp = http(addr, "GET /missing.html HTTP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 404"), "{resp}");

        let body = "<p>new</p>";
        let put = format!(
            "PUT /new.html HTTP/1.0\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = http(addr, &put);
        assert!(resp.starts_with("HTTP/1.0 204"), "{resp}");
        assert_eq!(
            doc.lock().page("new.html").unwrap().body,
            Bytes::from("<p>new</p>")
        );

        let resp = http(addr, "DELETE /x HTTP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");
        gateway.shutdown();
    }
}
