//! The Web-flavored [`ObjectSpec`] constructor.
//!
//! `globe-core`'s [`ObjectSpec::new`] defaults to the core
//! `RegisterDoc` semantics, which is convenient for protocol tests but
//! a trap for Web callers: forgetting `.semantics(WebSemantics::new)`
//! builds an object whose replicas reject every typed Web invocation —
//! discovered only at the first call. [`WebSpec::web`] closes that hole
//! without a breaking typestate rewrite: it is an `ObjectSpec`
//! constructor that pre-sets [`WebSemantics`], so a Web object cannot
//! silently inherit the wrong default.

use globe_core::ObjectSpec;

use crate::WebSemantics;

/// Extension constructor pre-setting [`WebSemantics`] on an
/// [`ObjectSpec`].
///
/// With this trait in scope, `ObjectSpec::web("/path")` reads exactly
/// like `ObjectSpec::new("/path")` but every replica gets a fresh
/// [`WebSemantics`] instance instead of the core default.
///
/// # Examples
///
/// ```
/// use globe_coherence::StoreClass;
/// use globe_core::{BindOptions, GlobeSim, ObjectSpec, ReplicationPolicy};
/// use globe_net::Topology;
/// use globe_web::{Page, WebClient, WebSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = GlobeSim::new(Topology::lan(), 21);
/// let server = sim.add_node();
/// let object = ObjectSpec::web("/home/carol")
///     .policy(ReplicationPolicy::personal_home_page())
///     .store(server, StoreClass::Permanent)
///     .create(&mut sim)?;
/// let mut carol = WebClient::bind(&mut sim, object, server, BindOptions::new())?;
/// carol.put_page("index.html", Page::html("<h1>carol</h1>"))?;
/// assert_eq!(carol.list_pages()?, vec!["index.html".to_string()]);
/// # Ok(())
/// # }
/// ```
pub trait WebSpec {
    /// Starts a spec for the Web object named `path`, with
    /// [`WebSemantics`] already set.
    fn web(path: impl Into<String>) -> ObjectSpec;
}

impl WebSpec for ObjectSpec {
    fn web(path: impl Into<String>) -> ObjectSpec {
        ObjectSpec::new(path).semantics(WebSemantics::new)
    }
}
