//! A typed client over a bound Web object.

use globe_core::{BindOptions, CallError, ClientHandle, GlobeRuntime, ObjectHandle, RuntimeError};
use globe_naming::ObjectId;
use globe_net::NodeId;

use crate::{methods, Page, WebDocument};

/// Typed wrapper translating Web-document method calls into marshalled
/// invocations on an [`ObjectHandle`] — the "browser side" of the
/// object, independent of which runtime (simulated or real sockets)
/// serves it.
///
/// # Examples
///
/// ```
/// use globe_coherence::StoreClass;
/// use globe_core::{BindOptions, GlobeSim, ObjectSpec, ReplicationPolicy};
/// use globe_net::Topology;
/// use globe_web::{Page, WebClient, WebSemantics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = GlobeSim::new(Topology::lan(), 1);
/// let server = sim.add_node();
/// let object = ObjectSpec::new("/home/page")
///     .policy(ReplicationPolicy::personal_home_page())
///     .semantics(WebSemantics::new)
///     .store(server, StoreClass::Permanent)
///     .create(&mut sim)?;
/// let mut client = WebClient::bind(&mut sim, object, server, BindOptions::new())?;
/// client.put_page("index.html", Page::html("<h1>hi</h1>"))?;
/// let page = client.get_page("index.html")?.unwrap();
/// assert_eq!(page.body, bytes::Bytes::from("<h1>hi</h1>"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WebClient<'r, R: GlobeRuntime> {
    handle: ObjectHandle<'r, R>,
}

impl<'r, R: GlobeRuntime> WebClient<'r, R> {
    /// Wraps an already-acquired object handle.
    pub fn new(handle: ObjectHandle<'r, R>) -> Self {
        WebClient { handle }
    }

    /// Binds a fresh client session in `node` and wraps it.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object/node is unknown or the
    /// requested replica does not exist.
    pub fn bind(
        rt: &'r mut R,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<Self, RuntimeError> {
        Ok(WebClient {
            handle: rt.bind_handle(object, node, opts)?,
        })
    }

    /// Re-wraps an existing binding (no new session is created) — the
    /// way to speak for one of several clients in turn.
    pub fn attach(rt: &'r mut R, client: ClientHandle) -> Self {
        WebClient {
            handle: rt.handle(client),
        }
    }

    /// The underlying client binding.
    pub fn client(&self) -> ClientHandle {
        self.handle.client()
    }

    /// Fetches one page.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails or the reply cannot be
    /// decoded.
    pub fn get_page(&mut self, path: &str) -> Result<Option<Page>, CallError> {
        let reply = self.handle.read(methods::get_page(path))?;
        globe_wire::from_bytes(&reply).map_err(|e| CallError::Semantics(e.to_string()))
    }

    /// Replaces one page.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails.
    pub fn put_page(&mut self, path: &str, page: Page) -> Result<(), CallError> {
        self.handle.write(methods::put_page(path, &page))?;
        Ok(())
    }

    /// Appends to one page (the incremental update of the paper's
    /// conference Web master).
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails.
    pub fn patch_page(&mut self, path: &str, extra: &[u8]) -> Result<(), CallError> {
        self.handle.write(methods::patch_page(path, extra))?;
        Ok(())
    }

    /// Removes one page.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails.
    pub fn remove_page(&mut self, path: &str) -> Result<(), CallError> {
        self.handle.write(methods::remove_page(path))?;
        Ok(())
    }

    /// Lists page paths.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails or the reply cannot be
    /// decoded.
    pub fn list_pages(&mut self) -> Result<Vec<String>, CallError> {
        let reply = self.handle.read(methods::list_pages())?;
        globe_wire::from_bytes(&reply).map_err(|e| CallError::Semantics(e.to_string()))
    }

    /// Fetches the whole document.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails or the reply cannot be
    /// decoded.
    pub fn get_document(&mut self) -> Result<WebDocument, CallError> {
        let reply = self.handle.read(methods::get_document())?;
        globe_wire::from_bytes(&reply).map_err(|e| CallError::Semantics(e.to_string()))
    }
}
