//! A typed client over a bound Web object.

use globe_core::{CallError, ClientHandle, GlobeSim};

use crate::{methods, Page, WebDocument};

/// Typed wrapper translating Web-document method calls into marshalled
/// invocations on a [`ClientHandle`] — the "browser side" of the object.
///
/// # Examples
///
/// ```
/// use globe_coherence::StoreClass;
/// use globe_core::{BindOptions, GlobeSim, ReplicationPolicy};
/// use globe_net::Topology;
/// use globe_web::{Page, WebClient, WebSemantics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = GlobeSim::new(Topology::lan(), 1);
/// let server = sim.add_node();
/// let object = sim.create_object(
///     "/home/page",
///     ReplicationPolicy::personal_home_page(),
///     &mut || Box::new(WebSemantics::new()),
///     &[(server, StoreClass::Permanent)],
/// )?;
/// let handle = sim.bind(object, server, BindOptions::new())?;
/// let client = WebClient::new(handle);
/// client.put_page(&mut sim, "index.html", Page::html("<h1>hi</h1>"))?;
/// let page = client.get_page(&mut sim, "index.html")?.unwrap();
/// assert_eq!(page.body, bytes::Bytes::from("<h1>hi</h1>"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WebClient {
    handle: ClientHandle,
}

impl WebClient {
    /// Wraps a bound handle.
    pub fn new(handle: ClientHandle) -> Self {
        WebClient { handle }
    }

    /// The underlying handle.
    pub fn handle(&self) -> ClientHandle {
        self.handle
    }

    /// Fetches one page.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails or the reply cannot be
    /// decoded.
    pub fn get_page(&self, sim: &mut GlobeSim, path: &str) -> Result<Option<Page>, CallError> {
        let reply = sim.read(&self.handle, methods::get_page(path))?;
        globe_wire::from_bytes(&reply).map_err(|e| CallError::Semantics(e.to_string()))
    }

    /// Replaces one page.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails.
    pub fn put_page(&self, sim: &mut GlobeSim, path: &str, page: Page) -> Result<(), CallError> {
        sim.write(&self.handle, methods::put_page(path, &page))?;
        Ok(())
    }

    /// Appends to one page (the incremental update of the paper's
    /// conference Web master).
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails.
    pub fn patch_page(&self, sim: &mut GlobeSim, path: &str, extra: &[u8]) -> Result<(), CallError> {
        sim.write(&self.handle, methods::patch_page(path, extra))?;
        Ok(())
    }

    /// Removes one page.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails.
    pub fn remove_page(&self, sim: &mut GlobeSim, path: &str) -> Result<(), CallError> {
        sim.write(&self.handle, methods::remove_page(path))?;
        Ok(())
    }

    /// Lists page paths.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails or the reply cannot be
    /// decoded.
    pub fn list_pages(&self, sim: &mut GlobeSim) -> Result<Vec<String>, CallError> {
        let reply = sim.read(&self.handle, methods::list_pages())?;
        globe_wire::from_bytes(&reply).map_err(|e| CallError::Semantics(e.to_string()))
    }

    /// Fetches the whole document.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails or the reply cannot be
    /// decoded.
    pub fn get_document(&self, sim: &mut GlobeSim) -> Result<WebDocument, CallError> {
        let reply = sim.read(&self.handle, methods::get_document())?;
        globe_wire::from_bytes(&reply).map_err(|e| CallError::Semantics(e.to_string()))
    }
}
