//! The Web document as a Globe semantics object.

use bytes::Bytes;
use globe_coherence::PageKey;
use globe_core::{InvocationMessage, MethodId, MethodKind, Semantics, SemanticsError};

use crate::{methods, Page, WebDocument};

/// [`Semantics`] implementation wrapping a [`WebDocument`].
///
/// Install it on any runtime through the object builder:
/// `ObjectSpec::new(path).semantics(WebSemantics::new)` hands each
/// replica its own fresh instance.
///
/// # Examples
///
/// ```
/// use globe_core::Semantics;
/// use globe_web::{methods, Page, WebSemantics};
///
/// let mut sem = WebSemantics::new();
/// sem.dispatch(&methods::put_page("index.html", &Page::html("<p>hi</p>"))).unwrap();
/// let reply = sem.dispatch(&methods::get_page("index.html")).unwrap();
/// let page: Option<Page> = globe_wire::from_bytes(&reply).unwrap();
/// assert_eq!(page.unwrap().body, bytes::Bytes::from("<p>hi</p>"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WebSemantics {
    doc: WebDocument,
}

impl WebSemantics {
    /// An empty document.
    pub fn new() -> Self {
        WebSemantics::default()
    }

    /// Wraps an existing document (e.g. pre-seeded content).
    pub fn with_document(doc: WebDocument) -> Self {
        WebSemantics { doc }
    }

    /// Read access to the underlying document.
    pub fn document(&self) -> &WebDocument {
        &self.doc
    }

    fn bad_args(e: globe_wire::WireError) -> SemanticsError {
        SemanticsError::BadArguments(e.to_string())
    }
}

impl Semantics for WebSemantics {
    fn dispatch(&mut self, inv: &InvocationMessage) -> Result<Bytes, SemanticsError> {
        match inv.method {
            methods::GET_PAGE => {
                let path: String = globe_wire::from_bytes(&inv.args).map_err(Self::bad_args)?;
                let page = self.doc.page(&path).cloned();
                Ok(globe_wire::to_bytes(&page))
            }
            methods::PUT_PAGE => {
                let (path, page): (String, Page) =
                    globe_wire::from_bytes(&inv.args).map_err(Self::bad_args)?;
                self.doc.put(path, page);
                Ok(Bytes::new())
            }
            methods::PATCH_PAGE => {
                let (path, extra): (String, Bytes) =
                    globe_wire::from_bytes(&inv.args).map_err(Self::bad_args)?;
                self.doc.append(&path, &extra);
                Ok(Bytes::new())
            }
            methods::REMOVE_PAGE => {
                let path: String = globe_wire::from_bytes(&inv.args).map_err(Self::bad_args)?;
                self.doc.remove(&path);
                Ok(Bytes::new())
            }
            methods::LIST_PAGES => {
                let paths: Vec<String> = self.doc.paths().map(String::from).collect();
                Ok(globe_wire::to_bytes(&paths))
            }
            methods::GET_DOCUMENT => Ok(globe_wire::to_bytes(&self.doc)),
            other => Err(SemanticsError::UnknownMethod(other)),
        }
    }

    fn method_kind(&self, method: MethodId) -> MethodKind {
        match method {
            methods::PUT_PAGE | methods::PATCH_PAGE | methods::REMOVE_PAGE => MethodKind::Write,
            _ => MethodKind::Read,
        }
    }

    fn part_of(&self, inv: &InvocationMessage) -> Option<PageKey> {
        match inv.method {
            methods::GET_PAGE | methods::REMOVE_PAGE => {
                globe_wire::from_bytes::<String>(&inv.args).ok()
            }
            methods::PUT_PAGE => globe_wire::from_bytes::<(String, Page)>(&inv.args)
                .ok()
                .map(|(p, _)| p),
            methods::PATCH_PAGE => globe_wire::from_bytes::<(String, Bytes)>(&inv.args)
                .ok()
                .map(|(p, _)| p),
            _ => None,
        }
    }

    fn snapshot(&self) -> Bytes {
        globe_wire::to_bytes(&self.doc)
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), SemanticsError> {
        self.doc = globe_wire::from_bytes(snapshot)
            .map_err(|e| SemanticsError::BadState(e.to_string()))?;
        Ok(())
    }

    fn digest(&self) -> u64 {
        globe_coherence::fnv1a(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_interface_roundtrip() {
        let mut sem = WebSemantics::new();
        sem.dispatch(&methods::put_page("a.html", &Page::html("alpha")))
            .unwrap();
        sem.dispatch(&methods::patch_page("a.html", b" beta"))
            .unwrap();
        let page: Option<Page> =
            globe_wire::from_bytes(&sem.dispatch(&methods::get_page("a.html")).unwrap()).unwrap();
        assert_eq!(page.unwrap().body, Bytes::from("alpha beta"));
        let listed: Vec<String> =
            globe_wire::from_bytes(&sem.dispatch(&methods::list_pages()).unwrap()).unwrap();
        assert_eq!(listed, vec!["a.html"]);
        let doc: WebDocument =
            globe_wire::from_bytes(&sem.dispatch(&methods::get_document()).unwrap()).unwrap();
        assert_eq!(doc.len(), 1);
        sem.dispatch(&methods::remove_page("a.html")).unwrap();
        assert!(sem.document().is_empty());
    }

    #[test]
    fn missing_page_is_none_not_error() {
        let mut sem = WebSemantics::new();
        let page: Option<Page> =
            globe_wire::from_bytes(&sem.dispatch(&methods::get_page("nope")).unwrap()).unwrap();
        assert!(page.is_none());
    }

    #[test]
    fn kinds_and_parts() {
        let sem = WebSemantics::new();
        assert_eq!(sem.method_kind(methods::PUT_PAGE), MethodKind::Write);
        assert_eq!(sem.method_kind(methods::PATCH_PAGE), MethodKind::Write);
        assert_eq!(sem.method_kind(methods::REMOVE_PAGE), MethodKind::Write);
        assert_eq!(sem.method_kind(methods::GET_PAGE), MethodKind::Read);
        assert_eq!(sem.method_kind(methods::LIST_PAGES), MethodKind::Read);
        assert_eq!(
            sem.part_of(&methods::patch_page("x.html", b"y")).as_deref(),
            Some("x.html")
        );
        assert_eq!(sem.part_of(&methods::list_pages()), None);
        assert_eq!(sem.part_of(&methods::get_document()), None);
    }

    #[test]
    fn snapshot_restore_digest_stability() {
        let mut a = WebSemantics::new();
        a.dispatch(&methods::put_page("p", &Page::html("v")))
            .unwrap();
        let mut b = WebSemantics::new();
        b.restore(&a.snapshot()).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert!(b.restore(b"\xff").is_err());
    }

    #[test]
    fn writes_are_deterministic_across_replicas() {
        // Same invocation stream, same final digest — the property
        // replication relies on.
        let stream = [
            methods::put_page("a", &Page::html("1")),
            methods::patch_page("a", b"2"),
            methods::put_page("b", &Page::with_type("text/plain", "x")),
            methods::remove_page("b"),
        ];
        let mut r1 = WebSemantics::new();
        let mut r2 = WebSemantics::new();
        for inv in &stream {
            r1.dispatch(inv).unwrap();
            r2.dispatch(inv).unwrap();
        }
        assert_eq!(r1.digest(), r2.digest());
    }
}
