//! The Web object's interface: method ids and marshalled invocations.
//!
//! "An interface of a Web object consists of a method for selecting a
//! page, and reading it in HTML format … Likewise, we offer a method for
//! replacing one of the document's pages" (§2). Plus the incremental
//! patch method the conference example's Web master uses, and
//! housekeeping methods.

use bytes::Bytes;
use globe_core::{InvocationMessage, MethodId};
use globe_wire::{to_bytes, WireEncode};

/// `get_page(path) -> Option<Page>` — read.
pub const GET_PAGE: MethodId = MethodId::new(0);
/// `put_page(path, page)` — write (replaces the page).
pub const PUT_PAGE: MethodId = MethodId::new(1);
/// `patch_page(path, bytes)` — write (appends; the incremental update).
pub const PATCH_PAGE: MethodId = MethodId::new(2);
/// `remove_page(path)` — write.
pub const REMOVE_PAGE: MethodId = MethodId::new(3);
/// `list_pages() -> Vec<String>` — read.
pub const LIST_PAGES: MethodId = MethodId::new(4);
/// `get_document() -> WebDocument` — read (whole document).
pub const GET_DOCUMENT: MethodId = MethodId::new(5);

/// Builds a `get_page` invocation.
pub fn get_page(path: &str) -> InvocationMessage {
    InvocationMessage::new(GET_PAGE, to_bytes(path))
}

/// Builds a `put_page` invocation.
pub fn put_page(path: &str, page: &crate::Page) -> InvocationMessage {
    let args = (path.to_string(), page.clone());
    let mut buf = Vec::with_capacity(args.encoded_len());
    args.encode(&mut buf);
    InvocationMessage::new(PUT_PAGE, Bytes::from(buf))
}

/// Builds a `patch_page` invocation.
pub fn patch_page(path: &str, extra: &[u8]) -> InvocationMessage {
    let args = (path.to_string(), Bytes::copy_from_slice(extra));
    let mut buf = Vec::with_capacity(args.encoded_len());
    args.encode(&mut buf);
    InvocationMessage::new(PATCH_PAGE, Bytes::from(buf))
}

/// Builds a `remove_page` invocation.
pub fn remove_page(path: &str) -> InvocationMessage {
    InvocationMessage::new(REMOVE_PAGE, to_bytes(path))
}

/// Builds a `list_pages` invocation.
pub fn list_pages() -> InvocationMessage {
    InvocationMessage::new(LIST_PAGES, Bytes::new())
}

/// Builds a `get_document` invocation.
pub fn get_document() -> InvocationMessage {
    InvocationMessage::new(GET_DOCUMENT, Bytes::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Page;

    #[test]
    fn constructors_use_distinct_methods() {
        let ids = [
            get_page("a").method,
            put_page("a", &Page::html("x")).method,
            patch_page("a", b"x").method,
            remove_page("a").method,
            list_pages().method,
            get_document().method,
        ];
        let mut dedup = ids.to_vec();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
