//! Web documents: the state a Web object encapsulates.
//!
//! "A Web document consists of a collection of HTML pages, together with
//! files for images, applets, etc., which jointly comprise the state of
//! the distributed shared object" (§2).

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes};
use globe_wire::{WireDecode, WireEncode, WireError};

/// One page (or embedded resource) of a Web document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// MIME type, e.g. `text/html`.
    pub content_type: String,
    /// Raw body bytes.
    pub body: Bytes,
}

impl Page {
    /// An HTML page.
    pub fn html(body: impl Into<Bytes>) -> Self {
        Page {
            content_type: "text/html".to_string(),
            body: body.into(),
        }
    }

    /// A page with an explicit content type.
    pub fn with_type(content_type: &str, body: impl Into<Bytes>) -> Self {
        Page {
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }
}

impl WireEncode for Page {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.content_type.encode(buf);
        self.body.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.content_type.encoded_len() + self.body.encoded_len()
    }
}

impl WireDecode for Page {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(Page {
            content_type: String::decode(buf)?,
            body: Bytes::decode(buf)?,
        })
    }
}

/// The complete page set of a Web document.
///
/// # Examples
///
/// ```
/// use globe_web::{Page, WebDocument};
///
/// let mut doc = WebDocument::new();
/// doc.put("index.html", Page::html("<h1>ICDCS'98</h1>"));
/// assert_eq!(doc.len(), 1);
/// assert!(doc.page("index.html").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WebDocument {
    pages: BTreeMap<String, Page>,
}

impl WebDocument {
    /// An empty document.
    pub fn new() -> Self {
        WebDocument::default()
    }

    /// Looks up a page.
    pub fn page(&self, path: &str) -> Option<&Page> {
        self.pages.get(path)
    }

    /// Inserts or replaces a page, returning the previous one.
    pub fn put(&mut self, path: impl Into<String>, page: Page) -> Option<Page> {
        self.pages.insert(path.into(), page)
    }

    /// Appends bytes to a page's body, creating the page (as HTML) if
    /// absent. This is the paper's *incremental update*.
    pub fn append(&mut self, path: &str, extra: &[u8]) {
        match self.pages.get_mut(path) {
            Some(page) => {
                let mut body = Vec::with_capacity(page.body.len() + extra.len());
                body.extend_from_slice(&page.body);
                body.extend_from_slice(extra);
                page.body = Bytes::from(body);
            }
            None => {
                self.pages
                    .insert(path.to_string(), Page::html(Bytes::copy_from_slice(extra)));
            }
        }
    }

    /// Removes a page.
    pub fn remove(&mut self, path: &str) -> Option<Page> {
        self.pages.remove(path)
    }

    /// Page paths, in order.
    pub fn paths(&self) -> impl Iterator<Item = &str> + '_ {
        self.pages.keys().map(String::as_str)
    }

    /// Iterates over `(path, page)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Page)> + '_ {
        self.pages.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the document has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total body bytes across all pages.
    pub fn total_bytes(&self) -> usize {
        self.pages.values().map(|p| p.body.len()).sum()
    }
}

impl WireEncode for WebDocument {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.pages.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.pages.encoded_len()
    }
}

impl WireDecode for WebDocument {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(WebDocument {
            pages: BTreeMap::decode(buf)?,
        })
    }
}

impl FromIterator<(String, Page)> for WebDocument {
    fn from_iter<I: IntoIterator<Item = (String, Page)>>(iter: I) -> Self {
        WebDocument {
            pages: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let mut doc = WebDocument::new();
        assert!(doc.put("a.html", Page::html("one")).is_none());
        assert!(doc.put("a.html", Page::html("two")).is_some());
        assert_eq!(doc.page("a.html").unwrap().body, Bytes::from("two"));
        assert_eq!(doc.remove("a.html").unwrap().body, Bytes::from("two"));
        assert!(doc.is_empty());
    }

    #[test]
    fn append_is_incremental() {
        let mut doc = WebDocument::new();
        doc.append("news.html", b"first. ");
        doc.append("news.html", b"second.");
        assert_eq!(
            doc.page("news.html").unwrap().body,
            Bytes::from("first. second.")
        );
    }

    #[test]
    fn accounting() {
        let mut doc = WebDocument::new();
        doc.put("a", Page::html("12345"));
        doc.put("b", Page::with_type("image/png", vec![0u8; 10]));
        assert_eq!(doc.len(), 2);
        assert_eq!(doc.total_bytes(), 15);
        assert_eq!(doc.paths().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn wire_roundtrip() {
        let mut doc = WebDocument::new();
        doc.put("index.html", Page::html("<p>hi</p>"));
        doc.put("logo.png", Page::with_type("image/png", vec![1, 2, 3]));
        let bytes = globe_wire::to_bytes(&doc);
        assert_eq!(globe_wire::from_bytes::<WebDocument>(&bytes).unwrap(), doc);
    }
}
