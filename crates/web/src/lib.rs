//! Web documents as Globe distributed shared objects.
//!
//! This crate supplies the Web-specific pieces of the ICDCS'98 framework:
//! the document state model ([`WebDocument`]), its semantics object
//! ([`WebSemantics`]) exposing the paper's page interface (get / put /
//! incremental patch / remove / list / whole document), a typed client
//! ([`WebClient`]) for bound handles, and a small HTTP/1.0 gateway so
//! "existing Web browsers" can front a replica, as in the prototype.
//!
//! The client surface is runtime-agnostic: [`WebClient`] wraps a
//! `globe_core::ObjectHandle`, so the same code drives a simulated or a
//! real-socket deployment without threading `&mut runtime` through each
//! call.
//!
//! # Examples
//!
//! ```
//! use globe_coherence::StoreClass;
//! use globe_core::{BindOptions, GlobeSim, ObjectSpec, ReplicationPolicy};
//! use globe_net::Topology;
//! use globe_web::{Page, WebClient, WebSemantics};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = GlobeSim::new(Topology::wan(), 3);
//! let server = sim.add_node();
//! let cache = sim.add_node();
//! let object = ObjectSpec::new("/conf/icdcs98")
//!     .policy(ReplicationPolicy::conference_page())
//!     .semantics(WebSemantics::new)
//!     .store(server, StoreClass::Permanent)
//!     .store(cache, StoreClass::ClientInitiated)
//!     .create(&mut sim)?;
//! let mut master = WebClient::bind(&mut sim, object, server,
//!     BindOptions::new().read_node(server))?;
//! master.put_page("cfp.html", Page::html("<h1>Call for papers</h1>"))?;
//! assert_eq!(master.list_pages()?, vec!["cfp.html".to_string()]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod client;
mod document;
pub mod gateway;
pub mod methods;
mod semantics;
mod spec;

pub use client::WebClient;
pub use document::{Page, WebDocument};
pub use gateway::{DocumentProvider, Gateway, PageProvider};
pub use semantics::WebSemantics;
pub use spec::WebSpec;
