//! ASCII table rendering for experiment output.

use std::fmt;
use std::time::Duration;

/// A titled table of string cells, rendered in the style of the paper's
/// tables.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(total.min(100)))?;
        write!(f, "|")?;
        for (col, width) in self.columns.iter().zip(&widths) {
            write!(f, " {col:width$} |")?;
        }
        writeln!(f)?;
        write!(f, "|")?;
        for width in &widths {
            write!(f, "{}|", "-".repeat(width + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, width) in row.iter().zip(&widths) {
                write!(f, " {cell:width$} |")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats a duration compactly (µs/ms/s as appropriate).
pub fn fmt_duration(d: Duration) -> String {
    if d < Duration::from_millis(1) {
        format!("{}us", d.as_micros())
    } else if d < Duration::from_secs(1) {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

/// Formats a float with two decimals.
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats bytes with a unit.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes < 10_000 {
        format!("{bytes}B")
    } else if bytes < 10_000_000 {
        format!("{:.1}KB", bytes as f64 / 1e3)
    } else {
        format!("{:.1}MB", bytes as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("| a-much-longer-name | 2"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_export() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("x", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_bytes(42), "42B");
        assert_eq!(fmt_bytes(150_000), "150.0KB");
        assert_eq!(fmt_bytes(15_000_000), "15.0MB");
        assert_eq!(fmt_f64(1.234), "1.23");
    }
}
