//! Shared experiment runner: one configuration in, one outcome row out.

use std::time::Duration;

use globe_core::ReplicationPolicy;
use globe_workload::{
    build, run_workload, Arrival, SetupSpec, TopologyKind, WorkloadOutcome, WorkloadSpec,
};

use crate::{fmt_bytes, fmt_duration, fmt_f64, Table};

/// A complete experiment configuration: deployment plus workload.
#[derive(Debug, Clone)]
pub struct Config {
    /// Deployment shape.
    pub setup: SetupSpec,
    /// Workload parameters.
    pub workload: WorkloadSpec,
}

impl Config {
    /// The default magazine-style configuration used by the Table-1
    /// sweeps: one server, one mirror, two caches, four readers, one
    /// writer, WAN topology.
    pub fn baseline(policy: ReplicationPolicy, seed: u64) -> Self {
        Config {
            setup: SetupSpec {
                name: "/bench/object".to_string(),
                topology: TopologyKind::Wan,
                mirrors: 1,
                caches: 2,
                readers: 4,
                writers: 1,
                policy,
                reader_guards: Vec::new(),
                writer_guards: Vec::new(),
                local_writes: false,
                seed,
            },
            workload: WorkloadSpec {
                duration: Duration::from_secs(60),
                drain: Duration::from_secs(15),
                pages: 8,
                zipf_theta: 0.8,
                page_bytes: 512,
                incremental: false,
                reader_arrival: Arrival::Poisson(1.0),
                writer_arrival: Arrival::Poisson(0.2),
                seed,
            },
        }
    }

    /// Runs the configuration and returns the outcome.
    pub fn run(&self) -> WorkloadOutcome {
        let mut instance = build(&self.setup).expect("experiment setup must build");
        run_workload(
            &mut instance.sim,
            &instance.readers,
            &instance.writers,
            &self.workload,
        )
    }
}

/// Standard outcome columns shared by most experiment tables.
pub const OUTCOME_COLUMNS: &[&str] = &[
    "variant",
    "reads",
    "writes",
    "msgs",
    "msgs/op",
    "bytes",
    "read p50",
    "read p99",
    "write p50",
    "stale reads",
    "staleness",
];

/// Renders one outcome as a standard row.
pub fn outcome_row(variant: &str, outcome: &WorkloadOutcome) -> Vec<String> {
    vec![
        variant.to_string(),
        outcome.reads_completed.to_string(),
        outcome.writes_completed.to_string(),
        outcome.messages.to_string(),
        fmt_f64(outcome.messages_per_op()),
        fmt_bytes(outcome.bytes),
        fmt_duration(outcome.read_latency.p50),
        fmt_duration(outcome.read_latency.p99),
        fmt_duration(outcome.write_latency.p50),
        format!("{:.0}%", outcome.staleness.stale_fraction * 100.0),
        fmt_duration(outcome.staleness.mean_staleness),
    ]
}

/// Runs a set of labelled configurations into a single table.
pub fn compare(title: &str, variants: Vec<(String, Config)>) -> Table {
    let mut table = Table::new(title, OUTCOME_COLUMNS);
    for (label, config) in variants {
        let outcome = config.run();
        table.row(outcome_row(&label, &outcome));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_runs_quickly() {
        let mut config = Config::baseline(ReplicationPolicy::magazine(), 1);
        config.workload.duration = Duration::from_secs(10);
        config.workload.drain = Duration::from_secs(5);
        let outcome = config.run();
        assert!(outcome.reads_completed > 0);
        let row = outcome_row("x", &outcome);
        assert_eq!(row.len(), OUTCOME_COLUMNS.len());
    }
}
