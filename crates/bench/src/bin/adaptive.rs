//! CLAIM-5 — The paper's future work, as an ablation: "Ideally, the
//! implementation parameters can be modified dynamically as the usage
//! characteristics of an object changes" (§3.3/§5).
//!
//! §3.3's rule: "if a highly replicated Web object is often modified, it
//! may be more efficient to implement a periodic update in which several
//! updates are aggregated, instead of an immediate one. In contrast, if
//! the Web object is seldom modified, then an immediate coherence
//! transfer type avoids unnecessary network traffic."
//!
//! The workload has a phase change: a seldom-modified (cold) object
//! suddenly becomes hot. Static `immediate` wastes messages in the hot
//! phase; static `lazy` is needlessly stale in the cold phase; the
//! adaptive strategy switches parameters at the phase boundary and gets
//! the best of both.

use std::time::Duration;

use globe_bench::{fmt_bytes, Table};
use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, ReplicationPolicy};
use globe_net::Topology;
use globe_web::{methods, WebSemantics};
use globe_workload::staleness;

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    Immediate,
    Lazy,
    /// Oracle switch at the known phase boundary.
    Adaptive,
    /// Closed loop: `AdaptiveController` watches the write rate and
    /// switches on its own (§5 made concrete).
    Controller,
}

fn policy_immediate() -> ReplicationPolicy {
    ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid")
}

fn policy_lazy() -> ReplicationPolicy {
    ReplicationPolicy::builder(ObjectModel::Fifo)
        .lazy(Duration::from_secs(2))
        .build()
        .expect("valid")
}

struct PhaseReport {
    cold_msgs: u64,
    cold_stale: f64,
    hot_msgs: u64,
    hot_stale: f64,
    total_bytes: u64,
}

fn run(strategy: Strategy) -> PhaseReport {
    let mut sim = GlobeSim::new(Topology::wan(), 5);
    let server = sim.add_node_in(globe_net::RegionId::new(0));
    let cache = sim.add_node_in(globe_net::RegionId::new(1));
    // Cold phase wants immediate propagation.
    let start_policy = match strategy {
        Strategy::Immediate | Strategy::Adaptive | Strategy::Controller => policy_immediate(),
        Strategy::Lazy => policy_lazy(),
    };
    let mut controller = globe_core::AdaptiveController::new(
        policy_immediate(),
        policy_lazy(),
        1.0,
        0.1,
        Duration::from_secs(10),
    );
    let object = ObjectSpec::new("/adaptive/object")
        .policy(start_policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create");
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind master");
    let reader = sim
        .bind(object, cache, BindOptions::new().read_node(cache))
        .expect("bind reader");

    // Phase 1 (cold): one write every 10 s; a read 1 s after each write.
    for i in 0..6 {
        let page = globe_web::Page::html(format!("cold{i}"));
        sim.handle(master)
            .write(methods::put_page("page", &page))
            .ok();
        if strategy == Strategy::Controller {
            controller.record_write(sim.now());
            if let Some(p) = controller.evaluate(sim.now()) {
                sim.set_policy(object, p).expect("switch");
            }
        }
        sim.run_for(Duration::from_secs(1));
        let _ = sim.handle(reader).read(methods::get_page("page"));
        sim.run_for(Duration::from_secs(9));
    }
    let cold_msgs = sim.net_stats().messages_sent;
    let cold_stale = {
        let history = sim.history();
        let history = history.lock();
        staleness(&history).stale_fraction
    };

    // Phase change: the object becomes hot; the adaptive strategy
    // switches to lazy aggregation at run time.
    if strategy == Strategy::Adaptive {
        sim.set_policy(object, policy_lazy()).expect("switch");
    }
    // Phase 2 (hot): five writes per second for 20 s; reads at 1 Hz.
    for i in 0..100 {
        let page = globe_web::Page::html(format!("hot{i}"));
        sim.handle(master)
            .write(methods::put_page("page", &page))
            .ok();
        if strategy == Strategy::Controller {
            controller.record_write(sim.now());
            if let Some(p) = controller.evaluate(sim.now()) {
                sim.set_policy(object, p).expect("switch");
            }
        }
        sim.run_for(Duration::from_millis(200));
        if i % 5 == 4 {
            let _ = sim.handle(reader).read(methods::get_page("page"));
        }
    }
    sim.run_for(Duration::from_secs(10));

    let stats = sim.net_stats();
    let history = sim.history();
    let history = history.lock();
    let total = staleness(&history);
    // Hot-phase staleness approximated from totals: reads are 6 cold +
    // 20 hot; recover the hot share.
    let total_stale_reads = total.stale_fraction * total.reads as f64;
    let cold_stale_reads = cold_stale * 6.0;
    let hot_reads = (total.reads - 6).max(1) as f64;
    let hot_stale = ((total_stale_reads - cold_stale_reads) / hot_reads).max(0.0);
    PhaseReport {
        cold_msgs,
        cold_stale,
        hot_msgs: stats.messages_sent - cold_msgs,
        hot_stale,
        total_bytes: stats.bytes_sent,
    }
}

fn main() {
    println!(
        "Ablation for §5 future work: static policies vs a dynamic\n\
         parameter switch when a seldom-modified object becomes hot.\n"
    );
    let mut table = Table::new(
        "Cold→hot phase change: static vs adaptive transfer instant",
        &[
            "strategy",
            "cold msgs",
            "cold stale",
            "hot msgs",
            "hot stale",
            "bytes",
        ],
    );
    for (label, strategy) in [
        ("static immediate", Strategy::Immediate),
        ("static lazy 2s", Strategy::Lazy),
        ("oracle switch (imm→lazy)", Strategy::Adaptive),
        ("closed-loop controller", Strategy::Controller),
    ] {
        let r = run(strategy);
        table.row(vec![
            label.to_string(),
            r.cold_msgs.to_string(),
            format!("{:.0}%", r.cold_stale * 100.0),
            r.hot_msgs.to_string(),
            format!("{:.0}%", r.hot_stale * 100.0),
            fmt_bytes(r.total_bytes),
        ]);
    }
    println!("{table}");
    println!(
        "Expected shape (§3.3): immediate is right for the cold object\n\
         (no staleness, no waste); lazy aggregation is right for the hot\n\
         one (far fewer messages); adaptive switches and gets both."
    );
}
