//! TRACE SMOKE — the flight recorder exercised end to end in CI.
//!
//! Runs one batched-and-leased fail-over scenario (group commit on,
//! read leases on, `trace_capacity` set) on all three backends, demands
//! a non-empty trace from each, runs [`globe_core::TraceChecker`] on
//! every snapshot, and writes the deterministic simulator's snapshot as
//! a JSON artifact (`TRACE_snapshot.json`, override with `--out`). Any
//! checker violation fails the process — this is the CI gate that the
//! journal's story stays coherent on every backend.

use std::time::Duration;

use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeShard, GlobeSim, GlobeTcp, ObjectSpec, RegisterDoc,
    ReplicationPolicy, RuntimeConfig, TempDir, TraceChecker, TraceSnapshot,
};
use globe_net::Topology;

/// Polls `read` until it yields `want` or a retry budget runs out.
fn converge<R: GlobeRuntime>(
    rt: &mut R,
    client: globe_core::ClientHandle,
    page: &str,
    want: &[u8],
) -> Vec<u8> {
    let mut latest = Vec::new();
    for _ in 0..50 {
        latest = rt
            .handle(client)
            .read(registers::get(page))
            .expect("read")
            .to_vec();
        if latest == want {
            break;
        }
        rt.settle(Duration::from_millis(100));
    }
    latest
}

/// The batched + leased fail-over drill: writes ride sequencer batches,
/// reads go through a leased permanent mirror, the home dies
/// mid-workload, and the elected successor carries on. Returns the
/// flight-recorder snapshot taken just before shutdown.
fn scenario<R: GlobeRuntime>(rt: &mut R) -> TraceSnapshot {
    let home = rt.add_node().expect("home node");
    let standby = rt.add_node().expect("standby node");
    let client_node = rt.add_node().expect("client node");
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    let object = ObjectSpec::new("/trace/smoke")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(home, StoreClass::Permanent)
        .store(standby, StoreClass::Permanent)
        .create(rt)
        .expect("create object");
    let writer = rt
        .bind(object, client_node, BindOptions::new().read_node(home))
        .expect("bind writer");
    let reader = rt
        .bind(object, client_node, BindOptions::new().read_node(standby))
        .expect("bind reader");
    rt.start(&[client_node]);

    // Batched pre-failure writes; leased reads converge on the mirror.
    for i in 0..6 {
        rt.handle(writer)
            .write(registers::put(
                &format!("k{i}"),
                format!("pre-{i}").as_bytes(),
            ))
            .expect("pre-failure write");
    }
    let seen = converge(rt, reader, "k5", b"pre-5");
    assert_eq!(&seen[..], b"pre-5", "leased mirror must converge");

    // Kill the home; the standby is elected and keeps accepting writes.
    rt.restart_store(object, home, Box::new(RegisterDoc::new()))
        .expect("kill the home");
    rt.handle(writer)
        .write(registers::put("k9", b"post-failover"))
        .expect("write to the elected sequencer");
    let after = converge(rt, reader, "k9", b"post-failover");
    assert_eq!(&after[..], b"post-failover", "fail-over must complete");

    let snap = rt.trace();
    rt.shutdown();
    snap
}

fn main() {
    let out = globe_bench::out_path_arg().unwrap_or_else(|| "TRACE_snapshot.json".to_string());
    let base = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10))
        .batch_max(4)
        .batch_window(Duration::from_millis(10))
        .read_leases(true)
        .lease_duration(Duration::from_secs(2))
        .checkpoint_every(4)
        .trace_capacity(8192);

    let mut violations_total = 0usize;
    let mut sim_snapshot: Option<TraceSnapshot> = None;
    for backend in ["sim", "tcp", "shard"] {
        // One durable directory per backend: store ids repeat across
        // backends, and two runtimes must never share a WAL tree. The
        // dir is removed on drop, so reruns never see stale logs.
        let durable = TempDir::new(&format!("trace_smoke_{backend}"));
        let config = base.clone().durable_dir(durable.path());
        let snap = match backend {
            "sim" => scenario(&mut GlobeSim::with_config(Topology::lan(), config)),
            "tcp" => scenario(&mut GlobeTcp::with_config(config)),
            _ => scenario(&mut GlobeShard::with_config(config)),
        };
        assert!(
            !snap.is_empty(),
            "{backend}: tracing was on but the journal is empty"
        );
        let violations = TraceChecker::check(&snap);
        println!(
            "{backend}: {} events, {} dropped, {} flushes (mean occupancy {:.2}), lease hit ratio {:.2}, {} violation(s)",
            snap.len(),
            snap.dropped,
            snap.counters.flushes(),
            snap.counters.mean_batch_occupancy(),
            snap.counters.lease_hit_ratio(),
            violations.len(),
        );
        for v in &violations {
            eprintln!("{backend}: TRACE VIOLATION: {v}");
        }
        violations_total += violations.len();
        if backend == "sim" {
            sim_snapshot = Some(snap);
        }
    }

    let snap = sim_snapshot.expect("the sim leg always runs");
    match std::fs::write(&out, snap.to_json()) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
    if violations_total > 0 {
        eprintln!("{violations_total} trace invariant violation(s) — failing");
        std::process::exit(1);
    }
}
