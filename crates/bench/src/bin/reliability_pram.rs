//! CLAIM-4.2 — Reliability as a side-effect of the coherence model:
//! "we could have used UDP … and directly use the PRAM object-based model
//! to implement reliability. Then, simply by changing the object-outdate
//! reaction parameter from wait to demand, reliability comes as a
//! side-effect of the coherence model."
//!
//! This experiment runs PRAM over increasingly lossy, non-FIFO (UDP-like)
//! links with both outdate reactions and reports whether replicas
//! converge, how many writes went missing, and what the recovery traffic
//! cost.

use std::time::Duration;

use globe_bench::{fmt_bytes, Table};
use globe_coherence::StoreClass;
use globe_core::{BindOptions, GlobeSim, ObjectSpec, OutdateReaction, ReplicationPolicy};
use globe_net::{LinkConfig, Topology};
use globe_web::{methods, WebSemantics};

const WRITES: u64 = 30;

struct RunResult {
    converged: bool,
    missing_at_worst_replica: u64,
    messages: u64,
    bytes: u64,
}

fn run(loss: f64, reaction: OutdateReaction, seed: u64) -> RunResult {
    let link = LinkConfig::new(Duration::from_millis(15))
        .with_loss(loss)
        .with_fifo(false); // datagram semantics
    let policy = ReplicationPolicy {
        object_outdate: reaction,
        ..ReplicationPolicy::builder(globe_coherence::ObjectModel::Pram)
            .immediate()
            .build()
            .expect("valid")
    };
    let mut sim = GlobeSim::new(Topology::uniform(link), seed);
    let server = sim.add_node();
    let caches = [sim.add_node(), sim.add_node()];
    let object = ObjectSpec::new("/udp/object")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(caches[0], StoreClass::ClientInitiated)
        .store(caches[1], StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create");
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind");
    for i in 0..WRITES {
        let _ = sim.issue_write(
            &master,
            methods::patch_page("feed.html", format!("entry {i}; ").as_bytes()),
        );
        sim.run_for(Duration::from_millis(80));
    }
    sim.run_for(Duration::from_secs(90));

    let server_version = sim.store_version(object, server).expect("server version");
    let server_digest = sim.store_digest(object, server);
    let mut converged = server_version.get(master.client) == WRITES;
    let mut missing = WRITES - server_version.get(master.client);
    for cache in caches {
        let version = sim.store_version(object, cache).expect("cache version");
        let behind = WRITES.saturating_sub(version.get(master.client));
        missing = missing.max(behind);
        if sim.store_digest(object, cache) != server_digest || behind > 0 {
            converged = false;
        }
    }
    let stats = sim.net_stats();
    RunResult {
        converged,
        missing_at_worst_replica: missing,
        messages: stats.messages_sent,
        bytes: stats.bytes_sent,
    }
}

fn main() {
    println!(
        "Reproducing the §4.2 claim: PRAM ordering + demand reaction gives\n\
         reliability over lossy datagram links; wait does not. {WRITES} pipelined\n\
         writes from the Web master, two caches.\n"
    );
    let mut table = Table::new(
        "PRAM over lossy links: outdate reaction wait vs demand",
        &[
            "loss",
            "reaction",
            "converged",
            "missing writes",
            "msgs",
            "bytes",
        ],
    );
    for loss in [0.0, 0.05, 0.10, 0.20, 0.30] {
        for reaction in [OutdateReaction::Wait, OutdateReaction::Demand] {
            let result = run(loss, reaction, 77);
            table.row(vec![
                format!("{:.0}%", loss * 100.0),
                match reaction {
                    OutdateReaction::Wait => "wait".to_string(),
                    OutdateReaction::Demand => "demand".to_string(),
                },
                if result.converged { "yes" } else { "NO" }.to_string(),
                result.missing_at_worst_replica.to_string(),
                result.messages.to_string(),
                fmt_bytes(result.bytes),
            ]);
        }
    }
    println!("{table}");
}
