//! SHARD — Throughput scaling of the in-process sharded runtime.
//!
//! Many independent objects, each with a home store pushing immediately
//! to several mirrors, all written and read through one client thread
//! issuing asynchronously. The caller only issues and polls; every
//! store-side event (invoke, replicate to each mirror, ack) is handled
//! by a shard worker, so wall-clock time for the whole batch drops as
//! the object space spreads over more shard lanes. This is the
//! Harmonia-style claim on our stack: the replication machinery is
//! untouched, only the number of lanes varies.

use std::time::{Duration, Instant};

use globe_bench::json::{write_json, Json};
use globe_bench::{fmt_duration, fmt_f64, Table};
use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, ClientHandle, GlobeRuntime, GlobeShard, ObjectSpec, RegisterDoc,
    ReplicationPolicy, RequestId, RuntimeConfig,
};

/// The driven workload's shape, reduced under `--smoke` for CI.
struct Load {
    objects: usize,
    writes_per_object: usize,
    mirrors: usize,
}

/// Heartbeat period used to surface the detector's traffic shape in
/// the emitted JSON: one ping stream per node pair *per lane*, however
/// many objects the pair co-hosts (the node-level detector
/// consolidation).
const HEARTBEAT: Duration = Duration::from_millis(200);

/// Builds a runtime with `shards` lanes, then drives
/// `objects * writes_per_object` asynchronous writes followed by one
/// read-back per object; returns the wall-clock time of the driven
/// phase plus the number of heartbeat pings the detector sent.
fn measure(shards: usize, load: &Load) -> (Duration, u64) {
    let (objects, writes_per_object, mirrors) =
        (load.objects, load.writes_per_object, load.mirrors);
    let mut rt = GlobeShard::with_shards(
        shards,
        RuntimeConfig::new().seed(7).heartbeat_period(HEARTBEAT),
    );
    let server = rt.add_node().expect("server node");
    let mirrors: Vec<_> = (0..mirrors)
        .map(|_| rt.add_node().expect("mirror node"))
        .collect();
    let client_node = rt.add_node().expect("client node");

    // Immediate push to every mirror: each write makes the home store
    // fan updates out, so the measured work lives on the shard lanes.
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    let handles: Vec<ClientHandle> = (0..objects)
        .map(|i| {
            let mut spec = ObjectSpec::new(format!("/scale/obj{i:03}"))
                .policy(policy.clone())
                .semantics(RegisterDoc::new)
                .store(server, StoreClass::Permanent);
            for &mirror in &mirrors {
                spec = spec.store(mirror, StoreClass::ObjectInitiated);
            }
            let object = spec.create(&mut rt).expect("create object");
            rt.bind(object, client_node, BindOptions::new().read_node(server))
                .expect("bind client")
        })
        .collect();

    rt.start(&[client_node]);

    let begin = Instant::now();
    for round in 0..writes_per_object {
        // Fan the round out across every object before collecting any
        // ack, so all shard lanes hold work at once.
        let pending: Vec<(ClientHandle, RequestId)> = handles
            .iter()
            .map(|handle| {
                let body = format!("round-{round}");
                let req = rt
                    .handle(*handle)
                    .issue_write(registers::put("page.html", body.as_bytes()))
                    .expect("issue write");
                (*handle, req)
            })
            .collect();
        for (handle, req) in pending {
            loop {
                if let Some(result) = rt.handle(handle).result(req) {
                    result.expect("write acked");
                    break;
                }
            }
        }
    }
    for handle in &handles {
        let got = rt
            .handle(*handle)
            .read(registers::get("page.html"))
            .expect("read back");
        assert_eq!(
            &got[..],
            format!("round-{}", writes_per_object - 1).as_bytes()
        );
    }
    let elapsed = begin.elapsed();
    // Outside the timed window: let a couple of heartbeat rounds fire
    // so the emitted ping count reflects the detector's steady state.
    rt.settle(HEARTBEAT * 2 + Duration::from_millis(50));
    let pings = {
        let metrics = rt.metrics();
        let metrics = metrics.lock();
        metrics
            .traffic
            .get("NodePing")
            .map(|k| k.count)
            .unwrap_or(0)
    };
    rt.shutdown();
    (elapsed, pings)
}

fn main() {
    let smoke = globe_bench::smoke_mode();
    let out = globe_bench::out_path_arg().unwrap_or_else(|| "BENCH_shard.json".to_string());
    let load = if smoke {
        Load {
            objects: 16,
            writes_per_object: 4,
            mirrors: 2,
        }
    } else {
        Load {
            objects: 64,
            writes_per_object: 16,
            mirrors: 6,
        }
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Shard-count scaling: {} objects x {} async writes \
         (plus one read-back each), one issuing thread, store work on shard lanes.\n\
         Detected parallelism: {cores} core(s) — lanes beyond that cannot speed up\n\
         the batch, so read the speedup column against this ceiling.\n",
        load.objects, load.writes_per_object
    );
    let mut table = Table::new(
        "Batch wall-clock by shard count",
        &["shards", "elapsed", "ops/s", "speedup vs 1", "hb pings"],
    );
    let mut baseline: Option<Duration> = None;
    let mut results = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let (elapsed, pings) = measure(shards, &load);
        let ops = (load.objects * (load.writes_per_object + 1)) as f64;
        let ops_per_s = ops / elapsed.as_secs_f64().max(f64::EPSILON);
        let speedup = match baseline {
            None => {
                baseline = Some(elapsed);
                1.0
            }
            Some(base) => base.as_secs_f64() / elapsed.as_secs_f64().max(f64::EPSILON),
        };
        // The node-level detector sends one ping stream per node pair
        // per lane: at most `shards * 2 * mirrors` frames per heartbeat
        // period, independent of the object count. The per-object
        // design this replaced would have sent `objects * mirrors`.
        let streams_bound = (shards * 2 * load.mirrors) as i64;
        table.row(vec![
            shards.to_string(),
            fmt_duration(elapsed),
            fmt_f64(ops_per_s),
            fmt_f64(speedup),
            pings.to_string(),
        ]);
        results.push(Json::obj([
            ("shards", Json::Int(shards as i64)),
            ("elapsed_s", Json::Num(elapsed.as_secs_f64())),
            ("ops_per_s", Json::Num(ops_per_s)),
            ("speedup_vs_1", Json::Num(speedup)),
            ("heartbeat_pings", Json::Int(pings as i64)),
            ("heartbeat_streams_bound", Json::Int(streams_bound)),
            (
                "heartbeat_per_object_would_be",
                Json::Int((load.objects * load.mirrors) as i64),
            ),
        ]));
    }
    println!("{table}");

    let doc = Json::obj([
        ("bench", Json::str("shard_scaling")),
        ("mode", Json::str(if smoke { "smoke" } else { "full" })),
        (
            "heartbeat_period_ms",
            Json::Int(HEARTBEAT.as_millis() as i64),
        ),
        ("objects", Json::Int(load.objects as i64)),
        (
            "writes_per_object",
            Json::Int(load.writes_per_object as i64),
        ),
        ("mirrors", Json::Int(load.mirrors as i64)),
        ("cores", Json::Int(cores as i64)),
        ("results", Json::Array(results)),
    ]);
    match write_json(&out, &doc) {
        Ok(_) => println!("wrote {out}"),
        Err(e) => eprintln!("failed to write {out}: {e}"),
    }
}
