//! TAB2 / FIG3 / FIG4 — The paper's worked example: the conference home
//! page with the exact Table-2 strategy, compared against alternative
//! strategies for the same workload.

use std::time::Duration;

use globe_bench::{compare, Config, Table};
use globe_coherence::{ClientModel, ObjectModel};
use globe_core::{CoherenceTransfer, OutdateReaction, ReplicationPolicy, TransferInitiative};
use globe_workload::{Arrival, SetupSpec, TopologyKind, WorkloadSpec};

const SEED: u64 = 1998;

fn conference_config(policy: ReplicationPolicy) -> Config {
    Config {
        setup: SetupSpec {
            name: "/conf/icdcs98".to_string(),
            topology: TopologyKind::Wan,
            mirrors: 0,
            caches: 2,
            readers: 6,
            writers: 1,
            policy,
            reader_guards: vec![],
            writer_guards: vec![ClientModel::ReadYourWrites],
            local_writes: false,
            seed: SEED,
        },
        workload: WorkloadSpec {
            duration: Duration::from_secs(120),
            drain: Duration::from_secs(15),
            pages: 6,
            zipf_theta: 0.6,
            page_bytes: 300,
            incremental: true, // the master "incrementally updates the page"
            reader_arrival: Arrival::Poisson(0.5),
            writer_arrival: Arrival::Fixed(Duration::from_secs(7)),
            seed: SEED,
        },
    }
}

fn main() {
    let table2 = ReplicationPolicy::conference_page();
    println!("Reproducing Table 2: replication strategy for the conference home page\n");
    println!("{table2}\n");

    let alternatives = vec![
        (
            "Table 2 (lazy push, partial)".to_string(),
            conference_config(table2.clone()),
        ),
        (
            "immediate push".to_string(),
            conference_config(ReplicationPolicy {
                instant: globe_core::TransferInstant::Immediate,
                ..table2.clone()
            }),
        ),
        (
            "pull 2s".to_string(),
            conference_config(ReplicationPolicy {
                initiative: TransferInitiative::Pull,
                lazy_period: Duration::from_secs(2),
                ..table2.clone()
            }),
        ),
        (
            "full coherence transfer".to_string(),
            conference_config(ReplicationPolicy {
                coherence_transfer: CoherenceTransfer::Full,
                ..table2.clone()
            }),
        ),
        (
            "eventual, no guards".to_string(),
            Config {
                setup: SetupSpec {
                    writer_guards: vec![],
                    ..conference_config(
                        ReplicationPolicy::builder(ObjectModel::Eventual)
                            .lazy(Duration::from_secs(2))
                            .client_outdate(OutdateReaction::Wait)
                            .build()
                            .expect("valid"),
                    )
                    .setup
                },
                ..conference_config(table2.clone())
            },
        ),
    ];
    let table: Table = compare(
        "Conference page: Table-2 strategy vs alternatives (master uses RYW)",
        alternatives,
    );
    println!("{table}");
    println!(
        "Fig. 3/4 message flow is asserted in tests/conference_scenario.rs; run\n\
         `cargo run --example conference_page` for the narrated version."
    );
}
