//! SATURATE — per-backend throughput ceiling of the load engine.
//!
//! Sweeps the number of concurrent writer handles on each backend and
//! lets the engine drive them open-loop at a fixed per-writer offered
//! rate: operations are issued at their scheduled instants whether or
//! not earlier ones completed, so total offered load grows with the
//! writer count and the backend's ceiling shows up as the knee where
//! the completed rate stops tracking it (the generator never silently
//! slows down to hide it). Each writer gets its own object (on the
//! shard backend sequential object ids hash to distinct lanes), so
//! adding writers adds both client threads and store-side parallelism.
//!
//! The simulator has no [`globe_core::EnginePort`]; the engine falls
//! back to its interleaved virtual-time schedule there, and the row is
//! reported in virtual ops/sec — a determinism baseline rather than a
//! saturation point.
//!
//! Emits `BENCH_saturate.json` (override with `--out`); `--smoke` or
//! `BENCH_SMOKE=1` selects the reduced CI configuration. CI checks the
//! headline claim: shard throughput scales at least 2x from 1 to 4
//! writers.

use std::time::Duration;

use globe_bench::json::{write_json, Json};
use globe_bench::{fmt_duration, fmt_f64, Table};
use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    BindOptions, ClientHandle, GlobeRuntime, GlobeShard, GlobeSim, GlobeTcp, ObjectSpec,
    ProtocolCounters, ReplicationPolicy, RuntimeConfig, TransportFaults,
};
use globe_net::Topology;
use globe_web::WebSemantics;
use globe_workload::{run_engine, Arrival, EngineMode, EngineReport, WorkloadSpec};

/// Shard lanes are held constant across the sweep (more than the widest
/// writer count) so only the offered load varies, never the runtime.
const LANES: usize = 8;

/// Open-loop arrival gap on the shard backend: a fixed per-writer
/// offered rate (10k ops/s), so the sweep raises total offered load
/// with the writer count and saturation shows up as the knee where the
/// speedup column flattens below the writer count.
const SHARD_GAP: Duration = Duration::from_micros(100);

/// Open-loop gap on the TCP backend: still well above what loopback
/// round trips sustain, but bounded so kernel socket buffers don't
/// absorb an unbounded queue.
const TCP_GAP: Duration = Duration::from_micros(100);

/// Spec for the wall-clock (concurrent open-loop) backends.
fn wall_spec(smoke: bool, gap: Duration) -> WorkloadSpec {
    WorkloadSpec {
        duration: if smoke {
            Duration::from_millis(250)
        } else {
            Duration::from_secs(2)
        },
        drain: if smoke {
            Duration::from_millis(400)
        } else {
            Duration::from_secs(1)
        },
        pages: 4,
        zipf_theta: 0.8,
        page_bytes: 128,
        incremental: true,
        reader_arrival: Arrival::Poisson(1.0), // no readers in this sweep
        writer_arrival: Arrival::Fixed(gap),
        seed: 17,
    }
}

/// Spec for the simulator's interleaved virtual-time baseline: a
/// precomputed schedule, so a moderate Poisson rate instead of a
/// near-zero gap.
fn sim_spec(smoke: bool) -> WorkloadSpec {
    WorkloadSpec {
        duration: if smoke {
            Duration::from_secs(2)
        } else {
            Duration::from_secs(10)
        },
        drain: Duration::from_secs(1),
        pages: 4,
        zipf_theta: 0.8,
        page_bytes: 128,
        incremental: true,
        reader_arrival: Arrival::Poisson(1.0),
        writer_arrival: Arrival::Poisson(200.0),
        seed: 17,
    }
}

/// Runtime-side counters captured just before shutdown: what the leg
/// observed beyond the engine's own report — transport faults survived,
/// detector heartbeat traffic, and the always-on protocol counters.
#[derive(Clone, Copy, Default)]
struct RuntimeCounters {
    protocol: ProtocolCounters,
    transport: TransportFaults,
    heartbeat_pings: u64,
}

fn capture_counters<R: GlobeRuntime>(rt: &R) -> RuntimeCounters {
    let metrics = rt.metrics();
    let m = metrics.lock();
    RuntimeCounters {
        protocol: m.protocol,
        transport: m.transport,
        heartbeat_pings: m.traffic.get("NodePing").map_or(0, |k| k.count),
    }
}

/// JSON for the transport-fault and heartbeat counters of one leg.
fn transport_json(c: &RuntimeCounters) -> Json {
    Json::obj([
        (
            "malformed_frames",
            Json::Int(c.transport.malformed_frames as i64),
        ),
        ("send_errors", Json::Int(c.transport.send_errors as i64)),
        ("disconnects", Json::Int(c.transport.disconnects as i64)),
        (
            "rejected_frames",
            Json::Int(c.transport.rejected_frames as i64),
        ),
        (
            "spawn_failures",
            Json::Int(c.transport.spawn_failures as i64),
        ),
    ])
}

/// JSON for the group-commit counters: flush-reason histogram and
/// batch occupancy.
fn flush_json(p: &ProtocolCounters) -> Json {
    Json::obj([
        (
            "flush_reasons",
            Json::obj(
                globe_core::FlushReason::ALL
                    .iter()
                    .map(|&r| (r.name(), Json::Int(p.flush_count(r) as i64))),
            ),
        ),
        ("flushes", Json::Int(p.flushes() as i64)),
        ("batch_writes", Json::Int(p.batch_writes as i64)),
        ("batch_max_size", Json::Int(p.batch_max_size as i64)),
        ("mean_batch_occupancy", Json::Num(p.mean_batch_occupancy())),
    ])
}

/// JSON for the read-lease counters: the served/forwarded/refused mix
/// and the derived hit ratio.
fn lease_json(p: &ProtocolCounters) -> Json {
    Json::obj([
        ("served", Json::Int(p.lease_served as i64)),
        ("forwarded", Json::Int(p.lease_forwarded as i64)),
        ("refused", Json::Int(p.lease_refused as i64)),
        ("hit_ratio", Json::Num(p.lease_hit_ratio())),
    ])
}

/// Builds `writers` single-store objects (one writer handle each, all
/// on one client node) and runs the engine against them.
fn measure<R: GlobeRuntime>(
    rt: &mut R,
    writers: usize,
    spec: &WorkloadSpec,
) -> (EngineReport, RuntimeCounters) {
    let client = rt.add_node().expect("client node");
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    let handles: Vec<ClientHandle> = (0..writers)
        .map(|i| {
            let store = rt.add_node().expect("store node");
            let object = ObjectSpec::new(format!("/saturate/obj{i:02}"))
                .policy(policy.clone())
                .semantics(WebSemantics::new)
                .store(store, StoreClass::Permanent)
                .create(rt)
                .expect("create object");
            rt.bind(object, client, BindOptions::new().read_node(store))
                .expect("bind writer")
        })
        .collect();
    rt.start(&[client]);
    let report = run_engine(rt, &[], &handles, spec);
    let counters = capture_counters(rt);
    rt.shutdown();
    (report, counters)
}

/// Open-loop gap for the group-commit leg: a moderate per-writer rate
/// (5k ops/s each, 20k total into ONE sequencer) chosen so the home
/// lane's per-write fan-out work — not the client generator threads —
/// is the bottleneck. The unbatched variant saturates below the
/// offered rate; the batched variant, which pays the fan-out once per
/// batch, keeps up.
const GROUP_GAP: Duration = Duration::from_micros(200);

/// Open-loop gap for the read-lease leg: the reader rate is pushed
/// high (40k ops/s each) because a mirror-local read is cheap — only
/// this deep into saturation does the forwarded variant's doubled
/// message count show up as a completed-rate gap.
const LEASE_GAP: Duration = Duration::from_micros(25);

/// How many writes the sequencer may fold into one ordering decision
/// and one fan-out frame in the batched variant.
const BATCH_MAX: usize = 8;

/// Permanent mirrors behind the shared sequencer in the group-commit
/// leg: each write costs the home one fan-out frame per mirror, so the
/// batched saving (one frame per mirror per *batch*) scales with this.
const GROUP_MIRRORS: usize = 6;

/// Spec for the shared-object group-commit runs: writers only.
fn group_spec(smoke: bool) -> WorkloadSpec {
    WorkloadSpec {
        reader_arrival: Arrival::Poisson(1.0), // no readers in this leg
        writer_arrival: Arrival::Fixed(GROUP_GAP),
        ..wall_spec(smoke, GROUP_GAP)
    }
}

/// Spec for the read-lease runs: reader-heavy against the mirror, with
/// a trickle of writes so leased reads must track a moving version.
fn lease_spec(smoke: bool) -> WorkloadSpec {
    WorkloadSpec {
        reader_arrival: Arrival::Fixed(LEASE_GAP),
        writer_arrival: Arrival::Poisson(50.0),
        ..wall_spec(smoke, LEASE_GAP)
    }
}

/// Builds ONE sequenced object — a home store plus one permanent
/// mirror — with every writer handle aimed at the home and every
/// reader handle aimed at the mirror, then runs the engine. This is
/// the configuration where group commit (fan-out frames per batch,
/// not per write) and read leases (mirror-local reads instead of
/// home-validated forwards) actually change the message economy.
fn measure_shared<R: GlobeRuntime>(
    rt: &mut R,
    writers: usize,
    readers: usize,
    mirrors: usize,
    spec: &WorkloadSpec,
) -> (EngineReport, RuntimeCounters) {
    let client = rt.add_node().expect("client node");
    let home = rt.add_node().expect("home node");
    let mirror_nodes: Vec<_> = (0..mirrors.max(1))
        .map(|_| rt.add_node().expect("mirror node"))
        .collect();
    let mirror = mirror_nodes[0];
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    let mut spec_builder = ObjectSpec::new("/saturate/shared")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(home, StoreClass::Permanent);
    for &node in &mirror_nodes {
        spec_builder = spec_builder.store(node, StoreClass::Permanent);
    }
    let object = spec_builder.create(rt).expect("create object");
    let writer_handles: Vec<ClientHandle> = (0..writers)
        .map(|_| {
            rt.bind(object, client, BindOptions::new().read_node(home))
                .expect("bind writer")
        })
        .collect();
    let reader_handles: Vec<ClientHandle> = (0..readers)
        .map(|_| {
            rt.bind(object, client, BindOptions::new().read_node(mirror))
                .expect("bind reader")
        })
        .collect();
    rt.start(&[client]);
    let report = run_engine(rt, &reader_handles, &writer_handles, spec);
    let counters = capture_counters(rt);
    rt.shutdown();
    (report, counters)
}

/// Runs a measurement twice and keeps the trial with the higher score
/// — the less scheduler-perturbed of the two.
fn best_of_two(
    mut run: impl FnMut() -> (EngineReport, RuntimeCounters),
    score: impl Fn(&EngineReport) -> f64,
) -> (EngineReport, RuntimeCounters) {
    let first = run();
    let second = run();
    if score(&second.0) > score(&first.0) {
        second
    } else {
        first
    }
}

/// Completed-operations rate over the report's elapsed window.
fn rate(completed: usize, report: &EngineReport) -> f64 {
    let secs = report.elapsed.as_secs_f64();
    if secs > 0.0 {
        completed as f64 / secs
    } else {
        0.0
    }
}

/// JSON for one shared-object run, keyed on the latency class that
/// matters for the leg (writes for group commit, reads for leases).
fn shared_run_json(report: &EngineReport, lat: &globe_workload::LatencySummary) -> Json {
    Json::obj([
        ("ops_per_s", Json::Num(report.ops_per_sec())),
        ("reads_completed", Json::Int(report.reads_completed as i64)),
        (
            "writes_completed",
            Json::Int(report.writes_completed as i64),
        ),
        ("issue_errors", Json::Int(report.issue_errors as i64)),
        ("abandoned", Json::Int(report.abandoned as i64)),
        ("p50_us", Json::Num(lat.p50.as_secs_f64() * 1e6)),
        ("p99_us", Json::Num(lat.p99.as_secs_f64() * 1e6)),
        ("p999_us", Json::Num(lat.p999.as_secs_f64() * 1e6)),
        ("elapsed_s", Json::Num(report.elapsed.as_secs_f64())),
    ])
}

fn mode_name(mode: EngineMode) -> &'static str {
    match mode {
        EngineMode::Interleaved => "interleaved",
        EngineMode::Concurrent { .. } => "concurrent",
    }
}

fn main() {
    let smoke = globe_bench::smoke_mode();
    let out = globe_bench::out_path_arg().unwrap_or_else(|| "BENCH_saturate.json".to_string());
    let counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Engine saturation sweep: {counts:?} open-loop writers, one object each,\n\
         fixed per-writer offered rates on the wall-clock backends ({LANES} shard\n\
         lanes, {cores} core(s) detected). Sim rows are the interleaved\n\
         virtual-time baseline, not a saturation point.\n"
    );

    let mut table = Table::new(
        "Completed throughput by backend and writer count",
        &[
            "backend", "writers", "mode", "ops/s", "p50", "p99", "p999", "speedup",
        ],
    );
    let mut backends = Vec::new();
    let mut shard_speedup_1_to_4 = 0.0f64;
    for backend in ["sim", "tcp", "shard"] {
        let mut baseline: Option<f64> = None;
        let mut rows = Vec::new();
        for &writers in counts {
            let (report, counters) = match backend {
                "sim" => {
                    let mut rt = GlobeSim::new(Topology::lan(), 17);
                    measure(&mut rt, writers, &sim_spec(smoke))
                }
                "tcp" => {
                    let mut rt = GlobeTcp::new();
                    measure(&mut rt, writers, &wall_spec(smoke, TCP_GAP))
                }
                _ => {
                    let mut rt = GlobeShard::new(LANES);
                    measure(&mut rt, writers, &wall_spec(smoke, SHARD_GAP))
                }
            };
            let ops = report.ops_per_sec();
            let speedup = match baseline {
                None => {
                    baseline = Some(ops);
                    1.0
                }
                Some(base) => ops / base.max(f64::EPSILON),
            };
            if backend == "shard" && writers == 4 {
                shard_speedup_1_to_4 = speedup;
            }
            let lat = &report.write_latency;
            table.row(vec![
                backend.to_string(),
                writers.to_string(),
                mode_name(report.mode).to_string(),
                fmt_f64(ops),
                fmt_duration(lat.p50),
                fmt_duration(lat.p99),
                fmt_duration(lat.p999),
                fmt_f64(speedup),
            ]);
            rows.push(Json::obj([
                ("writers", Json::Int(writers as i64)),
                ("mode", Json::str(mode_name(report.mode))),
                ("ops_per_s", Json::Num(ops)),
                ("writes_issued", Json::Int(report.writes_issued as i64)),
                (
                    "writes_completed",
                    Json::Int(report.writes_completed as i64),
                ),
                ("issue_errors", Json::Int(report.issue_errors as i64)),
                ("abandoned", Json::Int(report.abandoned as i64)),
                ("p50_us", Json::Num(lat.p50.as_secs_f64() * 1e6)),
                ("p99_us", Json::Num(lat.p99.as_secs_f64() * 1e6)),
                ("p999_us", Json::Num(lat.p999.as_secs_f64() * 1e6)),
                ("elapsed_s", Json::Num(report.elapsed.as_secs_f64())),
                ("speedup_vs_1", Json::Num(speedup)),
                ("transport_faults", transport_json(&counters)),
                (
                    "heartbeat_pings",
                    Json::Int(counters.heartbeat_pings as i64),
                ),
            ]));
        }
        backends.push(Json::obj([
            ("backend", Json::str(backend)),
            ("results", Json::Array(rows)),
        ]));
    }
    println!("{table}");

    // ---- Group commit: 4 writers through ONE sequencer, batch_max 1
    // vs BATCH_MAX, on the shard backend. The unbatched run is today's
    // protocol bit-for-bit (batch_max = 1 is the config default).
    let base_config = RuntimeConfig::new().seed(17);
    let batched_config = base_config
        .clone()
        .batch_max(BATCH_MAX)
        .batch_window(Duration::from_millis(1));
    let group = group_spec(smoke);
    // Two trials per variant, best completed rate kept: on a shared,
    // deliberately oversaturated sequencer a single short trial is at
    // the mercy of the host scheduler.
    let (unbatched, unbatched_counters) = best_of_two(
        || {
            let mut rt = GlobeShard::with_config(base_config.clone());
            measure_shared(&mut rt, 4, 0, GROUP_MIRRORS, &group)
        },
        |r| rate(r.writes_completed, r),
    );
    let (batched, batched_counters) = best_of_two(
        || {
            let mut rt = GlobeShard::with_config(batched_config.clone());
            measure_shared(&mut rt, 4, 0, GROUP_MIRRORS, &group)
        },
        |r| rate(r.writes_completed, r),
    );
    let unbatched_rate = rate(unbatched.writes_completed, &unbatched);
    let batched_rate = rate(batched.writes_completed, &batched);
    let batched_speedup = batched_rate / unbatched_rate.max(f64::EPSILON);
    let mut group_table = Table::new(
        "Group commit: 4 writers, one shared sequencer (shard backend)",
        &["variant", "writes/s", "p50", "p99", "p999", "speedup"],
    );
    for (name, report, speedup) in [
        ("batch_max=1", &unbatched, 1.0),
        ("batched", &batched, batched_speedup),
    ] {
        let lat = &report.write_latency;
        group_table.row(vec![
            name.to_string(),
            fmt_f64(rate(report.writes_completed, report)),
            fmt_duration(lat.p50),
            fmt_duration(lat.p99),
            fmt_duration(lat.p999),
            fmt_f64(speedup),
        ]);
    }
    println!("{group_table}");

    // ---- Read leases: 4 readers on the permanent mirror. Without a
    // lease every read is forwarded to the home for validation
    // (lease_duration 0 never grants); with leases the mirror serves
    // locally while its vector covers the grant.
    let forwarded_config = base_config
        .clone()
        .read_leases(true)
        .lease_duration(Duration::ZERO);
    let leased_config = base_config
        .read_leases(true)
        .lease_duration(Duration::from_secs(2));
    let lease = lease_spec(smoke);
    let (forwarded, forwarded_counters) = best_of_two(
        || {
            let mut rt = GlobeShard::with_config(forwarded_config.clone());
            measure_shared(&mut rt, 1, 4, 1, &lease)
        },
        |r| rate(r.reads_completed, r),
    );
    let (leased, leased_counters) = best_of_two(
        || {
            let mut rt = GlobeShard::with_config(leased_config.clone());
            measure_shared(&mut rt, 1, 4, 1, &lease)
        },
        |r| rate(r.reads_completed, r),
    );
    let forwarded_rate = rate(forwarded.reads_completed, &forwarded);
    let leased_rate = rate(leased.reads_completed, &leased);
    let leased_speedup = leased_rate / forwarded_rate.max(f64::EPSILON);
    let mut lease_table = Table::new(
        "Read leases: 4 readers on the mirror (shard backend)",
        &["variant", "reads/s", "p50", "p99", "p999", "speedup"],
    );
    for (name, report, speedup) in [
        ("forwarded", &forwarded, 1.0),
        ("leased", &leased, leased_speedup),
    ] {
        let lat = &report.read_latency;
        lease_table.row(vec![
            name.to_string(),
            fmt_f64(rate(report.reads_completed, report)),
            fmt_duration(lat.p50),
            fmt_duration(lat.p99),
            fmt_duration(lat.p999),
            fmt_f64(speedup),
        ]);
    }
    println!("{lease_table}");

    println!(
        "group commit speedup (batch_max {BATCH_MAX} vs 1): {}",
        fmt_f64(batched_speedup)
    );
    println!(
        "read lease speedup (leased vs forwarded): {}",
        fmt_f64(leased_speedup)
    );
    println!(
        "shard speedup 1 -> 4 writers: {} ({})",
        fmt_f64(shard_speedup_1_to_4),
        if shard_speedup_1_to_4 >= 2.0 {
            "meets the >= 2x scaling claim"
        } else {
            "BELOW the >= 2x scaling claim"
        }
    );

    let doc = Json::obj([
        ("bench", Json::str("saturate")),
        ("mode", Json::str(if smoke { "smoke" } else { "full" })),
        ("lanes", Json::Int(LANES as i64)),
        ("cores", Json::Int(cores as i64)),
        ("shard_gap_us", Json::Num(SHARD_GAP.as_secs_f64() * 1e6)),
        ("tcp_gap_us", Json::Num(TCP_GAP.as_secs_f64() * 1e6)),
        ("shard_speedup_1_to_4", Json::Num(shard_speedup_1_to_4)),
        ("shard_scaling_ok", Json::Bool(shard_speedup_1_to_4 >= 2.0)),
        ("backends", Json::Array(backends)),
        (
            "group_commit",
            Json::obj([
                ("backend", Json::str("shard")),
                ("writers", Json::Int(4)),
                ("batch_max", Json::Int(BATCH_MAX as i64)),
                ("shared_gap_us", Json::Num(GROUP_GAP.as_secs_f64() * 1e6)),
                ("mirrors", Json::Int(GROUP_MIRRORS as i64)),
                (
                    "unbatched",
                    shared_run_json(&unbatched, &unbatched.write_latency),
                ),
                ("batched", shared_run_json(&batched, &batched.write_latency)),
                ("batched_speedup", Json::Num(batched_speedup)),
                (
                    "unbatched_flushes",
                    flush_json(&unbatched_counters.protocol),
                ),
                ("batched_flushes", flush_json(&batched_counters.protocol)),
                ("transport_faults", transport_json(&batched_counters)),
                (
                    "heartbeat_pings",
                    Json::Int(batched_counters.heartbeat_pings as i64),
                ),
            ]),
        ),
        (
            "read_leases",
            Json::obj([
                ("backend", Json::str("shard")),
                ("readers", Json::Int(4)),
                (
                    "forwarded",
                    shared_run_json(&forwarded, &forwarded.read_latency),
                ),
                ("leased", shared_run_json(&leased, &leased.read_latency)),
                ("leased_speedup", Json::Num(leased_speedup)),
                (
                    "forwarded_lease_mix",
                    lease_json(&forwarded_counters.protocol),
                ),
                ("leased_lease_mix", lease_json(&leased_counters.protocol)),
                ("transport_faults", transport_json(&leased_counters)),
                (
                    "heartbeat_pings",
                    Json::Int(leased_counters.heartbeat_pings as i64),
                ),
            ]),
        ),
    ]);
    match write_json(&out, &doc) {
        Ok(_) => println!("wrote {out}"),
        Err(e) => eprintln!("failed to write {out}: {e}"),
    }
}
