//! FIG2 — The layered store model: permanent stores, object-initiated
//! mirrors, client-initiated caches. One update stream; per-layer read
//! latency and staleness show the trade the paper describes: "whereas
//! permanent stores are responsible for implementing an object's
//! coherence model, object-initiated and client-initiated stores may
//! offer weaker coherence, but perhaps offering the benefit of higher
//! performance" (§3.1).

use std::time::Duration;

use globe_bench::{fmt_duration, fmt_f64, Table};
use globe_coherence::StoreClass;
use globe_core::{BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, ReplicationPolicy, StoreScope};
use globe_net::{NodeId, RegionId, Topology};
use globe_web::{methods, WebSemantics};
use globe_workload::{staleness, Arrival, LatencySummary};

struct LayerResult {
    label: &'static str,
    latency: LatencySummary,
    stale_fraction: f64,
    mean_staleness: Duration,
}

fn run_layer(read_from: StoreClass) -> LayerResult {
    // The model is implemented by permanent stores only; mirrors and
    // caches get the out-of-scope lazy propagation.
    let policy = ReplicationPolicy {
        store_scope: StoreScope::Permanent,
        lazy_period: Duration::from_secs(3),
        ..ReplicationPolicy::builder(globe_coherence::ObjectModel::Pram)
            .immediate()
            .build()
            .expect("valid")
    };
    let mut sim = GlobeSim::new(Topology::wan(), 7);
    let server = sim.add_node_in(RegionId::new(0));
    let mirror = sim.add_node_in(RegionId::new(1));
    let cache = sim.add_node_in(RegionId::new(1));
    let reader_node = sim.add_node_in(RegionId::new(1));
    let object = ObjectSpec::new("/fig2/object")
        .policy(policy)
        .semantics(WebSemantics::new)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create");
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind master");

    let read_node: NodeId = match read_from {
        StoreClass::Permanent => server,
        StoreClass::ObjectInitiated => mirror,
        StoreClass::ClientInitiated => cache,
    };
    let reader = sim
        .bind(object, reader_node, BindOptions::new().read_node(read_node))
        .expect("bind reader");

    // Interleave writes and reads for 60 virtual seconds.
    let mut rng_writes = Arrival::Fixed(Duration::from_secs(2));
    let _ = &mut rng_writes;
    let before_ops = sim.metrics().lock().ops.len();
    for round in 0..30 {
        sim.handle(master)
            .write(methods::patch_page(
                "news.html",
                format!("item {round}; ").as_bytes(),
            ))
            .expect("write");
        for _ in 0..3 {
            sim.run_for(Duration::from_millis(600));
            let _ = sim.handle(reader).read(methods::get_page("news.html"));
        }
        sim.run_for(Duration::from_millis(200));
    }
    sim.run_for(Duration::from_secs(5));

    let metrics = sim.metrics();
    let metrics = metrics.lock();
    let samples: Vec<Duration> = metrics.ops[before_ops..]
        .iter()
        .filter(|op| op.kind == globe_core::MethodKind::Read && op.client == reader.client)
        .map(|op| op.latency())
        .collect();
    drop(metrics);
    let history = sim.history();
    let history = history.lock();
    let stale = staleness(&history);
    LayerResult {
        label: match read_from {
            StoreClass::Permanent => "permanent store (server)",
            StoreClass::ObjectInitiated => "object-initiated store (mirror)",
            StoreClass::ClientInitiated => "client-initiated store (cache)",
        },
        latency: LatencySummary::of(samples),
        stale_fraction: stale.stale_fraction,
        mean_staleness: stale.mean_staleness,
    }
}

fn main() {
    println!(
        "Reproducing Fig. 2: the three store layers. Reads from deeper\n\
         layers are faster (nearby) but staler (out of the coherence\n\
         scope, they receive updates lazily).\n"
    );
    let mut table = Table::new(
        "Read characteristics per store layer (coherence scope = permanent)",
        &[
            "layer",
            "read p50",
            "read p99",
            "stale reads",
            "mean staleness",
        ],
    );
    for class in [
        StoreClass::Permanent,
        StoreClass::ObjectInitiated,
        StoreClass::ClientInitiated,
    ] {
        let result = run_layer(class);
        table.row(vec![
            result.label.to_string(),
            fmt_duration(result.latency.p50),
            fmt_duration(result.latency.p99),
            format!("{}%", fmt_f64(result.stale_fraction * 100.0)),
            fmt_duration(result.mean_staleness),
        ]);
    }
    println!("{table}");
}
