//! RECOVERY — Replica fault tolerance as a number: the time from
//! killing a mirror to its first consistent read after recovery.
//!
//! The lifecycle subsystem recovers a crashed replica through a single
//! home-store state transfer (snapshot + version vector + coherence
//! log), so the window in which the replica serves nothing is the
//! transfer round-trip, not a write-by-write replay. This bench drives
//! kill/recover rounds on the deterministic simulator (virtual time)
//! and on the sharded runtime (wall time), and emits the trajectory as
//! `BENCH_recovery.json` for CI to track.
//!
//! Flags: `--smoke` (reduced CI configuration), `--out <path>`
//! (JSON destination, default `BENCH_recovery.json`).

use std::time::{Duration, Instant};

use globe_bench::json::{write_json, Json};
use globe_bench::{fmt_duration, Table};
use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeShard, GlobeSim, ObjectSpec, RegisterDoc,
    ReplicationPolicy, RuntimeConfig,
};
use globe_net::Topology;

/// Runs `rounds` kill/recover cycles against `rt`, measuring each
/// kill → first-consistent-read window with the caller's clock. Also
/// returns the flight-recorder snapshot taken just before shutdown —
/// empty unless the caller configured a `trace_capacity`, so the timed
/// legs stay comparable to earlier commits.
fn run_rounds<R: GlobeRuntime>(
    rt: &mut R,
    now: impl Fn(&mut R) -> Duration,
    writes: usize,
    rounds: usize,
) -> (Vec<Duration>, globe_core::TraceSnapshot) {
    let server = rt.add_node().expect("server node");
    let mirror = rt.add_node().expect("mirror node");
    let client_node = rt.add_node().expect("client node");
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    let object = ObjectSpec::new("/bench/recovery")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .create(rt)
        .expect("create object");
    let writer = rt
        .bind(object, client_node, BindOptions::new().read_node(server))
        .expect("bind writer");
    let reader = rt
        .bind(object, client_node, BindOptions::new().read_node(mirror))
        .expect("bind reader");
    rt.start(&[client_node]);

    let mut samples = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let value = format!("round-{round}");
        for i in 0..writes {
            rt.handle(writer)
                .write(registers::put(&format!("k{i}"), value.as_bytes()))
                .expect("write");
        }
        // Converge the mirror before the fault so each round measures
        // recovery, not propagation backlog.
        wait_for(rt, reader, "k0", value.as_bytes());

        let begin = now(rt);
        rt.restart_store(object, mirror, Box::new(RegisterDoc::new()))
            .expect("restart mirror");
        wait_for(rt, reader, "k0", value.as_bytes());
        samples.push(now(rt).saturating_sub(begin));
    }
    let snap = rt.trace();
    rt.shutdown();
    (samples, snap)
}

/// Sums the log entries shipped by every state transfer and every
/// chunked delta in the trace — the wire cost of recovery that the
/// incremental path exists to shrink.
fn transfer_entries(snap: &globe_core::TraceSnapshot) -> (u64, u64, u64) {
    let mut full = 0u64;
    let mut delta = 0u64;
    let mut delta_sends = 0u64;
    for e in &snap.events {
        match e.event {
            globe_core::ProtocolEvent::StateTransferSent { entries, .. } => {
                full += entries as u64;
            }
            globe_core::ProtocolEvent::DeltaTransferSent { entries, .. } => {
                delta += entries as u64;
                delta_sends += 1;
            }
            _ => {}
        }
    }
    (full, delta, delta_sends)
}

/// Runs `rounds` home fail-over cycles against `rt`: kill the current
/// home (sequencer) store, and measure until the elected successor
/// accepts its first write. Elections ping-pong between the two
/// permanent stores round by round, so every round exercises a real
/// election plus the old home's rejoin.
fn run_failover_rounds<R: GlobeRuntime>(
    rt: &mut R,
    now: impl Fn(&mut R) -> Duration,
    writes: usize,
    rounds: usize,
) -> Vec<Duration> {
    let first = rt.add_node().expect("first permanent node");
    let second = rt.add_node().expect("second permanent node");
    let client_node = rt.add_node().expect("client node");
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    let object = ObjectSpec::new("/bench/home-failover")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(first, StoreClass::Permanent)
        .store(second, StoreClass::Permanent)
        .create(rt)
        .expect("create object");
    let writer = rt
        .bind(object, client_node, BindOptions::new().read_node(second))
        .expect("bind writer");
    rt.start(&[client_node]);

    let mut home = first;
    let mut samples = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let value = format!("round-{round}");
        for i in 0..writes {
            rt.handle(writer)
                .write(registers::put(&format!("k{i}"), value.as_bytes()))
                .expect("write");
        }
        rt.settle(Duration::from_millis(50));

        let begin = now(rt);
        rt.restart_store(object, home, Box::new(RegisterDoc::new()))
            .expect("kill the home");
        // First write accepted by the elected sequencer: the client's
        // session was rerouted, so this write lands on the new home.
        rt.handle(writer)
            .write(registers::put("failover", value.as_bytes()))
            .expect("write to the elected sequencer");
        samples.push(now(rt).saturating_sub(begin));

        home = if home == first { second } else { first };
        rt.settle(Duration::from_millis(50));
    }
    rt.shutdown();
    samples
}

/// Runs `rounds` *unattended* fail-over cycles against `rt`: partition
/// the current home — no driver lifecycle call — and measure until the
/// detector-triggered election yields a sequencer that accepts the
/// client's next write (suspicion, confirmation, self-promotion, and
/// session reroute all included in the window). The healed old home
/// rejoins between rounds, so elections ping-pong between the two
/// permanent stores.
fn run_auto_failover_rounds<R: GlobeRuntime>(
    rt: &mut R,
    now: impl Fn(&mut R) -> Duration,
    writes: usize,
    rounds: usize,
) -> Vec<Duration> {
    let first = rt.add_node().expect("first permanent node");
    let second = rt.add_node().expect("second permanent node");
    let client_node = rt.add_node().expect("client node");
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    let object = ObjectSpec::new("/bench/auto-failover")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(first, StoreClass::Permanent)
        .store(second, StoreClass::Permanent)
        .create(rt)
        .expect("create object");
    let writer = rt
        .bind(object, client_node, BindOptions::new().read_node(second))
        .expect("bind writer");
    rt.start(&[client_node]);

    let mut home = first;
    let mut samples = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let value = format!("round-{round}");
        for i in 0..writes {
            rt.handle(writer)
                .write(registers::put(&format!("k{i}"), value.as_bytes()))
                .expect("write");
        }
        // A read teaches the standby where the writer's session lives,
        // so the takeover announcement can reroute it.
        rt.handle(writer)
            .read(registers::get("k0"))
            .expect("warm the standby's serve path");
        rt.settle(Duration::from_millis(200));

        let begin = now(rt);
        rt.partition_node(home, true).expect("isolate the home");
        // First write accepted by the self-elected sequencer: the
        // session's retransmission lands once the announcement arrives.
        rt.handle(writer)
            .write(registers::put("failover", value.as_bytes()))
            .expect("write to the self-elected sequencer");
        samples.push(now(rt).saturating_sub(begin));

        rt.partition_node(home, false).expect("heal the partition");
        rt.settle(Duration::from_millis(600));
        home = if home == first { second } else { first };
    }
    rt.shutdown();
    samples
}

/// One trace-enabled unattended fail-over on the simulator: the flight
/// recorder journals suspicion, election, takeover, and the first
/// accepted write, and the derived [`FailoverTimeline`] becomes the
/// phase breakdown in the JSON artifact. Kept separate from the timed
/// legs above, which run with `trace_capacity(0)` so their numbers
/// stay comparable to earlier commits.
///
/// [`FailoverTimeline`]: globe_core::trace::FailoverTimeline
fn traced_auto_failover(auto_config: RuntimeConfig, writes: usize) -> globe_core::TraceSnapshot {
    let mut rt = GlobeSim::with_config(Topology::lan(), auto_config.trace_capacity(16_384));
    let first = rt.add_node();
    let second = rt.add_node();
    let client_node = rt.add_node();
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    let object = ObjectSpec::new("/bench/auto-failover-trace")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(first, StoreClass::Permanent)
        .store(second, StoreClass::Permanent)
        .create(&mut rt)
        .expect("create object");
    let writer = rt
        .bind(object, client_node, BindOptions::new().read_node(second))
        .expect("bind writer");
    rt.start(&[client_node]);

    for i in 0..writes {
        rt.handle(writer)
            .write(registers::put(&format!("k{i}"), b"pre"))
            .expect("write");
    }
    rt.handle(writer)
        .read(registers::get("k0"))
        .expect("warm the standby's serve path");
    rt.settle(Duration::from_millis(200));

    rt.partition_node(first, true).expect("isolate the home");
    rt.handle(writer)
        .write(registers::put("failover", b"post"))
        .expect("write to the self-elected sequencer");
    rt.settle(Duration::from_millis(200));

    let snap = rt.trace();
    rt.shutdown();
    snap
}

/// An optional virtual-time instant / duration as microseconds;
/// `Json::Num(NaN)` renders as JSON `null` for the absent case.
fn opt_us(micros: Option<f64>) -> Json {
    Json::Num(micros.unwrap_or(f64::NAN))
}

fn wait_for<R: GlobeRuntime>(
    rt: &mut R,
    reader: globe_core::ClientHandle,
    page: &str,
    want: &[u8],
) {
    for _ in 0..2000 {
        let got = rt.handle(reader).read(registers::get(page)).expect("read");
        if &got[..] == want {
            return;
        }
        rt.settle(Duration::from_millis(2));
    }
    panic!(
        "mirror never converged to {:?}",
        String::from_utf8_lossy(want)
    );
}

fn mean(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.iter().sum::<Duration>() / samples.len() as u32
}

fn sample_json(samples: &[Duration]) -> Json {
    Json::array(samples.iter().map(|d| Json::Num(d.as_secs_f64() * 1e6)))
}

fn main() {
    let smoke = globe_bench::smoke_mode();
    let out = globe_bench::out_path_arg().unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let (writes, rounds) = if smoke { (8, 2) } else { (64, 5) };

    println!(
        "Recovery latency: kill a mirror mid-workload, recover it via the\n\
         home store's state transfer, and measure kill -> first consistent\n\
         read; then kill the home (sequencer) itself and measure kill ->\n\
         first write accepted by the elected successor\n\
         ({writes} pages, {rounds} rounds per backend).\n"
    );

    // Deterministic simulator: latency in virtual time.
    let mut sim = GlobeSim::new(Topology::lan(), 17);
    let (sim_samples, _) = run_rounds(
        &mut sim,
        |rt| rt.now().saturating_since(globe_net::SimTime::ZERO),
        writes,
        rounds,
    );

    // Sharded runtime: latency on the wall clock.
    let epoch = Instant::now();
    let mut shard = GlobeShard::with_config(RuntimeConfig::new().seed(17));
    let (shard_samples, _) = run_rounds(&mut shard, |_| epoch.elapsed(), writes, rounds);

    // Incremental vs full state transfer (sim, virtual time): the same
    // kill/recover drill, once on the default in-memory backend (every
    // recovery ships the whole log) and once on the durable WAL backend
    // with checkpointing (the restarted mirror recovers locally and
    // receives only the suffix it missed). The traces count the log
    // entries each path put on the wire.
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new().seed(21).trace_capacity(65_536),
    );
    let (full_samples, full_snap) = run_rounds(
        &mut sim,
        |rt| rt.now().saturating_since(globe_net::SimTime::ZERO),
        writes,
        rounds,
    );
    let (full_full, full_delta, _) = transfer_entries(&full_snap);
    let full_entries = full_full + full_delta;

    let durable = globe_core::TempDir::new("recovery_latency_incremental");
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new()
            .seed(21)
            .trace_capacity(65_536)
            .durable_dir(durable.path())
            .checkpoint_every((writes / 4).max(1)),
    );
    let (incr_samples, incr_snap) = run_rounds(
        &mut sim,
        |rt| rt.now().saturating_since(globe_net::SimTime::ZERO),
        writes,
        rounds,
    );
    let (incr_full, incr_delta, incr_sends) = transfer_entries(&incr_snap);
    let incr_entries = incr_full + incr_delta;
    println!(
        "transfer cost over {rounds} recoveries: full path {full_entries} log \
         entries, incremental path {incr_entries} ({incr_sends} delta send(s))\n"
    );
    assert!(
        incr_entries <= full_entries,
        "incremental recovery must never ship more log entries than the \
         full path ({incr_entries} > {full_entries})"
    );
    assert!(
        incr_sends > 0,
        "the durable leg must actually ride the delta path"
    );

    // Home fail-over: kill the sequencer itself, measure until the
    // elected successor accepts its first write.
    let mut sim = GlobeSim::new(Topology::lan(), 18);
    let sim_failover = run_failover_rounds(
        &mut sim,
        |rt| rt.now().saturating_since(globe_net::SimTime::ZERO),
        writes,
        rounds,
    );
    let epoch = Instant::now();
    let mut shard = GlobeShard::with_config(RuntimeConfig::new().seed(18));
    let shard_failover = run_failover_rounds(&mut shard, |_| epoch.elapsed(), writes, rounds);

    // Unattended fail-over: partition the sequencer (no driver call)
    // and measure suspicion -> confirmation -> election -> first
    // accepted write. An aggressive detector keeps the window tight.
    let auto_config = RuntimeConfig::new()
        .heartbeat_period(Duration::from_millis(100))
        .suspect_after_misses(2)
        .auto_failover(true)
        .failover_confirm_periods(1);
    let mut sim = GlobeSim::with_config(Topology::lan(), auto_config.clone().seed(19));
    let sim_auto = run_auto_failover_rounds(
        &mut sim,
        |rt| rt.now().saturating_since(globe_net::SimTime::ZERO),
        writes,
        rounds,
    );
    let epoch = Instant::now();
    let mut shard = GlobeShard::with_config(auto_config.clone().seed(19));
    let shard_auto = run_auto_failover_rounds(&mut shard, |_| epoch.elapsed(), writes, rounds);

    // One more unattended fail-over, this time with the flight recorder
    // on: the journal yields the per-phase breakdown (suspicion ->
    // takeover -> first accepted write) that the aggregate samples
    // above cannot separate.
    let trace_snap = traced_auto_failover(auto_config.seed(19), writes);
    let timeline = trace_snap.failover_timeline();
    let violations = globe_core::TraceChecker::check(&trace_snap);
    assert!(
        violations.is_empty(),
        "trace invariant violations during the benched fail-over: {violations:?}"
    );
    println!(
        "auto-failover phases (virtual time): detection -> takeover {}, takeover -> first write {}\n",
        timeline
            .detection_to_takeover()
            .map_or("n/a".to_string(), fmt_duration),
        timeline
            .takeover_to_first_write()
            .map_or("n/a".to_string(), fmt_duration),
    );

    let mut table = Table::new(
        "Kill -> first consistent read / first accepted write",
        &["scenario", "backend", "clock", "mean", "min", "max"],
    );
    for (scenario, backend, clock, samples) in [
        ("mirror-recovery", "sim", "virtual", &sim_samples),
        ("mirror-recovery", "shard", "wall", &shard_samples),
        ("full-transfer", "sim", "virtual", &full_samples),
        ("incremental-transfer", "sim", "virtual", &incr_samples),
        ("home-failover", "sim", "virtual", &sim_failover),
        ("home-failover", "shard", "wall", &shard_failover),
        ("auto-failover", "sim", "virtual", &sim_auto),
        ("auto-failover", "shard", "wall", &shard_auto),
    ] {
        table.row(vec![
            scenario.to_string(),
            backend.to_string(),
            clock.to_string(),
            fmt_duration(mean(samples)),
            fmt_duration(samples.iter().min().copied().unwrap_or_default()),
            fmt_duration(samples.iter().max().copied().unwrap_or_default()),
        ]);
    }
    println!("{table}");

    let doc = Json::obj([
        ("bench", Json::str("recovery_latency")),
        ("mode", Json::str(if smoke { "smoke" } else { "full" })),
        ("writes", Json::Int(writes as i64)),
        ("rounds", Json::Int(rounds as i64)),
        (
            "results",
            Json::array([
                Json::obj([
                    ("scenario", Json::str("mirror-recovery")),
                    ("backend", Json::str("sim")),
                    ("unit", Json::str("virtual_us")),
                    ("samples", sample_json(&sim_samples)),
                    ("mean_us", Json::Num(mean(&sim_samples).as_secs_f64() * 1e6)),
                ]),
                Json::obj([
                    ("scenario", Json::str("mirror-recovery")),
                    ("backend", Json::str("shard")),
                    ("unit", Json::str("wall_us")),
                    ("samples", sample_json(&shard_samples)),
                    (
                        "mean_us",
                        Json::Num(mean(&shard_samples).as_secs_f64() * 1e6),
                    ),
                ]),
                Json::obj([
                    ("scenario", Json::str("full-transfer")),
                    ("backend", Json::str("sim")),
                    ("unit", Json::str("virtual_us")),
                    ("samples", sample_json(&full_samples)),
                    (
                        "mean_us",
                        Json::Num(mean(&full_samples).as_secs_f64() * 1e6),
                    ),
                    ("entries_shipped", Json::Int(full_entries as i64)),
                ]),
                Json::obj([
                    ("scenario", Json::str("incremental-transfer")),
                    ("backend", Json::str("sim")),
                    ("unit", Json::str("virtual_us")),
                    ("samples", sample_json(&incr_samples)),
                    (
                        "mean_us",
                        Json::Num(mean(&incr_samples).as_secs_f64() * 1e6),
                    ),
                    ("entries_shipped", Json::Int(incr_entries as i64)),
                    ("delta_entries", Json::Int(incr_delta as i64)),
                ]),
                Json::obj([
                    ("scenario", Json::str("home-failover")),
                    ("backend", Json::str("sim")),
                    ("unit", Json::str("virtual_us")),
                    ("samples", sample_json(&sim_failover)),
                    (
                        "mean_us",
                        Json::Num(mean(&sim_failover).as_secs_f64() * 1e6),
                    ),
                ]),
                Json::obj([
                    ("scenario", Json::str("home-failover")),
                    ("backend", Json::str("shard")),
                    ("unit", Json::str("wall_us")),
                    ("samples", sample_json(&shard_failover)),
                    (
                        "mean_us",
                        Json::Num(mean(&shard_failover).as_secs_f64() * 1e6),
                    ),
                ]),
                Json::obj([
                    ("scenario", Json::str("auto-failover")),
                    ("backend", Json::str("sim")),
                    ("unit", Json::str("virtual_us")),
                    ("samples", sample_json(&sim_auto)),
                    ("mean_us", Json::Num(mean(&sim_auto).as_secs_f64() * 1e6)),
                ]),
                Json::obj([
                    ("scenario", Json::str("auto-failover")),
                    ("backend", Json::str("shard")),
                    ("unit", Json::str("wall_us")),
                    ("samples", sample_json(&shard_auto)),
                    ("mean_us", Json::Num(mean(&shard_auto).as_secs_f64() * 1e6)),
                ]),
            ]),
        ),
        (
            "auto_failover_trace",
            Json::obj([
                ("backend", Json::str("sim")),
                ("unit", Json::str("virtual_us")),
                ("trace_events", Json::Int(trace_snap.len() as i64)),
                ("trace_violations", Json::Int(violations.len() as i64)),
                (
                    "suspected_us",
                    opt_us(timeline.suspected.map(|t| t.as_nanos() as f64 / 1e3)),
                ),
                (
                    "election_us",
                    opt_us(timeline.election.map(|t| t.as_nanos() as f64 / 1e3)),
                ),
                (
                    "takeover_us",
                    opt_us(timeline.takeover.map(|t| t.as_nanos() as f64 / 1e3)),
                ),
                (
                    "first_write_us",
                    opt_us(
                        timeline
                            .first_write_after
                            .map(|t| t.as_nanos() as f64 / 1e3),
                    ),
                ),
                (
                    "detection_to_takeover_us",
                    opt_us(
                        timeline
                            .detection_to_takeover()
                            .map(|d| d.as_secs_f64() * 1e6),
                    ),
                ),
                (
                    "takeover_to_first_write_us",
                    opt_us(
                        timeline
                            .takeover_to_first_write()
                            .map(|d| d.as_secs_f64() * 1e6),
                    ),
                ),
            ]),
        ),
    ]);
    match write_json(&out, &doc) {
        Ok(_) => println!("wrote {out}"),
        Err(e) => eprintln!("failed to write {out}: {e}"),
    }
}
