//! FIG1 — An object distributed across four address spaces: measures
//! what the local-object architecture buys. A client whose address space
//! hosts a replica reads locally; a client without one forwards every
//! invocation (RPC-style), exactly the contrast Fig. 1 illustrates.

use std::time::Duration;

use globe_bench::{fmt_duration, Table};
use globe_coherence::StoreClass;
use globe_core::{BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, ReplicationPolicy};
use globe_net::Topology;
use globe_web::{methods, Page, WebSemantics};
use globe_workload::LatencySummary;

fn measure(reads_local: bool) -> (LatencySummary, u64) {
    let mut sim = GlobeSim::new(Topology::wan(), 4);
    // Four address spaces, as in Fig. 1.
    let server = sim.add_node_in(globe_net::RegionId::new(0));
    let mirror = sim.add_node_in(globe_net::RegionId::new(1));
    let client_a = sim.add_node_in(globe_net::RegionId::new(1));
    let _client_b = sim.add_node_in(globe_net::RegionId::new(1));

    let placement: Vec<(globe_net::NodeId, StoreClass)> = if reads_local {
        vec![
            (server, StoreClass::Permanent),
            (mirror, StoreClass::ObjectInitiated),
            (client_a, StoreClass::ClientInitiated), // replica in client's space
        ]
    } else {
        vec![
            (server, StoreClass::Permanent),
            (mirror, StoreClass::ObjectInitiated),
        ]
    };
    let object = ObjectSpec::new("/fig1/object")
        .policy(
            ReplicationPolicy::builder(globe_coherence::ObjectModel::Pram)
                .immediate()
                .build()
                .expect("valid"),
        )
        .semantics(WebSemantics::new)
        .stores(&placement)
        .create(&mut sim)
        .expect("create");
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind master");
    sim.handle(master)
        .write(methods::put_page("index.html", &Page::html("fig1")))
        .expect("seed write");
    sim.run_for(Duration::from_secs(2));

    // Client A reads: from its own address space's replica, or remotely
    // from the faraway server.
    let read_target = if reads_local { client_a } else { server };
    let handle = sim
        .bind(object, client_a, BindOptions::new().read_node(read_target))
        .expect("bind client");
    let before = sim.metrics().lock().ops.len();
    for _ in 0..50 {
        sim.handle(handle)
            .read(methods::get_page("index.html"))
            .expect("read");
    }
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    let samples: Vec<Duration> = metrics.ops[before..]
        .iter()
        .map(|op| op.latency())
        .collect();
    (LatencySummary::of(samples), sim.net_stats().bytes_sent)
}

fn main() {
    println!(
        "Reproducing Fig. 1: one distributed object, four address spaces.\n\
         A local object with a replica answers reads in-process; without\n\
         one, every invocation crosses the WAN to the server.\n"
    );
    let mut table = Table::new(
        "Read latency by local-object composition",
        &["binding", "p50", "p99", "max", "net bytes"],
    );
    for (label, local) in [
        ("local replica in client space", true),
        ("RPC-style proxy to server", false),
    ] {
        let (latency, bytes) = measure(local);
        table.row(vec![
            label.to_string(),
            fmt_duration(latency.p50),
            fmt_duration(latency.p99),
            fmt_duration(latency.max),
            bytes.to_string(),
        ]);
    }
    println!("{table}");
}
