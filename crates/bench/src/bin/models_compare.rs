//! CLAIM-3.2 — The §3.2 model-cost claims, measured: "sequential … is
//! hard to implement efficiently"; PRAM "can be implemented efficiently
//! by tagging every update with the updater and a local sequence number";
//! FIFO "will prove better performance when clients overwrite"; eventual
//! is the cheapest and weakest.

use std::time::Duration;

use globe_bench::{compare, Config};
use globe_coherence::ObjectModel;
use globe_core::ReplicationPolicy;
use globe_workload::Arrival;

const SEED: u64 = 32;

fn main() {
    println!(
        "Reproducing the §3.2 coherence-model cost comparison: the same\n\
         multi-writer workload under every object-based model.\n"
    );
    let mut variants = Vec::new();
    for model in [
        ObjectModel::Sequential,
        ObjectModel::Causal,
        ObjectModel::Pram,
        ObjectModel::Fifo,
        ObjectModel::Eventual,
    ] {
        let policy = ReplicationPolicy::builder(model)
            .immediate()
            .build()
            .expect("valid policy");
        let mut config = Config::baseline(policy, SEED);
        config.setup.writers = 3;
        config.setup.readers = 6;
        // Writers use the nearest store as write ingress where the model
        // allows it — the crux of the §3.2 efficiency comparison.
        config.setup.local_writes = true;
        config.workload.writer_arrival = Arrival::Poisson(0.5);
        config.workload.reader_arrival = Arrival::Poisson(1.0);
        config.workload.incremental = false; // overwrites: FIFO's best case
        config.workload.duration = Duration::from_secs(60);
        variants.push((model.paper_name().to_string(), config));
    }
    let table = compare("Coherence models under an identical workload", variants);
    println!("{table}");
    println!(
        "Expected shape (paper §3.2): eventual/FIFO cheapest, PRAM close,\n\
         causal adds dependency metadata, sequential pays the sequencer\n\
         round-trip on every write."
    );
}
