//! TAB1 — Regenerates Table 1 of the paper as a set of measured
//! experiments: for each implementation parameter, sweep its values with
//! everything else fixed, and report the performance consequences the
//! paper argues for in §3.3.

use std::time::Duration;

use globe_bench::{compare, Config, Table};
use globe_coherence::ObjectModel;
use globe_core::{
    AccessTransfer, CoherenceTransfer, OutdateReaction, Propagation, ReplicationPolicy, StoreScope,
    TransferInitiative, WriteSet,
};
use globe_workload::Arrival;

const SEED: u64 = 42;

fn base_policy() -> ReplicationPolicy {
    ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .object_outdate(OutdateReaction::Wait)
        .client_outdate(OutdateReaction::Wait)
        .build()
        .expect("base policy is valid")
}

fn config_with(policy: ReplicationPolicy) -> Config {
    Config::baseline(policy, SEED)
}

fn propagation_table() -> Table {
    // §3.3: update ships data eagerly; invalidate ships tombstones and
    // refetches on demand — which wins depends on the read/write ratio.
    let mut variants = Vec::new();
    for (label, read_rate) in [("read-heavy", 4.0), ("read-light", 0.2)] {
        for (mode_label, propagation) in [
            ("update", Propagation::Update),
            ("invalidate", Propagation::Invalidate),
        ] {
            let policy = ReplicationPolicy {
                propagation,
                object_outdate: OutdateReaction::Demand,
                ..base_policy()
            };
            let mut config = config_with(policy);
            config.workload.reader_arrival = Arrival::Poisson(read_rate);
            variants.push((format!("{mode_label} / {label}"), config));
        }
    }
    compare(
        "Table 1a — Consistency propagation: update vs invalidate",
        variants,
    )
}

fn store_scope_table() -> Table {
    let mut variants = Vec::new();
    for (label, scope) in [
        ("permanent", StoreScope::Permanent),
        ("perm+object-init", StoreScope::PermanentAndObjectInitiated),
        ("all", StoreScope::All),
    ] {
        let policy = ReplicationPolicy {
            store_scope: scope,
            ..base_policy()
        };
        variants.push((label.to_string(), config_with(policy)));
    }
    compare(
        "Table 1b — Store scope: which layers implement the model",
        variants,
    )
}

fn write_set_table() -> Table {
    let mut variants = Vec::new();
    for (label, write_set, writers) in [
        ("single", WriteSet::Single, 1usize),
        ("multiple", WriteSet::Multiple, 4),
    ] {
        let policy = ReplicationPolicy {
            write_set,
            ..base_policy()
        };
        let mut config = config_with(policy);
        config.setup.writers = writers;
        variants.push((label.to_string(), config));
    }
    compare("Table 1c — Write set: single vs multiple writers", variants)
}

fn initiative_table() -> Table {
    let mut variants = Vec::new();
    for (label, initiative) in [
        ("push", TransferInitiative::Push),
        ("pull", TransferInitiative::Pull),
    ] {
        let policy = ReplicationPolicy {
            initiative,
            lazy_period: Duration::from_secs(2),
            ..base_policy()
        };
        variants.push((label.to_string(), config_with(policy)));
    }
    compare("Table 1d — Transfer initiative: push vs pull", variants)
}

fn instant_table() -> Table {
    // §3.3's headline claim: "if a highly replicated Web object is often
    // modified, it may be more efficient to implement a periodic update
    // in which several updates are aggregated, instead of an immediate
    // one. In contrast, if the Web object is seldom modified, then an
    // immediate coherence transfer type avoids unnecessary network
    // traffic."
    let mut variants = Vec::new();
    for (mix, write_rate) in [("hot", 2.0), ("cold", 0.05)] {
        for (label, lazy) in [
            ("immediate", None),
            ("lazy 1s", Some(Duration::from_secs(1))),
            ("lazy 5s", Some(Duration::from_secs(5))),
        ] {
            let policy = match lazy {
                None => base_policy(),
                Some(period) => ReplicationPolicy::builder(ObjectModel::Pram)
                    .lazy(period)
                    .build()
                    .expect("valid"),
            };
            let mut config = config_with(policy);
            config.workload.writer_arrival = Arrival::Poisson(write_rate);
            variants.push((format!("{label} / {mix} object"), config));
        }
    }
    compare(
        "Table 1e — Transfer instant: immediate vs lazy (aggregated)",
        variants,
    )
}

fn access_transfer_table() -> Table {
    let mut variants = Vec::new();
    for (label, access) in [
        ("partial", AccessTransfer::Partial),
        ("full", AccessTransfer::Full),
    ] {
        let policy = ReplicationPolicy {
            access_transfer: access,
            ..base_policy()
        };
        let mut config = config_with(policy);
        config.workload.pages = 16; // bigger documents make `full` hurt
        config.workload.page_bytes = 2048;
        variants.push((label.to_string(), config));
    }
    compare(
        "Table 1f — Access transfer type: partial vs full document",
        variants,
    )
}

fn coherence_transfer_table() -> Table {
    let mut variants = Vec::new();
    for (label, transfer, outdate) in [
        (
            "notification/wait",
            CoherenceTransfer::Notification,
            OutdateReaction::Wait,
        ),
        (
            "notification/demand",
            CoherenceTransfer::Notification,
            OutdateReaction::Demand,
        ),
        ("partial", CoherenceTransfer::Partial, OutdateReaction::Wait),
        ("full", CoherenceTransfer::Full, OutdateReaction::Wait),
    ] {
        let policy = ReplicationPolicy {
            coherence_transfer: transfer,
            object_outdate: outdate,
            ..base_policy()
        };
        let mut config = config_with(policy);
        config.workload.page_bytes = 2048;
        variants.push((label.to_string(), config));
    }
    compare(
        "Table 1g — Coherence transfer type: notification vs partial vs full",
        variants,
    )
}

fn main() {
    println!("Reproducing Table 1: implementation parameters for replication policies\n");
    for table in [
        propagation_table(),
        store_scope_table(),
        write_set_table(),
        initiative_table(),
        instant_table(),
        access_transfer_table(),
        coherence_transfer_table(),
    ] {
        println!("{table}");
    }
}
