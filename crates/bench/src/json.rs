//! A minimal JSON emitter for machine-readable bench artifacts.
//!
//! The bench bins print human-readable tables; CI additionally wants a
//! stable machine-readable trajectory (`BENCH_*.json`) it can diff
//! across commits. The offline build vendors no serde, so this module
//! provides the few constructors the bins need: objects, arrays,
//! numbers, and strings, rendered deterministically in insertion order.

use std::fmt;

/// A JSON value assembled by hand.
#[derive(Debug, Clone)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// A finite number, rendered with enough precision to round-trip.
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// An ordered list.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Str(s) => escape(s, f),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(key, f)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `value` to `path` (pretty enough for diffs: one trailing
/// newline), returning the rendered string.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_json(path: &str, value: &Json) -> std::io::Result<String> {
    let rendered = format!("{value}\n");
    std::fs::write(path, &rendered)?;
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_deterministically() {
        let v = Json::obj([
            ("bench", Json::str("x")),
            ("n", Json::Int(3)),
            ("ok", Json::Bool(true)),
            (
                "results",
                Json::array([Json::obj([("ms", Json::Num(1.5))])]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"bench":"x","n":3,"ok":true,"results":[{"ms":1.5}]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\n").to_string(), r#""a\"b\\c\n""#);
    }
}
