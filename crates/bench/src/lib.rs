//! Experiment harness regenerating every table and figure of the paper.
//!
//! The ICDCS'98 paper's evaluation is a worked prototype rather than a
//! numbers section; this crate turns each of its tables, figures, and
//! explicit performance claims into an executable experiment:
//!
//! | artifact | binary |
//! |---|---|
//! | Table 1 (implementation parameters) | `table1_params` |
//! | Table 2 + Figs. 3–4 (conference page) | `table2_conference` |
//! | Fig. 1 (object across address spaces) | `fig1_binding` |
//! | Fig. 2 (layered store model) | `fig2_layers` |
//! | §3.2 model cost claims | `models_compare` |
//! | §4.2 reliability-from-coherence | `reliability_pram` |
//! | §5 self-adaptive policies (ablation) | `adaptive` |
//!
//! Run any of them with `cargo run -p globe-bench --release --bin <name>`.
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]

mod experiment;
mod table;

pub use experiment::{compare, outcome_row, Config, OUTCOME_COLUMNS};
pub use table::{fmt_bytes, fmt_duration, fmt_f64, Table};
