//! Experiment harness regenerating every table and figure of the paper.
//!
//! The ICDCS'98 paper's evaluation is a worked prototype rather than a
//! numbers section; this crate turns each of its tables, figures, and
//! explicit performance claims into an executable experiment:
//!
//! | artifact | binary |
//! |---|---|
//! | Table 1 (implementation parameters) | `table1_params` |
//! | Table 2 + Figs. 3–4 (conference page) | `table2_conference` |
//! | Fig. 1 (object across address spaces) | `fig1_binding` |
//! | Fig. 2 (layered store model) | `fig2_layers` |
//! | §3.2 model cost claims | `models_compare` |
//! | §4.2 reliability-from-coherence | `reliability_pram` |
//! | §5 self-adaptive policies (ablation) | `adaptive` |
//! | shard backend scaling trajectory | `shard_scaling` |
//! | replica kill → first consistent read | `recovery_latency` |
//! | load-engine saturation sweep per backend | `saturate` |
//!
//! Run any of them with `cargo run -p globe-bench --release --bin <name>`.
//! Criterion micro-benchmarks live under `benches/`. `shard_scaling`,
//! `recovery_latency`, and `saturate` additionally emit machine-readable
//! trajectories (`BENCH_shard.json`, `BENCH_recovery.json`,
//! `BENCH_saturate.json`; see [`json`]) and accept `--smoke` for the
//! quick CI configuration.

#![warn(missing_docs)]

mod experiment;
pub mod json;
mod table;

pub use experiment::{compare, outcome_row, Config, OUTCOME_COLUMNS};
pub use table::{fmt_bytes, fmt_duration, fmt_f64, Table};

/// Whether `--smoke` was passed (or `BENCH_SMOKE=1` set): bench bins
/// then run a reduced configuration suitable for CI.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("BENCH_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// The `--out <path>` argument, if given.
pub fn out_path_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--out" {
            return args.next();
        }
    }
    None
}
