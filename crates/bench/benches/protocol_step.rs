//! Mesobenchmark: end-to-end protocol step cost — how fast the engine
//! drives write-propagate-apply rounds, per coherence model.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, ClientHandle, GlobeRuntime, GlobeSim, ObjectSpec, RegisterDoc,
    ReplicationPolicy,
};
use globe_net::Topology;

fn build(model: ObjectModel) -> (GlobeSim, ClientHandle) {
    let policy = ReplicationPolicy::builder(model)
        .immediate()
        .build()
        .expect("valid");
    let mut sim = GlobeSim::new(Topology::lan(), 1);
    let server = sim.add_node();
    let c1 = sim.add_node();
    let c2 = sim.add_node();
    let object = ObjectSpec::new("/bench")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .store(c1, StoreClass::ClientInitiated)
        .store(c2, StoreClass::ClientInitiated)
        .create(&mut sim)
        .expect("create");
    let handle = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind");
    (sim, handle)
}

fn bench_protocol_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_step");
    group.sample_size(20);
    for model in [
        ObjectModel::Sequential,
        ObjectModel::Pram,
        ObjectModel::Fifo,
        ObjectModel::Causal,
        ObjectModel::Eventual,
    ] {
        group.bench_function(format!("write_propagate/{}", model.paper_name()), |b| {
            b.iter_batched(
                || build(model),
                |(mut sim, handle)| {
                    for i in 0..50 {
                        sim.handle(handle)
                            .write(registers::put("p", format!("v{i}").as_bytes()))
                            .expect("write");
                    }
                    sim.run_for(Duration::from_secs(1));
                    sim
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_step);
criterion_main!(benches);
