//! Mesobenchmark: a complete small workload per coherence model — the
//! Criterion twin of the `models_compare` experiment binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use globe_bench::Config;
use globe_coherence::ObjectModel;
use globe_core::ReplicationPolicy;
use globe_workload::{build, run_workload, Arrival, WorkloadSpec};

fn config(model: ObjectModel) -> Config {
    let policy = ReplicationPolicy::builder(model)
        .immediate()
        .build()
        .expect("valid");
    let mut config = Config::baseline(policy, 3);
    config.setup.local_writes = true;
    config.workload = WorkloadSpec {
        duration: Duration::from_secs(15),
        drain: Duration::from_secs(5),
        reader_arrival: Arrival::Poisson(1.0),
        writer_arrival: Arrival::Poisson(0.4),
        ..config.workload
    };
    config
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models_e2e");
    group.sample_size(10);
    for model in [
        ObjectModel::Sequential,
        ObjectModel::Pram,
        ObjectModel::Fifo,
        ObjectModel::Causal,
        ObjectModel::Eventual,
    ] {
        let cfg = config(model);
        group.bench_function(model.paper_name(), |b| {
            b.iter_batched(
                || build(&cfg.setup).expect("setup"),
                |mut instance| {
                    run_workload(
                        &mut instance.sim,
                        &instance.readers,
                        &instance.writers,
                        &cfg.workload,
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
