//! Microbenchmark: version-vector operations — the §4.2 claim that PRAM
//! is cheap rests on WiD comparison and per-client counters being nearly
//! free.

use criterion::{criterion_group, criterion_main, Criterion};
use globe_coherence::{ClientId, VersionVector, WriteId};

fn vv(n: u32, base: u64) -> VersionVector {
    (0..n)
        .map(|c| (ClientId::new(c), base + u64::from(c)))
        .collect()
}

fn bench_clocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("version_vector");
    for n in [1u32, 8, 64] {
        let a = vv(n, 100);
        let b = vv(n, 90);
        group.bench_function(format!("dominates/{n}"), |bench| {
            bench.iter(|| std::hint::black_box(&a).dominates(std::hint::black_box(&b)))
        });
        group.bench_function(format!("merge_max/{n}"), |bench| {
            bench.iter(|| {
                let mut m = a.clone();
                m.merge_max(std::hint::black_box(&b));
                m
            })
        });
        group.bench_function(format!("is_next/{n}"), |bench| {
            let wid = WriteId::new(ClientId::new(0), 101);
            bench.iter(|| std::hint::black_box(&a).is_next(std::hint::black_box(wid)))
        });
        group.bench_function(format!("wire_roundtrip/{n}"), |bench| {
            bench.iter(|| {
                let bytes = globe_wire::to_bytes(std::hint::black_box(&a));
                globe_wire::from_bytes::<VersionVector>(&bytes).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clocks);
criterion_main!(benches);
