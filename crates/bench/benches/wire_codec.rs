//! Microbenchmark: marshalling throughput of the wire format — the cost
//! every invocation and coherence message pays.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use globe_coherence::{ClientId, VersionVector, WriteId};
use globe_core::{CoherenceMsg, InvocationMessage, LoggedWrite, MethodId, NetMsg, RequestId};
use globe_naming::ObjectId;

fn sample_update(payload: usize) -> NetMsg {
    let deps: VersionVector = (0..8u32).map(|c| (ClientId::new(c), 100u64)).collect();
    NetMsg {
        object: ObjectId::new(42),
        msg: CoherenceMsg::Update {
            write: LoggedWrite {
                wid: WriteId::new(ClientId::new(3), 12345),
                inv: InvocationMessage::new(MethodId::new(1), Bytes::from(vec![7u8; payload])),
                deps,
                page: Some("conference/program.html".to_string()),
                order: Some(9000),
            },
        },
    }
}

fn sample_read() -> NetMsg {
    NetMsg {
        object: ObjectId::new(42),
        msg: CoherenceMsg::ReadReq {
            req: RequestId::new(77),
            client: ClientId::new(3),
            inv: InvocationMessage::new(MethodId::new(0), Bytes::from_static(b"index.html")),
            min_version: (0..4u32).map(|c| (ClientId::new(c), 10u64)).collect(),
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for (label, msg) in [
        ("read_req", sample_read()),
        ("update_512B", sample_update(512)),
        ("update_8KB", sample_update(8192)),
    ] {
        let encoded = globe_wire::to_bytes(&msg);
        group.bench_function(format!("encode/{label}"), |b| {
            b.iter(|| globe_wire::to_bytes(std::hint::black_box(&msg)))
        });
        group.bench_function(format!("decode/{label}"), |b| {
            b.iter_batched(
                || encoded.clone(),
                |bytes: Bytes| {
                    globe_wire::from_bytes::<NetMsg>(std::hint::black_box(&bytes)).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
