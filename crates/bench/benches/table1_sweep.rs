//! Mesobenchmark: the Table-1 transfer-instant sweep as a Criterion
//! comparison group, so regressions in the lazy-aggregation machinery
//! show up in CI.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use globe_bench::Config;
use globe_coherence::ObjectModel;
use globe_core::ReplicationPolicy;
use globe_workload::{build, run_workload, Arrival, WorkloadSpec};

fn config(lazy: Option<Duration>) -> Config {
    let policy = match lazy {
        None => ReplicationPolicy::builder(ObjectModel::Pram)
            .immediate()
            .build()
            .expect("valid"),
        Some(period) => ReplicationPolicy::builder(ObjectModel::Pram)
            .lazy(period)
            .build()
            .expect("valid"),
    };
    let mut config = Config::baseline(policy, 9);
    config.workload = WorkloadSpec {
        duration: Duration::from_secs(15),
        drain: Duration::from_secs(5),
        writer_arrival: Arrival::Poisson(2.0), // hot object
        ..config.workload
    };
    config
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_transfer_instant");
    group.sample_size(10);
    for (label, lazy) in [
        ("immediate", None),
        ("lazy_1s", Some(Duration::from_secs(1))),
        ("lazy_5s", Some(Duration::from_secs(5))),
    ] {
        let cfg = config(lazy);
        group.bench_function(label, |b| {
            b.iter_batched(
                || build(&cfg.setup).expect("setup"),
                |mut instance| {
                    run_workload(
                        &mut instance.sim,
                        &instance.readers,
                        &instance.writers,
                        &cfg.workload,
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
