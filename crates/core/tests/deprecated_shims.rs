//! Soak-period guards for the PR 1 deprecation shims. Each test pins
//! one deprecated entry point's behavior until the planned removal, so
//! the migration window is actually guarded: if a shim silently changes
//! or disappears early, these fail before any downstream caller does.

use globe_coherence::StoreClass;
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeSim, GlobeTcp, RegisterDoc, ReplicationPolicy,
    Semantics,
};
use globe_net::Topology;

fn doc() -> Box<dyn Semantics> {
    Box::new(RegisterDoc::new())
}

/// The positional `GlobeSim::create_object` still creates a working
/// object, equivalent to the `ObjectSpec` path.
#[test]
#[allow(deprecated)]
fn positional_create_object_still_works_on_the_simulator() {
    let mut sim = GlobeSim::new(Topology::lan(), 3);
    let server = sim.add_node();
    let object = sim
        .create_object(
            "/shim/sim-create",
            ReplicationPolicy::personal_home_page(),
            &mut doc,
            &[(server, StoreClass::Permanent)],
        )
        .expect("positional create_object");
    let client = sim
        .bind(object, server, BindOptions::new())
        .expect("bind to positional object");
    sim.handle(client)
        .write(registers::put("p", b"legacy"))
        .expect("write");
    let got = sim.handle(client).read(registers::get("p")).expect("read");
    assert_eq!(&got[..], b"legacy");
}

/// The positional `GlobeTcp::create_object` mirrors the simulator shim
/// over real sockets.
#[test]
#[allow(deprecated)]
fn positional_create_object_still_works_over_sockets() {
    let mut tcp = GlobeTcp::new();
    let server = tcp.add_node().expect("server node");
    let client_node = tcp.add_node().expect("client node");
    let object = tcp
        .create_object(
            "/shim/tcp-create",
            ReplicationPolicy::personal_home_page(),
            &mut doc,
            &[(server, StoreClass::Permanent)],
        )
        .expect("positional create_object");
    let client = tcp
        .bind(object, client_node, BindOptions::new())
        .expect("bind to positional object");
    tcp.start(&[client_node]);
    GlobeRuntime::write(&mut tcp, &client, registers::put("p", b"legacy")).expect("write");
    let got = GlobeRuntime::read(&mut tcp, &client, registers::get("p")).expect("read");
    assert_eq!(&got[..], b"legacy");
    tcp.shutdown();
}

/// The free-threaded `GlobeSim::read` shim still resolves and returns
/// the same bytes as the `ObjectHandle` path.
#[test]
#[allow(deprecated)]
fn free_threaded_read_still_works() {
    let mut sim = GlobeSim::new(Topology::lan(), 4);
    let server = sim.add_node();
    let object = globe_core::ObjectSpec::new("/shim/read")
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .create(&mut sim)
        .expect("create");
    let client = sim.bind(object, server, BindOptions::new()).expect("bind");
    sim.handle(client)
        .write(registers::put("p", b"via-handle"))
        .expect("write");
    let got = GlobeSim::read(&mut sim, &client, registers::get("p")).expect("deprecated read");
    assert_eq!(&got[..], b"via-handle");
}

/// The free-threaded `GlobeSim::write` shim still commits, visible to a
/// modern `ObjectHandle` read.
#[test]
#[allow(deprecated)]
fn free_threaded_write_still_works() {
    let mut sim = GlobeSim::new(Topology::lan(), 5);
    let server = sim.add_node();
    let object = globe_core::ObjectSpec::new("/shim/write")
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .create(&mut sim)
        .expect("create");
    let client = sim.bind(object, server, BindOptions::new()).expect("bind");
    GlobeSim::write(&mut sim, &client, registers::put("p", b"via-shim")).expect("deprecated write");
    let got = sim.handle(client).read(registers::get("p")).expect("read");
    assert_eq!(&got[..], b"via-shim");
}
