//! Property test for the lifecycle state-transfer protocol: random
//! write sequences interleaved with kill/restart of a replica, under
//! each `ObjectModel`. After every run the recovered replica's recorded
//! history must be a prefix-consistent continuation of the pre-failure
//! history — the pre-failure records untouched, the per-client apply
//! order never replayed — and the replica must reconverge to the home
//! store's state.

use std::time::Duration;

use globe_coherence::{check, ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, RegisterDoc, ReplicationPolicy,
};
use globe_net::Topology;
use proptest::prelude::*;

fn doc() -> Box<dyn globe_core::Semantics> {
    Box::new(RegisterDoc::new())
}

/// One step of the generated workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Write `value` to page `p{page}`.
    Write { page: u8, value: u8 },
    /// Crash the cache replica and recover it via state transfer.
    KillRestart,
    /// Let propagation settle for a while.
    Settle,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..8).prop_map(|(page, value)| Op::Write { page, value }),
        Just(Op::KillRestart),
        Just(Op::Settle),
    ]
}

fn arb_model() -> impl Strategy<Value = ObjectModel> {
    proptest::sample::select(vec![
        ObjectModel::Pram,
        ObjectModel::Fifo,
        ObjectModel::Causal,
        ObjectModel::Sequential,
        ObjectModel::Eventual,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Home-store fail-over round-trips: kill(home) → elect → write →
    /// restart(old home), repeated under random writes for every
    /// `ObjectModel`. Each kill elects the surviving permanent store as
    /// the new sequencer; each subsequent kill fails back. Afterwards
    /// every store's history must be a prefix-consistent continuation
    /// (no shrink, no replay), all replicas must reconverge, and the
    /// model checker must still pass over the whole run.
    #[test]
    fn home_failover_roundtrips_stay_prefix_consistent(
        model in arb_model(),
        seed in 0u64..1024,
        rounds in 1usize..4,
        writes_per_round in 1usize..5,
    ) {
        let policy = ReplicationPolicy::builder(model)
            .immediate()
            .build()
            .expect("immediate policies are valid for every model");
        let mut sim = GlobeSim::new(Topology::lan(), seed);
        let a = sim.add_node();
        let b = sim.add_node();
        let object = ObjectSpec::new("/prop/home-failover")
            .policy(policy)
            .semantics_boxed(doc)
            .store(a, StoreClass::Permanent)
            .store(b, StoreClass::Permanent)
            .create(&mut sim)
            .expect("create object");
        let master = sim
            .bind(object, a, BindOptions::new().read_node(a))
            .expect("bind master");

        let mut seq = 0u32;
        for _ in 0..rounds {
            for _ in 0..writes_per_round {
                sim.handle(master)
                    .write(registers::put(&format!("p{}", seq % 4), &[seq as u8]))
                    .expect("write");
                seq += 1;
            }
            sim.run_for(Duration::from_secs(1));

            // Snapshot every store's history at the moment of the crash.
            let home = sim.home_of(object).expect("object has a home");
            let stores = sim.stores_of(object);
            let pre: Vec<(globe_coherence::StoreId, Vec<_>)> = {
                let history = sim.history();
                let h = history.lock();
                stores
                    .iter()
                    .map(|(_, id, _)| (*id, h.store_applies(*id).cloned().collect()))
                    .collect()
            };

            // Kill the home: the other permanent store is elected and
            // the old home rejoins as an ordinary replica.
            sim.restart_store(object, home, doc()).expect("kill home");
            let new_home = sim.home_of(object).expect("object still has a home");
            prop_assert_ne!(new_home, home, "a survivor must be elected");

            // The elected sequencer accepts a write mid-recovery.
            sim.handle(master)
                .write(registers::put("elected", &[seq as u8]))
                .expect("write to the elected sequencer");
            seq += 1;
            sim.run_for(Duration::from_secs(2));

            // Prefix consistency across the fail-over, per store.
            {
                let history = sim.history();
                let h = history.lock();
                for (store, pre_applies) in &pre {
                    let post: Vec<_> = h.store_applies(*store).cloned().collect();
                    prop_assert!(
                        post.len() >= pre_applies.len(),
                        "history must never shrink across a fail-over"
                    );
                    prop_assert_eq!(
                        &post[..pre_applies.len()],
                        &pre_applies[..],
                        "pre-failover history must survive as an untouched prefix"
                    );
                }
            }
        }
        sim.run_for(Duration::from_secs(3));

        // All replicas reconverge on the final sequencer's state.
        prop_assert_eq!(
            sim.store_digest(object, a),
            sim.store_digest(object, b),
            "replicas must reconverge after the fail-over round-trips (model {:?}, seed {}, rounds {}, writes {})",
            model, seed, rounds, writes_per_round
        );

        {
            let history = sim.history();
            let h = history.lock();
            if let Err(violation) = check::check_object_model(&h, model) {
                return Err(TestCaseError::fail(format!(
                    "model {model:?} violated across home fail-overs: {violation}"
                )));
            }
            // The single client's applies at each store must stay
            // strictly increasing: fail-over never replays history.
            if model != ObjectModel::Eventual {
                for (_, store, _) in sim.stores_of(object) {
                    let mut last = 0;
                    for apply in h.store_applies(store) {
                        prop_assert!(
                            apply.wid.seq > last,
                            "apply {:?} replays or reorders across a fail-over",
                            apply.wid
                        );
                        last = apply.wid.seq;
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Unattended fail-over under every `ObjectModel`: random writes,
    /// then a partition of the home with **no** lifecycle call — the
    /// detector must confirm the outage and the survivor must
    /// self-elect, accept a write, and re-absorb the healed old home,
    /// with every store's history a prefix-consistent continuation and
    /// the model checker still green over the whole run.
    #[test]
    fn auto_failover_stays_prefix_consistent_across_models(
        model in arb_model(),
        seed in 0u64..1024,
        writes in 1usize..6,
    ) {
        let hb = std::time::Duration::from_millis(500);
        let policy = ReplicationPolicy::builder(model)
            .immediate()
            .build()
            .expect("immediate policies are valid for every model");
        let mut sim = GlobeSim::with_config(
            Topology::lan(),
            globe_core::RuntimeConfig::new()
                .seed(seed)
                .heartbeat_period(hb)
                .suspect_after_misses(2)
                .auto_failover(true)
                .failover_confirm_periods(1),
        );
        let a = sim.add_node();
        let b = sim.add_node();
        let client_node = sim.add_node();
        let object = ObjectSpec::new("/prop/auto-failover")
            .policy(policy)
            .semantics_boxed(doc)
            .store(a, StoreClass::Permanent)
            .store(b, StoreClass::Permanent)
            .create(&mut sim)
            .expect("create object");
        // Reads via the survivor teach it the client's node, so the
        // takeover announcement reroutes the session.
        let master = sim
            .bind(object, client_node, BindOptions::new().read_node(b))
            .expect("bind master");
        for i in 0..writes {
            sim.handle(master)
                .write(registers::put(&format!("p{}", i % 3), &[i as u8]))
                .expect("write");
        }
        sim.handle(master)
            .read(registers::get("p0"))
            .expect("warm the survivor's serve path");
        sim.run_for(Duration::from_secs(2));

        let pre: Vec<(globe_coherence::StoreId, Vec<_>)> = {
            let history = sim.history();
            let h = history.lock();
            sim.stores_of(object)
                .iter()
                .map(|(_, id, _)| (*id, h.store_applies(*id).cloned().collect()))
                .collect()
        };

        // Partition the home; nobody calls remove/restart.
        sim.partition_node(a, true).expect("isolate the home");
        sim.run_for(Duration::from_secs(4));
        prop_assert_eq!(
            sim.home_of(object),
            Some(b),
            "the survivor must self-elect (model {:?}, seed {})",
            model,
            seed
        );
        // The elected sequencer accepts the rerouted session's write.
        sim.handle(master)
            .write(registers::put("elected", &[0xEE]))
            .expect("write to the self-elected sequencer");
        sim.run_for(Duration::from_secs(1));

        // Heal: the deposed home rejoins as an ordinary replica.
        sim.partition_node(a, false).expect("heal the partition");
        sim.run_for(Duration::from_secs(5));
        prop_assert_eq!(sim.home_of(object), Some(b));
        prop_assert_eq!(
            sim.store_digest(object, a),
            sim.store_digest(object, b),
            "the deposed home must converge on the elected sequencer's log"
        );

        // Prefix consistency per store, and the model still holds.
        {
            let history = sim.history();
            let h = history.lock();
            for (store, pre_applies) in &pre {
                let post: Vec<_> = h.store_applies(*store).cloned().collect();
                prop_assert!(post.len() >= pre_applies.len());
                prop_assert_eq!(
                    &post[..pre_applies.len()],
                    &pre_applies[..],
                    "pre-partition history must survive as an untouched prefix"
                );
            }
            if let Err(violation) = check::check_object_model(&h, model) {
                return Err(TestCaseError::fail(format!(
                    "model {model:?} violated across unattended fail-over: {violation}"
                )));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn recovery_is_a_prefix_consistent_continuation(
        model in arb_model(),
        seed in 0u64..1024,
        ops in proptest::collection::vec(arb_op(), 1..16),
    ) {
        let policy = ReplicationPolicy::builder(model)
            .immediate()
            .build()
            .expect("immediate policies are valid for every model");
        let mut sim = GlobeSim::new(Topology::lan(), seed);
        let server = sim.add_node();
        let cache = sim.add_node();
        let object = ObjectSpec::new("/prop/lifecycle")
            .policy(policy)
            .semantics_boxed(doc)
            .store(server, StoreClass::Permanent)
            .store(cache, StoreClass::ClientInitiated)
            .create(&mut sim)
            .expect("create object");
        let master = sim
            .bind(object, server, BindOptions::new().read_node(server))
            .expect("bind master");
        let cache_store = sim
            .stores_of(object)
            .iter()
            .find(|(n, _, _)| *n == cache)
            .map(|(_, id, _)| *id)
            .expect("cache store id");

        let mut restarts = 0u32;
        for op in &ops {
            match op {
                Op::Write { page, value } => {
                    sim.handle(master)
                        .write(registers::put(&format!("p{page}"), &[*value]))
                        .expect("write");
                }
                Op::KillRestart => {
                    // Snapshot the cache's recorded history at the moment
                    // of the crash; recovery must preserve it verbatim.
                    let pre: Vec<_> = {
                        let history = sim.history();
                        let h = history.lock();
                        h.store_applies(cache_store).cloned().collect()
                    };
                    sim.restart_store(object, cache, doc()).expect("restart");
                    sim.run_for(Duration::from_secs(2));
                    let history = sim.history();
                    let h = history.lock();
                    let post: Vec<_> = h.store_applies(cache_store).cloned().collect();
                    prop_assert!(
                        post.len() >= pre.len(),
                        "history must never shrink across a restart"
                    );
                    prop_assert_eq!(
                        &post[..pre.len()],
                        &pre[..],
                        "pre-failure history must survive as an untouched prefix"
                    );
                    restarts += 1;
                }
                Op::Settle => sim.run_for(Duration::from_millis(500)),
            }
        }
        sim.run_for(Duration::from_secs(3));
        let _ = restarts;

        // Convergence: the recovered replica ends byte-identical to the
        // home store.
        prop_assert_eq!(
            sim.store_digest(object, cache),
            sim.store_digest(object, server),
            "recovered replica must reconverge with the home store"
        );

        // The whole recorded run still satisfies the object's coherence
        // model, restarts included.
        {
            let history = sim.history();
            let h = history.lock();
            if let Err(violation) = check::check_object_model(&h, model) {
                return Err(TestCaseError::fail(format!(
                    "model {model:?} violated after {restarts} restart(s): {violation}"
                )));
            }
            // Under models with per-client ordering, the single client's
            // applies at the cache must be strictly increasing — i.e. the
            // continuation never replays the pre-failure prefix.
            if model != ObjectModel::Eventual {
                let mut last = 0;
                for apply in h.store_applies(cache_store) {
                    prop_assert!(
                        apply.wid.seq > last,
                        "apply {:?} replays or reorders across a restart",
                        apply.wid
                    );
                    last = apply.wid.seq;
                }
            }
        }
    }
}
