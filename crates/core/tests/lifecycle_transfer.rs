//! Property test for the lifecycle state-transfer protocol: random
//! write sequences interleaved with kill/restart of a replica, under
//! each `ObjectModel`. After every run the recovered replica's recorded
//! history must be a prefix-consistent continuation of the pre-failure
//! history — the pre-failure records untouched, the per-client apply
//! order never replayed — and the replica must reconverge to the home
//! store's state.

use std::time::Duration;

use globe_coherence::{check, ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, RegisterDoc, ReplicationPolicy,
};
use globe_net::Topology;
use proptest::prelude::*;

fn doc() -> Box<dyn globe_core::Semantics> {
    Box::new(RegisterDoc::new())
}

/// One step of the generated workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Write `value` to page `p{page}`.
    Write { page: u8, value: u8 },
    /// Crash the cache replica and recover it via state transfer.
    KillRestart,
    /// Let propagation settle for a while.
    Settle,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..8).prop_map(|(page, value)| Op::Write { page, value }),
        Just(Op::KillRestart),
        Just(Op::Settle),
    ]
}

fn arb_model() -> impl Strategy<Value = ObjectModel> {
    proptest::sample::select(vec![
        ObjectModel::Pram,
        ObjectModel::Fifo,
        ObjectModel::Causal,
        ObjectModel::Sequential,
        ObjectModel::Eventual,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn recovery_is_a_prefix_consistent_continuation(
        model in arb_model(),
        seed in 0u64..1024,
        ops in proptest::collection::vec(arb_op(), 1..16),
    ) {
        let policy = ReplicationPolicy::builder(model)
            .immediate()
            .build()
            .expect("immediate policies are valid for every model");
        let mut sim = GlobeSim::new(Topology::lan(), seed);
        let server = sim.add_node();
        let cache = sim.add_node();
        let object = ObjectSpec::new("/prop/lifecycle")
            .policy(policy)
            .semantics_boxed(doc)
            .store(server, StoreClass::Permanent)
            .store(cache, StoreClass::ClientInitiated)
            .create(&mut sim)
            .expect("create object");
        let master = sim
            .bind(object, server, BindOptions::new().read_node(server))
            .expect("bind master");
        let cache_store = sim
            .stores_of(object)
            .iter()
            .find(|(n, _, _)| *n == cache)
            .map(|(_, id, _)| *id)
            .expect("cache store id");

        let mut restarts = 0u32;
        for op in &ops {
            match op {
                Op::Write { page, value } => {
                    sim.handle(master)
                        .write(registers::put(&format!("p{page}"), &[*value]))
                        .expect("write");
                }
                Op::KillRestart => {
                    // Snapshot the cache's recorded history at the moment
                    // of the crash; recovery must preserve it verbatim.
                    let pre: Vec<_> = {
                        let history = sim.history();
                        let h = history.lock();
                        h.store_applies(cache_store).cloned().collect()
                    };
                    sim.restart_store(object, cache, doc()).expect("restart");
                    sim.run_for(Duration::from_secs(2));
                    let history = sim.history();
                    let h = history.lock();
                    let post: Vec<_> = h.store_applies(cache_store).cloned().collect();
                    prop_assert!(
                        post.len() >= pre.len(),
                        "history must never shrink across a restart"
                    );
                    prop_assert_eq!(
                        &post[..pre.len()],
                        &pre[..],
                        "pre-failure history must survive as an untouched prefix"
                    );
                    restarts += 1;
                }
                Op::Settle => sim.run_for(Duration::from_millis(500)),
            }
        }
        sim.run_for(Duration::from_secs(3));
        let _ = restarts;

        // Convergence: the recovered replica ends byte-identical to the
        // home store.
        prop_assert_eq!(
            sim.store_digest(object, cache),
            sim.store_digest(object, server),
            "recovered replica must reconverge with the home store"
        );

        // The whole recorded run still satisfies the object's coherence
        // model, restarts included.
        {
            let history = sim.history();
            let h = history.lock();
            if let Err(violation) = check::check_object_model(&h, model) {
                return Err(TestCaseError::fail(format!(
                    "model {model:?} violated after {restarts} restart(s): {violation}"
                )));
            }
            // Under models with per-client ordering, the single client's
            // applies at the cache must be strictly increasing — i.e. the
            // continuation never replays the pre-failure prefix.
            if model != ObjectModel::Eventual {
                let mut last = 0;
                for apply in h.store_applies(cache_store) {
                    prop_assert!(
                        apply.wid.seq > last,
                        "apply {:?} replays or reorders across a restart",
                        apply.wid
                    );
                    last = apply.wid.seq;
                }
            }
        }
    }
}
