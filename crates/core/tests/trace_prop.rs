//! Property tests for the flight recorder: under random interleavings
//! of writes, store kills/restarts, and idle periods, the captured
//! journal must stay monotone — the merged snapshot is time-ordered,
//! per-write stage timestamps never run backwards, per-tenure sequence
//! numbers stay contiguous, and the trace invariants hold.

use std::time::Duration;

use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, RegisterDoc, ReplicationPolicy,
    RuntimeConfig, TraceChecker,
};
use globe_net::Topology;
use proptest::prelude::*;

/// One step of the randomized workload.
#[derive(Debug, Clone)]
enum Op {
    /// Write one of a small set of pages through the session.
    Write(u8),
    /// Kill and recover the store on the original home node.
    RestartHome,
    /// Kill and recover the store on the standby node.
    RestartStandby,
    /// Let the deployment idle (timers fire, pushes land).
    Settle(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Writes dominate; restarts are rare enough that most runs still
    // make progress between faults (the vendored `prop_oneof!` has no
    // weight syntax, so weighting is by repetition).
    prop_oneof![
        (0u8..4).prop_map(Op::Write),
        (0u8..4).prop_map(Op::Write),
        (0u8..4).prop_map(Op::Write),
        (0u8..4).prop_map(Op::Write),
        Just(Op::RestartHome),
        Just(Op::RestartStandby),
        (1u8..5).prop_map(Op::Settle),
        (1u8..5).prop_map(Op::Settle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_stays_monotone_under_random_faults(
        seed in 0u64..1_000,
        ops in proptest::collection::vec(arb_op(), 1..10),
    ) {
        let config = RuntimeConfig::new()
            .seed(seed)
            .call_timeout(Duration::from_secs(10))
            .batch_max(3)
            .batch_window(Duration::from_millis(5))
            .trace_capacity(4096);
        let mut sim = GlobeSim::with_config(Topology::lan(), config);
        let home = sim.add_node();
        let standby = sim.add_node();
        let writer_node = sim.add_node();
        let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
            .immediate()
            .build()
            .unwrap();
        let object = ObjectSpec::new("/prop/trace")
            .policy(policy)
            .semantics(RegisterDoc::new)
            .store(home, StoreClass::Permanent)
            .store(standby, StoreClass::Permanent)
            .create(&mut sim)
            .unwrap();
        let writer = sim
            .bind(object, writer_node, BindOptions::new().read_node(standby))
            .unwrap();
        sim.start(&[writer_node]);

        // Warm the session so takeover announcements can reroute it.
        sim.handle(writer).write(registers::put("warm", b"w")).unwrap();
        let warm = sim.handle(writer).read(registers::get("warm")).unwrap();
        prop_assert_eq!(&warm[..], b"w");

        let mut issued = 0u32;
        for op in &ops {
            match op {
                Op::Write(k) => {
                    issued += 1;
                    sim.handle(writer)
                        .write(registers::put(
                            &format!("k{k}"),
                            format!("v{issued}").as_bytes(),
                        ))
                        .unwrap();
                }
                Op::RestartHome => {
                    sim.restart_store(object, home, Box::new(RegisterDoc::new())).unwrap();
                    sim.settle(Duration::from_millis(50));
                }
                Op::RestartStandby => {
                    sim.restart_store(object, standby, Box::new(RegisterDoc::new())).unwrap();
                    sim.settle(Duration::from_millis(50));
                }
                Op::Settle(ticks) => {
                    sim.settle(Duration::from_millis(u64::from(*ticks) * 10));
                }
            }
        }
        sim.settle(Duration::from_millis(200));

        let snap = sim.trace();
        prop_assert!(!snap.is_empty(), "tracing was on; the journal must not be empty");
        prop_assert_eq!(snap.dropped, 0, "the workload fits the ring");

        // The merged snapshot is globally time-ordered.
        for pair in snap.events.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at, "snapshot must be time-sorted");
        }

        // Per-write stage timestamps never run backwards: staged, then
        // ordered, then applied, then acked.
        for b in snap.write_breakdowns() {
            if let (Some(staged), Some(ordered)) = (b.staged, b.ordered) {
                prop_assert!(staged <= ordered, "{:?}: staged after ordered", b.write);
            }
            if let (Some(ordered), Some(applied)) = (b.ordered, b.applied) {
                prop_assert!(ordered <= applied, "{:?}: ordered after applied", b.write);
            }
            if let (Some(applied), Some(acked)) = (b.applied, b.acked) {
                prop_assert!(applied <= acked, "{:?}: applied after acked", b.write);
            }
        }

        // The invariant checker agrees: no ack before apply, contiguous
        // sequence numbers within every (node, epoch) tenure, no stale
        // lease serves.
        let violations = TraceChecker::check(&snap);
        prop_assert!(violations.is_empty(), "trace violations: {violations:?}");

        sim.shutdown();
    }
}
