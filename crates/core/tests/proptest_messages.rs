//! Property tests: every coherence protocol message round-trips through
//! the wire format, and arbitrary bytes never panic the decoder — a
//! replica must survive any datagram the network hands it.

use bytes::Bytes;
use globe_coherence::{ClientId, StoreId, VersionVector, WriteId};
use globe_core::{
    CallOutcome, CoherenceMsg, InvocationMessage, LoggedWrite, MethodId, NetMsg, ReplicationPolicy,
    RequestId,
};
use globe_naming::ObjectId;
use globe_net::NodeId;
use proptest::prelude::*;

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    proptest::collection::btree_map(0u32..6, 1u64..100, 0..6).prop_map(|m| {
        m.into_iter()
            .map(|(c, s)| (ClientId::new(c), s))
            .collect::<VersionVector>()
    })
}

fn arb_wid() -> impl Strategy<Value = WriteId> {
    (0u32..8, 1u64..1000).prop_map(|(c, s)| WriteId::new(ClientId::new(c), s))
}

fn arb_inv() -> impl Strategy<Value = InvocationMessage> {
    (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
        .prop_map(|(m, args)| InvocationMessage::new(MethodId::new(m), Bytes::from(args)))
}

fn arb_write() -> impl Strategy<Value = LoggedWrite> {
    (
        arb_wid(),
        arb_inv(),
        arb_vv(),
        proptest::option::of("[a-z]{1,12}"),
        proptest::option::of(0u64..10_000),
    )
        .prop_map(|(wid, inv, deps, page, order)| LoggedWrite {
            wid,
            inv,
            deps,
            page,
            order,
        })
}

fn arb_msg() -> impl Strategy<Value = CoherenceMsg> {
    prop_oneof![
        (any::<u64>(), 0u32..8, arb_inv(), arb_vv()).prop_map(|(r, c, inv, min_version)| {
            CoherenceMsg::ReadReq {
                req: RequestId::new(r),
                client: ClientId::new(c),
                inv,
                min_version,
            }
        }),
        (any::<u64>(), 0u32..8, arb_write()).prop_map(|(r, c, write)| CoherenceMsg::WriteReq {
            req: RequestId::new(r),
            client: ClientId::new(c),
            write,
        }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..32),
            arb_vv(),
            proptest::option::of(arb_wid()),
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..32)),
        )
            .prop_map(|(r, body, version, sees, full)| CoherenceMsg::Reply {
                req: RequestId::new(r),
                outcome: CallOutcome::Ok(Bytes::from(body)),
                version,
                sees,
                full_state: full.map(Bytes::from),
            }),
        (any::<u64>(), ".{0,24}").prop_map(|(r, msg)| CoherenceMsg::Reply {
            req: RequestId::new(r),
            outcome: CallOutcome::Err(msg),
            version: VersionVector::new(),
            sees: None,
            full_state: None,
        }),
        arb_write().prop_map(|write| CoherenceMsg::Update { write }),
        (proptest::collection::vec(arb_write(), 0..5), arb_vv())
            .prop_map(|(writes, version)| CoherenceMsg::UpdateBatch { writes, version }),
        (
            arb_vv(),
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec(("[a-z]{1,8}", arb_wid()), 0..4),
            proptest::option::of(any::<u64>()),
        )
            .prop_map(
                |(version, state, writers, order_high)| CoherenceMsg::FullState {
                    version,
                    state: Bytes::from(state),
                    writers,
                    order_high,
                }
            ),
        (
            proptest::collection::vec(proptest::option::of("[a-z]{1,8}"), 0..4),
            arb_vv()
        )
            .prop_map(|(pages, version)| CoherenceMsg::Invalidate { pages, version }),
        arb_vv().prop_map(|version| CoherenceMsg::Notify { version }),
        (arb_vv(), proptest::option::of(any::<u64>()))
            .prop_map(|(since, order_since)| CoherenceMsg::DemandUpdate { since, order_since }),
        (0u32..8, any::<u64>()).prop_map(|(c, s)| CoherenceMsg::DemandResend {
            client: ClientId::new(c),
            from_seq: s,
        }),
        Just(CoherenceMsg::PolicyUpdate {
            policy: ReplicationPolicy::conference_page(),
        }),
        (0u32..8, 0u32..16, arb_class(), arb_vv()).prop_map(|(n, s, class, version)| {
            CoherenceMsg::JoinRequest {
                node: NodeId::new(n),
                store: StoreId::new(s),
                class,
                version,
            }
        }),
        (
            arb_vv(),
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec(("[a-z]{1,8}", arb_wid()), 0..4),
            proptest::option::of(any::<u64>()),
            proptest::collection::vec(arb_write(), 0..5),
            arb_members(),
        )
            .prop_map(|(version, state, writers, order_high, log, peers)| {
                CoherenceMsg::StateTransfer {
                    version,
                    state: Bytes::from(state),
                    writers,
                    order_high,
                    log,
                    peers,
                }
            }),
        (0u32..8).prop_map(|n| CoherenceMsg::Leave {
            node: NodeId::new(n)
        }),
        // The node-scoped detector frames: any byte-level mangling of
        // these must fail cleanly too (covered by the garbage and
        // truncation properties below, which draw from this strategy).
        any::<u64>().prop_map(|seq| CoherenceMsg::NodePing { seq }),
        any::<u64>().prop_map(|seq| CoherenceMsg::NodePong { seq }),
        (arb_members(), any::<u64>())
            .prop_map(|(peers, epoch)| CoherenceMsg::ElectRequest { peers, epoch }),
        (
            (0u32..8, 0u32..8, 0u32..16, any::<u64>()),
            arb_vv(),
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec(("[a-z]{1,8}", arb_wid()), 0..4),
            proptest::option::of(any::<u64>()),
            proptest::collection::vec(arb_write(), 0..5),
            arb_members(),
        )
            .prop_map(
                |(
                    (old_home, new_home, new_home_store, epoch),
                    version,
                    state,
                    writers,
                    order_high,
                    log,
                    peers,
                )| {
                    CoherenceMsg::SequencerHandoff {
                        old_home: NodeId::new(old_home),
                        new_home: NodeId::new(new_home),
                        new_home_store: StoreId::new(new_home_store),
                        epoch,
                        version,
                        state: Bytes::from(state),
                        writers,
                        order_high,
                        log,
                        peers,
                    }
                },
            ),
        arb_members().prop_map(|peers| CoherenceMsg::Membership { peers }),
        // The group-commit and read-lease frames (PR 7): batched write
        // fan-out plus the lease handshake triple.
        (
            any::<u64>(),
            proptest::collection::vec(arb_write(), 0..5),
            arb_vv()
        )
            .prop_map(|(first_order, writes, version)| CoherenceMsg::WriteBatch {
                first_order,
                writes,
                version,
            }),
        (0u32..8, 0u32..16).prop_map(|(n, s)| CoherenceMsg::LeaseRequest {
            node: NodeId::new(n),
            store: StoreId::new(s),
        }),
        (any::<u64>(), arb_vv(), arb_duration()).prop_map(|(epoch, version, duration)| {
            CoherenceMsg::LeaseGrant {
                epoch,
                version,
                duration,
            }
        }),
        any::<u64>().prop_map(|epoch| CoherenceMsg::LeaseRevoke { epoch }),
        // The incremental state-transfer frames (PR 9): chunked deltas
        // plus the checkpoint announce/ack/compact triple.
        (
            (0u64..8, 1u64..8),
            proptest::collection::vec(arb_write(), 0..5),
            arb_vv(),
            proptest::option::of(any::<u64>()),
            arb_members(),
        )
            .prop_map(|((chunk, chunks), writes, version, order_high, peers)| {
                CoherenceMsg::StateDelta {
                    chunk,
                    chunks,
                    writes,
                    version,
                    order_high,
                    peers,
                }
            },),
        arb_vv().prop_map(|version| CoherenceMsg::CheckpointAnnounce { version }),
        (0u32..8, arb_vv()).prop_map(|(n, version)| CoherenceMsg::CheckpointAck {
            node: NodeId::new(n),
            version,
        }),
        arb_vv().prop_map(|version| CoherenceMsg::CompactBelow { version }),
    ]
}

fn arb_duration() -> impl Strategy<Value = std::time::Duration> {
    (0u64..10_000_000).prop_map(std::time::Duration::from_micros)
}

/// A wire-carried membership list: `(node, store id, class)` triples.
fn arb_members() -> impl Strategy<Value = Vec<globe_core::WireMember>> {
    proptest::collection::vec((0u32..8, 0u32..16, arb_class()), 0..4).prop_map(|members| {
        members
            .into_iter()
            .map(|(n, s, c)| (NodeId::new(n), globe_coherence::StoreId::new(s), c))
            .collect()
    })
}

fn arb_class() -> impl Strategy<Value = globe_coherence::StoreClass> {
    proptest::sample::select(vec![
        globe_coherence::StoreClass::Permanent,
        globe_coherence::StoreClass::ObjectInitiated,
        globe_coherence::StoreClass::ClientInitiated,
    ])
}

proptest! {
    #[test]
    fn net_msg_roundtrips(object in any::<u64>(), msg in arb_msg()) {
        let env = NetMsg {
            object: ObjectId::new(object),
            msg,
        };
        let bytes = globe_wire::to_bytes(&env);
        prop_assert_eq!(bytes.len(), globe_wire::WireEncode::encoded_len(&env));
        let back: NetMsg = globe_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, env);
    }

    /// Arbitrary garbage must never panic the frame decoder.
    #[test]
    fn garbage_frames_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = globe_wire::from_bytes::<NetMsg>(&bytes);
    }

    /// Truncating a valid frame at any boundary yields an error, not a
    /// panic or a bogus success.
    #[test]
    fn truncated_frames_error_cleanly(msg in arb_msg(), cut in any::<prop::sample::Index>()) {
        let env = NetMsg { object: ObjectId::new(1), msg };
        let bytes = globe_wire::to_bytes(&env);
        if bytes.len() > 1 {
            let cut = 1 + cut.index(bytes.len() - 1);
            if cut < bytes.len() {
                prop_assert!(globe_wire::from_bytes::<NetMsg>(&bytes[..cut]).is_err());
            }
        }
    }

    /// Arbitrary garbage must never panic the invocation decoder either
    /// — invocations ride inside writes, so a hostile payload reaches
    /// this decoder on every store.
    #[test]
    fn garbage_invocations_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = globe_wire::from_bytes::<InvocationMessage>(&bytes);
    }

    /// Truncating a valid invocation at any boundary yields an error,
    /// never a panic.
    #[test]
    fn truncated_invocations_error_cleanly(inv in arb_inv(), cut in any::<prop::sample::Index>()) {
        let bytes = globe_wire::to_bytes(&inv);
        if bytes.len() > 1 {
            let cut = 1 + cut.index(bytes.len() - 1);
            if cut < bytes.len() {
                prop_assert!(globe_wire::from_bytes::<InvocationMessage>(&bytes[..cut]).is_err());
            }
        }
    }
}
