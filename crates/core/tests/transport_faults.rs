//! Malformed frames on the receive path are dropped *observably*: every
//! backend counts them into the shared metrics store instead of
//! panicking (or silently swallowing them), so a deployment can tell a
//! flaky transport from a healthy one.

use bytes::Bytes;
use globe_coherence::StoreClass;
use globe_core::{BindOptions, GlobeRuntime, GlobeShard, GlobeSim, ObjectSpec, RegisterDoc};
use globe_net::Topology;

fn doc() -> Box<dyn globe_core::Semantics> {
    Box::new(RegisterDoc::new())
}

#[test]
fn sim_counts_malformed_frames() {
    let mut sim = GlobeSim::new(Topology::lan(), 91);
    let server = sim.add_node();
    let browser = sim.add_node();
    let object = ObjectSpec::new("/faults/garbage")
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    let client = sim.bind(object, browser, BindOptions::new()).unwrap();

    // A hand-crafted corrupt datagram: a huge bogus varint length.
    sim.net_mut().with_ctx(browser, |ctx| {
        ctx.send(server, Bytes::from_static(&[0xFF; 16]));
    });
    sim.run_until_quiescent();

    let metrics = sim.metrics();
    assert!(
        metrics.lock().transport.malformed_frames >= 1,
        "the dropped frame must be counted"
    );
    drop(metrics);

    // The replica survives and keeps serving.
    let value = sim
        .handle(client)
        .write(globe_core::registers::put("p", b"alive"))
        .unwrap();
    assert!(value.is_empty());
    let read = sim
        .handle(client)
        .read(globe_core::registers::get("p"))
        .unwrap();
    assert_eq!(&read[..], b"alive");
}

#[test]
fn shard_counts_malformed_frames() {
    // The sharded runtime drops a corrupt frame at the routing layer
    // (the object-id peek) and counts it the same way.
    let mut shard = GlobeShard::new(2);
    let server = shard.add_node().unwrap();
    let object = ObjectSpec::new("/faults/shard-garbage")
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .create(&mut shard)
        .unwrap();
    let client = shard.bind(object, server, BindOptions::new()).unwrap();
    shard.start(&[]);

    assert_eq!(
        shard.metrics().lock().transport.malformed_frames,
        0,
        "a clean run counts nothing"
    );
    // A corrupt frame (bogus varint object id) dies at the router's
    // object-id peek — counted, not panicked on, not delivered.
    shard.inject_frame(server, server, Bytes::from_static(&[0xFF; 16]));
    assert_eq!(
        shard.metrics().lock().transport.malformed_frames,
        1,
        "the dropped frame must be counted"
    );

    // The runtime survives and keeps serving.
    shard
        .handle(client)
        .write(globe_core::registers::put("p", b"v"))
        .unwrap();
    let read = shard
        .handle(client)
        .read(globe_core::registers::get("p"))
        .unwrap();
    assert_eq!(&read[..], b"v");
    shard.shutdown();
}
