//! The same protocols over real TCP sockets: a smoke test of the
//! sans-IO claim. A server and a cache run on their own threads; the
//! Web-master client (with Read-Your-Writes) and a user client are
//! driven from the test thread.

use std::time::Duration;

use globe_coherence::{ClientModel, StoreClass};
use globe_core::{registers, BindOptions, GlobeTcp, ObjectSpec, RegisterDoc, ReplicationPolicy};

const CALL_TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn conference_page_over_real_sockets() {
    let mut globe = GlobeTcp::new();
    let server = globe.add_node().expect("server node");
    let cache = globe.add_node().expect("cache node");
    let master_node = globe.add_node().expect("master node");
    let user_node = globe.add_node().expect("user node");

    let mut policy = ReplicationPolicy::conference_page();
    policy.lazy_period = Duration::from_millis(300); // faster for a test
    let object = ObjectSpec::new("/conf/icdcs98")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut globe)
        .expect("create object");

    let master = globe
        .bind(
            object,
            master_node,
            BindOptions::new()
                .read_node(cache)
                .guard(ClientModel::ReadYourWrites),
        )
        .expect("bind master");
    let user = globe
        .bind(object, user_node, BindOptions::new().read_node(cache))
        .expect("bind user");

    globe.start(&[master_node, user_node]);

    // The master writes to the server and immediately reads through the
    // cache: RYW must force the cache to demand the update.
    globe
        .write_timeout(&master, registers::put("program.html", b"v1"), CALL_TIMEOUT)
        .expect("master write");
    let got = globe
        .read_timeout(&master, registers::get("program.html"), CALL_TIMEOUT)
        .expect("master read");
    assert_eq!(&got[..], b"v1", "read-your-writes over TCP");

    // The user eventually sees the page via the periodic push.
    let mut user_saw = Vec::new();
    for _ in 0..50 {
        user_saw = globe
            .read_timeout(&user, registers::get("program.html"), CALL_TIMEOUT)
            .expect("user read")
            .to_vec();
        if user_saw == b"v1" {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(&user_saw[..], b"v1", "push never reached the cache");

    // The history recorded over real sockets passes the same checkers.
    let history = globe.history();
    let history = history.lock();
    globe_coherence::check::check_pram(&history).expect("pram holds over tcp");
    globe_coherence::check::check_read_your_writes(&history, master.client)
        .expect("ryw holds over tcp");
    drop(history);

    globe.shutdown();
}

/// The ROADMAP open item, closed: `set_policy` works on a live
/// deployment — after `start()` has handed every store endpoint to its
/// event-loop thread — by riding the control plane to the home store,
/// which adopts the policy and broadcasts it to the replicas.
#[test]
fn set_policy_works_on_a_live_deployment() {
    let mut globe = GlobeTcp::new();
    let server = globe.add_node().expect("server");
    let cache = globe.add_node().expect("cache");
    let writer_node = globe.add_node().expect("writer");

    // Start lazy with an hour-long period: pushes effectively off.
    let lazy = ReplicationPolicy::builder(globe_coherence::ObjectModel::Fifo)
        .lazy(Duration::from_secs(3600))
        .build()
        .expect("valid");
    let object = ObjectSpec::new("/tcp/live-policy")
        .policy(lazy)
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut globe)
        .expect("create");
    let writer = globe
        .bind(object, writer_node, BindOptions::new().read_node(server))
        .expect("bind writer");
    let reader = globe
        .bind(object, writer_node, BindOptions::new().read_node(cache))
        .expect("bind reader");
    // Every store node spawns its event loop; only the client node
    // stays caller-driven. The old behavior here was a hard
    // `Unsupported` error from set_policy.
    globe.start(&[writer_node]);

    globe
        .write_timeout(&writer, registers::put("page", b"stale"), CALL_TIMEOUT)
        .expect("write under lazy policy");

    // Live switch to immediate pushes, delivered via the control plane.
    let immediate = ReplicationPolicy::builder(globe_coherence::ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid");
    globe
        .set_policy(object, immediate)
        .expect("set_policy must work after start()");

    // Under the new policy a fresh write reaches the cache promptly
    // (the switched home also flushes its backlog).
    globe
        .write_timeout(&writer, registers::put("page", b"fresh"), CALL_TIMEOUT)
        .expect("write under immediate policy");
    let mut seen = Vec::new();
    for _ in 0..50 {
        seen = globe
            .read_timeout(&reader, registers::get("page"), CALL_TIMEOUT)
            .expect("read via cache")
            .to_vec();
        if seen == b"fresh" {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(
        &seen[..],
        b"fresh",
        "live policy switch must reach the cache"
    );
    globe.shutdown();
}

#[test]
fn incremental_updates_over_sockets_stay_ordered() {
    let mut globe = GlobeTcp::new();
    let server = globe.add_node().expect("server");
    let cache = globe.add_node().expect("cache");
    let writer_node = globe.add_node().expect("writer");

    let policy = ReplicationPolicy::builder(globe_coherence::ObjectModel::Pram)
        .immediate()
        .build()
        .expect("valid");
    let object = ObjectSpec::new("/tcp/stream")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut globe)
        .expect("create");
    let writer = globe
        .bind(object, writer_node, BindOptions::new().read_node(server))
        .expect("bind");
    globe.start(&[writer_node]);

    for i in 0..10 {
        globe
            .write_timeout(
                &writer,
                registers::put("page", format!("v{i}").as_bytes()),
                CALL_TIMEOUT,
            )
            .expect("write");
    }
    let got = globe
        .read_timeout(&writer, registers::get("page"), CALL_TIMEOUT)
        .expect("read");
    assert_eq!(&got[..], b"v9");

    // Give the push a moment, then check PRAM order at every store.
    std::thread::sleep(Duration::from_millis(500));
    let history = globe.history();
    let history = history.lock();
    globe_coherence::check::check_pram(&history).expect("pram over tcp");
    drop(history);
    globe.shutdown();
}
