//! Shard-runtime specifics the generic matrix cannot cover: many
//! objects hash-partitioned across worker lanes making progress
//! concurrently, and the live policy switch that the TCP backend still
//! refuses after `start()`.

use std::time::Duration;

use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeShard, ObjectSpec, RegisterDoc, ReplicationPolicy,
    RuntimeConfig,
};

/// A fan-out across every shard lane: one object per slot, all writes
/// issued asynchronously before any result is polled, so the shard
/// workers replicate in parallel while the caller's thread only issues
/// and collects.
#[test]
fn objects_fan_out_across_shards() {
    let shards = 4;
    let mut rt = GlobeShard::with_shards(shards, RuntimeConfig::new().seed(11));
    let server = rt.add_node().expect("server node");
    let cache = rt.add_node().expect("cache node");
    let client_node = rt.add_node().expect("client node");

    let objects: Vec<_> = (0..2 * shards)
        .map(|i| {
            ObjectSpec::new(format!("/fanout/obj{i}"))
                .policy(ReplicationPolicy::personal_home_page())
                .semantics(RegisterDoc::new)
                .store(server, StoreClass::Permanent)
                .store(cache, StoreClass::ClientInitiated)
                .create(&mut rt)
                .expect("create object")
        })
        .collect();
    let handles: Vec<_> = objects
        .iter()
        .map(|&object| {
            rt.bind(object, client_node, BindOptions::new().read_node(server))
                .expect("bind client")
        })
        .collect();

    rt.start(&[client_node]);

    let pending: Vec<_> = handles
        .iter()
        .enumerate()
        .map(|(i, handle)| {
            let body = format!("body-{i}");
            let req = rt
                .handle(*handle)
                .issue_write(registers::put("page.html", body.as_bytes()))
                .expect("issue write");
            (*handle, req, body)
        })
        .collect();

    for (handle, req, _) in &pending {
        loop {
            if let Some(result) = rt.handle(*handle).result(*req) {
                result.expect("write acked");
                break;
            }
        }
    }
    for (handle, _, body) in &pending {
        let got = rt
            .handle(*handle)
            .read(registers::get("page.html"))
            .expect("read back");
        assert_eq!(&got[..], body.as_bytes());
    }

    let history = rt.history();
    let history = history.lock();
    globe_coherence::check::check_pram(&history).expect("pram holds per object");
    drop(history);

    rt.shutdown();
}

/// `set_policy` works on a live deployment: the broadcast goes out even
/// after the workers are running, which `GlobeTcp` cannot do yet.
#[test]
fn set_policy_works_while_running() {
    let mut rt = GlobeShard::new(2);
    let server = rt.add_node().expect("server node");
    let cache = rt.add_node().expect("cache node");
    let lazy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .lazy(Duration::from_secs(60))
        .build()
        .expect("valid policy");
    let object = ObjectSpec::new("/live/policy")
        .policy(lazy)
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut rt)
        .expect("create object");
    let client = rt
        .bind(object, server, BindOptions::new().read_node(server))
        .expect("bind client");

    rt.start(&[]);
    rt.handle(client)
        .write(registers::put("page.html", b"v1"))
        .expect("seed write");

    let immediate = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .expect("valid policy");
    rt.set_policy(object, immediate)
        .expect("live policy switch");
    rt.settle(Duration::from_millis(200)); // broadcast in flight

    let metrics = rt.metrics();
    assert!(
        metrics.lock().traffic.contains_key("PolicyUpdate"),
        "policy broadcast must be visible on the wire"
    );
    rt.shutdown();
}

/// The polling contract holds even if the caller forgets `start()`:
/// issuing a call spins the workers up implicitly.
#[test]
fn issue_poll_makes_progress_without_explicit_start() {
    let mut rt = GlobeShard::new(1);
    let server = rt.add_node().expect("server node");
    let object = ObjectSpec::new("/implicit/start")
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .create(&mut rt)
        .expect("create object");
    let client = rt
        .bind(object, server, BindOptions::new())
        .expect("bind client");

    let req = rt
        .handle(client)
        .issue_write(registers::put("p", b"x"))
        .expect("issue");
    let ack = loop {
        if let Some(result) = rt.handle(client).result(req) {
            break result;
        }
    };
    ack.expect("write acked without an explicit start()");
    rt.shutdown();
}

/// Unknown nodes and duplicate names fail the same way as on the other
/// runtimes.
#[test]
fn creation_errors_match_the_other_backends() {
    let mut rt = GlobeShard::new(2);
    let server = rt.add_node().expect("server node");
    let bogus = globe_net::NodeId::new(999);

    let err = ObjectSpec::new("/errs/a")
        .semantics(RegisterDoc::new)
        .store(bogus, StoreClass::Permanent)
        .create(&mut rt)
        .expect_err("unknown node must fail");
    assert!(matches!(err, globe_core::RuntimeError::UnknownNode(_)));

    ObjectSpec::new("/errs/b")
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .create(&mut rt)
        .expect("first create");
    let err = ObjectSpec::new("/errs/b")
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .create(&mut rt)
        .expect_err("duplicate name must fail");
    assert!(matches!(err, globe_core::RuntimeError::NameTaken(_)));

    let err = ObjectSpec::new("/errs/c")
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::ClientInitiated)
        .create(&mut rt)
        .expect_err("placement without a permanent store must fail");
    assert!(matches!(err, globe_core::RuntimeError::NoPermanentStore));

    rt.shutdown();
}
