//! Run-time dynamism: guards added after binding, replicas restarted
//! after crashes, and policy changes mid-flight — the "flexibility needed
//! in an evolutionary system such as the Web" (§5).

use std::time::Duration;

use globe_coherence::{check, ClientModel, ObjectModel, StoreClass};
use globe_core::lifecycle::{LifecycleEventKind, StoreHealth};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, RegisterDoc, ReplicationPolicy,
    RuntimeConfig,
};
use globe_net::Topology;

fn doc() -> Box<dyn globe_core::Semantics> {
    Box::new(RegisterDoc::new())
}

#[test]
fn guard_added_at_runtime_is_enforced() {
    // A master bound WITHOUT RYW observes the stale cache; after
    // add_guard, the same handle's reads are RYW-enforced.
    let policy = ReplicationPolicy::conference_page(); // 2 s lazy push
    let mut sim = GlobeSim::new(Topology::lan(), 70);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/dynamic/guard")
        .policy(policy)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, cache, BindOptions::new().read_node(cache))
        .unwrap();

    sim.handle(master)
        .write(registers::put("p", b"v1"))
        .unwrap();
    let stale = sim.handle(master).read(registers::get("p")).unwrap();
    assert!(stale.is_empty(), "without the guard the cache is stale");

    sim.add_guard(&master, ClientModel::ReadYourWrites).unwrap();
    sim.handle(master)
        .write(registers::put("p", b"v2"))
        .unwrap();
    let fresh = sim.handle(master).read(registers::get("p")).unwrap();
    assert_eq!(
        &fresh[..],
        b"v2",
        "guard added at run time must enforce RYW"
    );

    let history = sim.history();
    let history = history.lock();
    check::check_pram(&history).unwrap();
}

#[test]
fn subsumed_guard_added_at_runtime_is_ignored() {
    let mut sim = GlobeSim::new(Topology::lan(), 71);
    let server = sim.add_node();
    let object = ObjectSpec::new("/dynamic/subsumed")
        .policy(ReplicationPolicy::whiteboard()) // sequential
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    let handle = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    // Sequential subsumes RYW; adding it must be a harmless no-op.
    sim.add_guard(&handle, ClientModel::ReadYourWrites).unwrap();
    sim.handle(handle).write(registers::put("p", b"x")).unwrap();
    let got = sim.handle(handle).read(registers::get("p")).unwrap();
    assert_eq!(&got[..], b"x");
}

#[test]
fn crashed_cache_recovers_from_the_permanent_store() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    let mut sim = GlobeSim::new(Topology::wan(), 72);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/dynamic/crash")
        .policy(policy)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    for i in 0..5 {
        sim.handle(master)
            .write(registers::put(&format!("p{i}"), b"live"))
            .unwrap();
    }
    sim.run_for(Duration::from_secs(1));
    let before = sim.store_digest(object, cache).unwrap();
    assert_eq!(before, sim.store_digest(object, server).unwrap());

    // Crash: all in-memory state gone. Recovery: resync from the home
    // store (the permanent store implements persistence, §3.1).
    sim.restart_store(object, cache, doc()).unwrap();
    sim.run_for(Duration::from_secs(2));
    assert_eq!(
        sim.store_digest(object, cache).unwrap(),
        sim.store_digest(object, server).unwrap(),
        "restarted cache must rebuild the full replica"
    );

    // And it keeps receiving pushes afterwards.
    sim.handle(master)
        .write(registers::put("after", b"restart"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    assert_eq!(
        sim.store_digest(object, cache).unwrap(),
        sim.store_digest(object, server).unwrap()
    );
}

#[test]
fn home_store_refuses_restart() {
    // With no second permanent store there is nothing to elect, so the
    // fail-over is refused and the runtime is left untouched.
    let mut sim = GlobeSim::new(Topology::lan(), 73);
    let server = sim.add_node();
    let object = ObjectSpec::new("/dynamic/home")
        .policy(ReplicationPolicy::personal_home_page())
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    assert_eq!(
        sim.restart_store(object, server, doc()),
        Err(globe_core::RuntimeError::NoFailoverCandidate)
    );
    assert_eq!(
        sim.remove_store(object, server),
        Err(globe_core::RuntimeError::NoFailoverCandidate)
    );
    assert_eq!(sim.home_of(object), Some(server));
}

#[test]
fn home_failover_elects_survivor_and_records_the_election() {
    // Kill the home of a two-permanent-store object: the survivor is
    // elected (visible in the membership view) and the election lands in
    // the metrics store's lifecycle events.
    let mut sim = GlobeSim::new(Topology::lan(), 74);
    let first = sim.add_node();
    let second = sim.add_node();
    let object = ObjectSpec::new("/dynamic/elect")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(first, StoreClass::Permanent)
        .store(second, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, first, BindOptions::new().read_node(first))
        .unwrap();
    sim.handle(master)
        .write(registers::put("p", b"before"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));

    sim.restart_store(object, first, doc()).unwrap();
    sim.run_for(Duration::from_secs(2));

    assert_eq!(sim.home_of(object), Some(second));
    let view = sim.membership(object).unwrap();
    assert!(view.members[0].is_home);
    assert_eq!(view.members[0].node, second);
    let metrics = sim.metrics();
    assert!(
        metrics
            .lock()
            .lifecycle_events(LifecycleEventKind::Elected)
            .any(|e| e.node == second && e.object == object),
        "the election must surface in the metrics"
    );
    // The elected sequencer accepts writes and the old home recovers.
    sim.handle(master)
        .write(registers::put("p", b"after"))
        .unwrap();
    sim.run_for(Duration::from_secs(2));
    assert_eq!(
        sim.store_digest(object, first),
        sim.store_digest(object, second),
        "the rejoined old home must converge on the new sequencer"
    );
}

#[test]
fn suspect_after_misses_tunes_detection_speed() {
    // Same partition, laxer threshold: with `suspect_after_misses(8)`
    // the detector tolerates a silence that the default (3) would flag.
    let hb = Duration::from_millis(500);
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new()
            .seed(82)
            .heartbeat_period(hb)
            .suspect_after_misses(8),
    );
    let server = sim.add_node();
    let mirror = sim.add_node();
    let object = ObjectSpec::new("/dynamic/tuned-detector")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .create(&mut sim)
        .unwrap();

    sim.run_for(Duration::from_secs(2));
    sim.topology_mut().partition(server, mirror);
    // Three seconds of silence: six missed periods — past the default
    // grace of 3 × 500ms, still inside the configured 8 × 500ms.
    sim.run_for(Duration::from_secs(3));
    let view = sim.membership(object).unwrap();
    assert!(
        view.all_alive(),
        "a laxer threshold must tolerate the silence the default would flag"
    );
    // Two more seconds pass the configured grace too.
    sim.run_for(Duration::from_secs(3));
    let view = sim.membership(object).unwrap();
    assert_eq!(view.member(mirror).unwrap().health, StoreHealth::Suspect);
}

#[test]
fn failure_detector_suspects_partitioned_replica_and_clears_on_heal() {
    // Heartbeats flow home → mirror → home. Partition the pair: after
    // three missed periods the mirror goes suspect (visible in the
    // membership view and the metrics); heal the link and the next pong
    // clears the suspicion.
    let hb = Duration::from_millis(500);
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new().seed(80).heartbeat_period(hb),
    );
    let server = sim.add_node();
    let mirror = sim.add_node();
    let object = ObjectSpec::new("/dynamic/detector")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .create(&mut sim)
        .unwrap();

    sim.run_for(Duration::from_secs(3));
    let view = sim.membership(object).unwrap();
    assert!(view.all_alive(), "healthy mirror must not be suspected");
    assert!(
        view.member(mirror).unwrap().last_heard.is_some(),
        "heartbeat acknowledgements must be recorded"
    );
    assert!(view.member(server).unwrap().is_home);

    sim.topology_mut().partition(server, mirror);
    sim.run_for(Duration::from_secs(5));
    let view = sim.membership(object).unwrap();
    assert_eq!(
        view.member(mirror).unwrap().health,
        StoreHealth::Suspect,
        "a silent replica must be marked suspect"
    );
    assert_eq!(view.suspects(), vec![mirror]);
    let metrics = sim.metrics();
    assert!(
        metrics
            .lock()
            .lifecycle_events(LifecycleEventKind::Suspected)
            .any(|e| e.node == mirror && e.object == object),
        "suspicion must surface in the metrics"
    );

    sim.topology_mut().heal(server, mirror);
    sim.run_for(Duration::from_secs(3));
    let view = sim.membership(object).unwrap();
    assert!(
        view.all_alive(),
        "an answering replica must be un-suspected"
    );
    assert!(
        metrics
            .lock()
            .lifecycle_events(LifecycleEventKind::Recovered)
            .any(|e| e.node == mirror),
        "recovery must surface in the metrics"
    );
}

#[test]
fn auto_failover_elects_without_any_driver_call() {
    // Partition the home with the detector + auto_failover on: the
    // surviving permanent store must confirm the silence, self-elect,
    // accept writes, and the healed old home must rejoin demoted.
    let hb = Duration::from_millis(500);
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new()
            .seed(90)
            .heartbeat_period(hb)
            .suspect_after_misses(2)
            .auto_failover(true)
            .failover_confirm_periods(1),
    );
    let first = sim.add_node();
    let second = sim.add_node();
    let client_node = sim.add_node();
    let object = ObjectSpec::new("/dynamic/auto-elect")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(first, StoreClass::Permanent)
        .store(second, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    // Reads via the survivor: its serve path learns the client's node,
    // so the takeover announcement reroutes the session.
    let master = sim
        .bind(object, client_node, BindOptions::new().read_node(second))
        .unwrap();
    sim.handle(master)
        .write(registers::put("p", b"before"))
        .unwrap();
    let warm = sim.handle(master).read(registers::get("p")).unwrap();
    assert_eq!(&warm[..], b"before");
    sim.run_for(Duration::from_secs(2));

    sim.partition_node(first, true).unwrap();
    sim.run_for(Duration::from_secs(4));
    assert_eq!(
        sim.home_of(object),
        Some(second),
        "the survivor must self-elect with no lifecycle call"
    );
    let metrics = sim.metrics();
    assert_eq!(
        metrics
            .lock()
            .lifecycle_events(LifecycleEventKind::Elected)
            .filter(|e| e.object == object)
            .count(),
        1,
        "exactly one election"
    );
    // The elected sequencer accepts the rerouted session's writes.
    sim.handle(master)
        .write(registers::put("p", b"after"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));

    sim.partition_node(first, false).unwrap();
    sim.run_for(Duration::from_secs(4));
    assert_eq!(
        sim.home_of(object),
        Some(second),
        "healing must not move the sequencer back"
    );
    assert_eq!(
        sim.store_digest(object, first),
        sim.store_digest(object, second),
        "the deposed home must converge on the elected sequencer's log"
    );
    let history = sim.history();
    let h = history.lock();
    check::check_fifo(&h).unwrap();
}

#[test]
fn detector_flap_during_confirmation_never_elects_two_sequencers() {
    // The flap guard: silence long enough to suspect the home but not
    // long enough to confirm it must elect nobody; a full outage after
    // the flap elects exactly once, and the epoch check keeps the old
    // home from accepting once it is back.
    let hb = Duration::from_millis(500);
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new()
            .seed(91)
            .heartbeat_period(hb)
            .suspect_after_misses(2)
            .auto_failover(true)
            .failover_confirm_periods(4),
    );
    let first = sim.add_node();
    let second = sim.add_node();
    let client_node = sim.add_node();
    let object = ObjectSpec::new("/dynamic/flap")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(first, StoreClass::Permanent)
        .store(second, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, client_node, BindOptions::new().read_node(second))
        .unwrap();
    sim.handle(master)
        .write(registers::put("p", b"v1"))
        .unwrap();
    let warm = sim.handle(master).read(registers::get("p")).unwrap();
    assert_eq!(&warm[..], b"v1");
    sim.run_for(Duration::from_secs(2));

    // Flap: past suspicion (2 periods), well short of confirmation
    // (4 more periods).
    sim.partition_node(first, true).unwrap();
    sim.run_for(Duration::from_millis(1700));
    sim.partition_node(first, false).unwrap();
    sim.run_for(Duration::from_secs(3));
    let metrics = sim.metrics();
    assert_eq!(
        metrics
            .lock()
            .lifecycle_events(LifecycleEventKind::Elected)
            .count(),
        0,
        "a flap inside the confirmation window must not elect"
    );
    assert_eq!(sim.home_of(object), Some(first));

    // Now a real outage: the survivor elects exactly once, and the
    // flapping old home — silent, then briefly back, then gone again —
    // cannot win a second election for the same epoch.
    sim.partition_node(first, true).unwrap();
    sim.run_for(Duration::from_secs(6));
    assert_eq!(sim.home_of(object), Some(second));
    sim.partition_node(first, false).unwrap();
    sim.run_for(Duration::from_millis(700));
    sim.partition_node(first, true).unwrap();
    sim.run_for(Duration::from_secs(2));
    sim.partition_node(first, false).unwrap();
    sim.run_for(Duration::from_secs(4));
    assert_eq!(
        metrics
            .lock()
            .lifecycle_events(LifecycleEventKind::Elected)
            .count(),
        1,
        "one outage, one election: a flap must never yield two accepting sequencers"
    );
    assert_eq!(
        sim.home_of(object),
        Some(second),
        "the epoch check must keep the sequencer with the elected store"
    );
    sim.handle(master)
        .write(registers::put("p", b"v2"))
        .unwrap();
    sim.run_for(Duration::from_secs(2));
    assert_eq!(
        sim.store_digest(object, first),
        sim.store_digest(object, second),
        "both permanent stores converge on the single sequencer's log"
    );
    let history = sim.history();
    let h = history.lock();
    check::check_fifo(&h).unwrap();
}

#[test]
fn partitioned_standby_cannot_usurp_a_live_sequencer() {
    // The minority side of a partition: the *standby* is isolated, its
    // detector wrongly concludes the home died, and it self-elects in
    // the dark. Meanwhile the real home keeps sequencing acknowledged
    // writes. On heal the incumbent's strictly-ahead log must win —
    // counter-claimed at a higher epoch — so no acknowledged write
    // ever leaves the authoritative log.
    let hb = Duration::from_millis(500);
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new()
            .seed(93)
            .heartbeat_period(hb)
            .suspect_after_misses(2)
            .auto_failover(true)
            .failover_confirm_periods(1),
    );
    let home = sim.add_node();
    let standby = sim.add_node();
    let client_node = sim.add_node();
    let object = ObjectSpec::new("/dynamic/usurper")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(home, StoreClass::Permanent)
        .store(standby, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, client_node, BindOptions::new().read_node(home))
        .unwrap();
    sim.handle(master)
        .write(registers::put("p", b"v1"))
        .unwrap();
    sim.run_for(Duration::from_secs(2));

    // Isolate the standby; the home keeps accepting writes the clients
    // see acknowledged.
    sim.partition_node(standby, true).unwrap();
    sim.run_for(Duration::from_secs(4));
    sim.handle(master)
        .write(registers::put("p", b"acknowledged-during-partition"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));

    // Heal: the standby re-announces its dark-room election, the
    // incumbent counter-claims, and the sequencer stays (or returns)
    // where the authoritative log lives.
    sim.partition_node(standby, false).unwrap();
    sim.run_for(Duration::from_secs(5));
    assert_eq!(
        sim.home_of(object),
        Some(home),
        "a partitioned standby must not keep the sequencer it granted itself"
    );
    // The acknowledged write survives and both replicas converge on it.
    let seen = sim.handle(master).read(registers::get("p")).unwrap();
    assert_eq!(&seen[..], b"acknowledged-during-partition");
    assert_eq!(
        sim.store_digest(object, home),
        sim.store_digest(object, standby),
        "the usurper must converge on the incumbent's log"
    );
    let history = sim.history();
    let h = history.lock();
    check::check_fifo(&h).unwrap();
}

#[test]
fn node_level_detector_sends_one_stream_per_pair_not_per_object() {
    // Eight objects co-homed on one node pair: heartbeat traffic must
    // stay O(peers) per round (one ping each way), not O(objects).
    let hb = Duration::from_millis(500);
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new().seed(92).heartbeat_period(hb),
    );
    let server = sim.add_node();
    let mirror = sim.add_node();
    let objects = 8;
    for i in 0..objects {
        ObjectSpec::new(format!("/dynamic/pair{i}"))
            .policy(
                ReplicationPolicy::builder(ObjectModel::Fifo)
                    .immediate()
                    .build()
                    .unwrap(),
            )
            .semantics_boxed(doc)
            .store(server, StoreClass::Permanent)
            .store(mirror, StoreClass::ObjectInitiated)
            .create(&mut sim)
            .unwrap();
    }
    let rounds = 10u64;
    sim.run_for(Duration::from_millis(500 * rounds));
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    let pings = metrics
        .traffic
        .get("NodePing")
        .map(|k| k.count)
        .unwrap_or(0);
    // Two directed streams (server→mirror, mirror→server), one ping
    // each per round — regardless of how many objects share the pair.
    assert!(pings >= rounds, "the detector must actually run: {pings}");
    assert!(
        pings <= 2 * (rounds + 2),
        "heartbeats must be per node pair, not per object: {pings} pings \
         for {objects} objects over ~{rounds} rounds"
    );
}

#[test]
fn removed_store_leaves_membership_and_propagation() {
    let mut sim = GlobeSim::new(Topology::lan(), 81);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/dynamic/remove")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Pram)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    sim.handle(master)
        .write(registers::put("p", b"v1"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    assert_eq!(sim.membership(object).unwrap().members.len(), 2);

    sim.remove_store(object, cache).unwrap();
    sim.run_for(Duration::from_secs(1));
    assert!(
        sim.store_digest(object, cache).is_none(),
        "the removed replica must be gone from its space"
    );
    assert_eq!(
        sim.membership(object).unwrap().members.len(),
        1,
        "membership must shrink to the home store"
    );
    let metrics = sim.metrics();
    assert!(
        metrics
            .lock()
            .lifecycle_events(LifecycleEventKind::Left)
            .any(|e| e.node == cache),
        "the departure must surface in the metrics"
    );
    // The workload continues against the home store.
    sim.handle(master)
        .write(registers::put("p", b"v2"))
        .unwrap();
    let got = sim.handle(master).read(registers::get("p")).unwrap();
    assert_eq!(&got[..], b"v2");
}

#[test]
fn restart_preserves_prefailure_history() {
    // The acceptance criterion in one test: after kill-and-recover, the
    // shared history still contains every pre-failure record, and the
    // recovered replica's apply sequence continues it without replays.
    let mut sim = GlobeSim::new(Topology::lan(), 82);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/dynamic/prefix")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    for i in 0..4 {
        sim.handle(master)
            .write(registers::put(&format!("p{i}"), b"pre"))
            .unwrap();
    }
    sim.run_for(Duration::from_secs(1));
    let cache_store = sim
        .stores_of(object)
        .iter()
        .find(|(n, _, _)| *n == cache)
        .map(|(_, id, _)| *id)
        .unwrap();
    let pre_applies: Vec<_> = {
        let history = sim.history();
        let h = history.lock();
        h.store_applies(cache_store).cloned().collect()
    };
    assert_eq!(pre_applies.len(), 4, "cache applied the pre-failure writes");

    sim.restart_store(object, cache, doc()).unwrap();
    sim.run_for(Duration::from_secs(2));
    sim.handle(master)
        .write(registers::put("p9", b"post"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));

    let history = sim.history();
    let h = history.lock();
    let post_applies: Vec<_> = h.store_applies(cache_store).cloned().collect();
    assert!(
        post_applies.len() > pre_applies.len(),
        "recovery must continue the history"
    );
    assert_eq!(
        &post_applies[..pre_applies.len()],
        &pre_applies[..],
        "the pre-failure history must survive recovery as an untouched prefix"
    );
    // Per-client apply order stays monotonic across the failure.
    let mut last_seq = 0;
    for apply in &post_applies {
        assert!(
            apply.wid.seq > last_seq,
            "apply order must not replay across the restart"
        );
        last_seq = apply.wid.seq;
    }
    check::check_fifo(&h).unwrap();
    drop(h);
    assert_eq!(
        sim.store_digest(object, cache).unwrap(),
        sim.store_digest(object, server).unwrap()
    );
}

#[test]
fn partitioned_leased_replica_refuses_reads_after_expiry() {
    // The lease-staleness regression: a leased replica cut off from the
    // home may keep serving locally only until its lease expires; after
    // that it must refuse (forward) rather than return possibly-stale
    // state, and a heal must restore local serving via a fresh grant.
    let mut sim = GlobeSim::with_config(
        Topology::lan(),
        RuntimeConfig::new()
            .seed(95)
            .call_timeout(Duration::from_secs(2))
            .read_leases(true)
            .lease_duration(Duration::from_secs(2)),
    );
    let home = sim.add_node();
    let mirror = sim.add_node();
    let client_node = sim.add_node();
    let object = ObjectSpec::new("/dynamic/lease")
        .policy(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
        )
        .semantics_boxed(doc)
        .store(home, StoreClass::Permanent)
        .store(mirror, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, client_node, BindOptions::new().read_node(home))
        .unwrap();
    let reader = sim
        .bind(object, client_node, BindOptions::new().read_node(mirror))
        .unwrap();

    sim.handle(master)
        .write(registers::put("p", b"v1"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    let metrics = sim.metrics();
    assert!(
        metrics.lock().traffic.contains_key("LeaseGrant"),
        "the permanent mirror must have requested and received a lease"
    );

    // Cut the home–mirror link only: the client still reaches the
    // mirror, but renewals (and forwards) die on the floor.
    sim.topology_mut().partition(home, mirror);
    let local = sim.handle(reader).read(registers::get("p")).unwrap();
    assert_eq!(
        &local[..],
        b"v1",
        "inside the lease the mirror serves locally — the home is unreachable"
    );
    let served_inside_lease = metrics.lock().protocol.lease_served;
    assert!(
        served_inside_lease >= 1,
        "a lease-authorized local read must count as served"
    );

    // Run past the lease without any renewal getting through: the
    // mirror must now refuse to serve locally and forward into the
    // dead link, so the read times out instead of returning stale data.
    sim.run_for(Duration::from_secs(3));
    let refused = sim.handle(reader).read(registers::get("p"));
    assert!(
        refused.is_err(),
        "an expired lease must never serve a possibly-stale local read: {refused:?}"
    );
    {
        let m = metrics.lock();
        assert!(
            m.protocol.lease_refused >= 1,
            "the expired-lease read must count as refused"
        );
        let ratio = m.protocol.lease_hit_ratio();
        assert!(
            ratio > 0.0 && ratio < 1.0,
            "served and refused reads must both show in the hit ratio: {ratio}"
        );
    }

    // Heal: the next renewal wins a fresh grant and local reads resume,
    // including a write the mirror missed while partitioned.
    sim.topology_mut().heal(home, mirror);
    sim.handle(master)
        .write(registers::put("p", b"v2"))
        .unwrap();
    sim.run_for(Duration::from_secs(3));
    sim.topology_mut().partition(home, mirror);
    let fresh = sim.handle(reader).read(registers::get("p")).unwrap();
    assert_eq!(
        &fresh[..],
        b"v2",
        "a fresh grant must restore local serving with the converged state"
    );
}

#[test]
fn policy_switch_reaches_every_replica() {
    // set_policy broadcasts PolicyUpdate; verify a replica actually
    // adopts it (its store reports the new instant).
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .lazy(Duration::from_secs(60))
        .build()
        .unwrap();
    let mut sim = GlobeSim::new(Topology::lan(), 74);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/dynamic/policy")
        .policy(policy)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap();
    let immediate = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .unwrap();
    sim.set_policy(object, immediate.clone()).unwrap();
    sim.run_for(Duration::from_millis(100)); // broadcast in flight
    let metrics = sim.metrics();
    assert!(
        metrics.lock().traffic.contains_key("PolicyUpdate"),
        "policy broadcast must be visible on the wire"
    );
}

#[test]
fn plain_add_store_join_refreshes_every_replica() {
    // PROBE: every pre-existing replica must learn about a replica that
    // joins via plain add_store, or a later unattended election runs
    // over a stale candidate list.
    let mut sim = GlobeSim::new(Topology::lan(), 93);
    let home = sim.add_node();
    let mirror_a = sim.add_node();
    let mirror_b = sim.add_node();
    let joiner = sim.add_node();
    let object = ObjectSpec::new("/dynamic/join-refresh")
        .policy(ReplicationPolicy::whiteboard())
        .semantics_boxed(doc)
        .store(home, StoreClass::Permanent)
        .store(mirror_a, StoreClass::Permanent)
        .store(mirror_b, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    sim.add_store(object, joiner, StoreClass::Permanent, doc())
        .unwrap();
    sim.run_for(Duration::from_secs(2));
    for node in [home, mirror_a, mirror_b] {
        let peers = sim.store_peers(object, node).unwrap();
        assert!(
            peers.contains(&joiner),
            "replica at {node} missed the membership refresh for {joiner}: {peers:?}"
        );
    }
    // And the joiner knows the full membership too.
    let peers = sim.store_peers(object, joiner).unwrap();
    for node in [home, mirror_a, mirror_b] {
        assert!(peers.contains(&node), "joiner missing {node}: {peers:?}");
    }
}
