//! End-to-end protocol tests: every object-based coherence model runs on
//! the simulated network and its recorded history must satisfy the
//! corresponding checker from `globe-coherence`.

// Test-only crate: helper fns outside #[test] bodies may unwrap/expect
// (clippy's allow-unwrap-in-tests only covers #[test] functions).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use globe_coherence::{check, ClientModel, ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, CoherenceTransfer, GlobeRuntime, GlobeSim, ObjectSpec, OutdateReaction,
    Propagation, RegisterDoc, ReplicationPolicy, TransferInitiative,
};
use globe_net::{LinkConfig, NodeId, Topology};

fn doc_factory() -> Box<dyn globe_core::Semantics> {
    Box::new(RegisterDoc::new())
}

/// A server plus `caches` cache nodes on a LAN, object created with
/// `policy`. Returns (sim, object, server node, cache nodes).
fn setup(
    policy: ReplicationPolicy,
    caches: usize,
    topology: Topology,
    seed: u64,
) -> (GlobeSim, globe_naming::ObjectId, NodeId, Vec<NodeId>) {
    let mut sim = GlobeSim::new(topology, seed);
    let server = sim.add_node();
    let cache_nodes: Vec<NodeId> = (0..caches).map(|_| sim.add_node()).collect();
    let mut placement = vec![(server, StoreClass::Permanent)];
    for &cache in &cache_nodes {
        placement.push((cache, StoreClass::ClientInitiated));
    }
    let object = ObjectSpec::new("/test/object")
        .policy(policy)
        .semantics_boxed(doc_factory)
        .stores(&placement)
        .create(&mut sim)
        .expect("create object");
    (sim, object, server, cache_nodes)
}

#[test]
fn pram_incremental_updates_respect_order_everywhere() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 2, Topology::lan(), 1);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    for i in 0..10 {
        sim.handle(master)
            .write(registers::put(
                &format!("page{}", i % 3),
                format!("v{i}").as_bytes(),
            ))
            .unwrap();
    }
    sim.run_for(Duration::from_secs(5));
    sim.finalize_digests();

    let history = sim.history();
    let history = history.lock();
    assert!(history.applies().len() >= 30, "3 stores x 10 writes");
    check::check_pram(&history).unwrap();
    check::check_read_integrity(&history).unwrap();
    check::check_eventual(&history).unwrap();
    drop(history);

    for &cache in &caches {
        assert_eq!(
            sim.store_digest(object, cache),
            sim.store_digest(object, server),
            "cache replica diverged"
        );
    }
}

#[test]
fn pram_buffers_out_of_order_updates_on_jittery_links() {
    // Non-FIFO, high-jitter links reorder updates; PRAM buffering must
    // still apply them in issue order at every store.
    let link = LinkConfig::new(Duration::from_millis(5))
        .with_jitter(Duration::from_millis(40))
        .with_fifo(false);
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    let (mut sim, object, server, _caches) = setup(policy, 3, Topology::uniform(link), 99);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    // Pipelined writes: issue all, then let the network churn.
    for i in 0..20 {
        sim.issue_write(&master, registers::put("news", format!("v{i}").as_bytes()))
            .unwrap();
    }
    sim.run_for(Duration::from_secs(10));
    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    check::check_pram(&history).unwrap();
    check::check_eventual(&history).unwrap();
}

#[test]
fn fifo_drops_overwritten_updates() {
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .lazy(Duration::from_millis(500))
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 2, Topology::lan(), 2);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    // Burst of overwrites within one lazy period: caches should see the
    // latest value; earlier ones may be skipped entirely.
    for i in 0..10 {
        sim.handle(master)
            .write(registers::put("front", format!("v{i}").as_bytes()))
            .unwrap();
    }
    sim.run_for(Duration::from_secs(3));
    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    check::check_fifo(&history).unwrap();
    drop(history);
    let reader = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    let value = sim.handle(reader).read(registers::get("front")).unwrap();
    assert_eq!(&value[..], b"v9");
}

#[test]
fn causal_orders_article_before_reaction() {
    let (mut sim, object, server, caches) =
        setup(ReplicationPolicy::news_forum(), 2, Topology::wan(), 3);
    let author = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reactor = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();

    sim.handle(author)
        .write(registers::put("article", b"globe ships"))
        .unwrap();
    // Reactor reads the article (possibly after propagation), then reacts.
    sim.run_for(Duration::from_secs(2));
    let got = sim.handle(reactor).read(registers::get("article")).unwrap();
    assert_eq!(&got[..], b"globe ships");
    sim.handle(reactor)
        .write(registers::put("reaction", b"nice!"))
        .unwrap();
    sim.run_for(Duration::from_secs(5));
    sim.finalize_digests();

    let history = sim.history();
    let history = history.lock();
    check::check_causal(&history).unwrap();
    check::check_eventual(&history).unwrap();
}

#[test]
fn causal_with_reordering_network() {
    let link = LinkConfig::new(Duration::from_millis(5))
        .with_jitter(Duration::from_millis(60))
        .with_fifo(false);
    let (mut sim, object, server, caches) = setup(
        ReplicationPolicy::builder(ObjectModel::Causal)
            .immediate()
            .build()
            .unwrap(),
        3,
        Topology::uniform(link),
        4,
    );
    let a = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let b = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    for round in 0..5 {
        sim.handle(a)
            .write(registers::put("thread", format!("msg{round}").as_bytes()))
            .unwrap();
        sim.run_for(Duration::from_millis(300));
        let _ = sim.handle(b).read(registers::get("thread")).unwrap();
        sim.handle(b)
            .write(registers::put("thread", format!("re{round}").as_bytes()))
            .unwrap();
        sim.run_for(Duration::from_millis(300));
    }
    sim.run_for(Duration::from_secs(10));
    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    check::check_causal(&history).unwrap();
    check::check_eventual(&history).unwrap();
}

#[test]
fn sequential_multi_writer_agrees_on_total_order() {
    let (mut sim, object, server, caches) =
        setup(ReplicationPolicy::whiteboard(), 3, Topology::lan(), 5);
    let alice = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    let bob = sim
        .bind(object, caches[1], BindOptions::new().read_node(caches[1]))
        .unwrap();
    let _ = server;
    for i in 0..8 {
        sim.handle(alice)
            .write(registers::put("board", format!("a{i}").as_bytes()))
            .unwrap();
        sim.handle(bob)
            .write(registers::put("board", format!("b{i}").as_bytes()))
            .unwrap();
    }
    sim.run_for(Duration::from_secs(5));
    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    check::check_sequential(&history).unwrap();
    check::check_eventual(&history).unwrap();
}

#[test]
fn eventual_converges_despite_loss() {
    // 20% loss on every link; anti-entropy pulls must still converge all
    // replicas.
    let link = LinkConfig::new(Duration::from_millis(10)).with_loss(0.2);
    let policy = ReplicationPolicy::builder(ObjectModel::Eventual)
        .lazy(Duration::from_millis(400))
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 3, Topology::uniform(link), 6);
    let writer = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    // Async writes: some WriteReqs may be lost; only acked ones count.
    for i in 0..15 {
        sim.issue_write(
            &writer,
            registers::put(&format!("p{}", i % 4), format!("v{i}").as_bytes()),
        )
        .unwrap();
        sim.run_for(Duration::from_millis(50));
    }
    sim.run_for(Duration::from_secs(30));
    sim.finalize_digests();

    // All stores that hold replicas must agree with the server.
    let server_digest = sim.store_digest(object, server).unwrap();
    for &cache in &caches {
        assert_eq!(
            sim.store_digest(object, cache),
            Some(server_digest),
            "replica at {cache} diverged"
        );
    }
    let history = sim.history();
    let history = history.lock();
    check::check_read_integrity(&history).unwrap();
}

#[test]
fn read_your_writes_enforced_through_stale_cache() {
    // The paper's Fig. 3 scenario: master writes to the server, reads
    // from its cache. With a long lazy period the cache is stale, and the
    // RYW guard must force a demand-update.
    let policy = ReplicationPolicy::conference_page(); // lazy 2s push
    let (mut sim, object, server, caches) = setup(policy, 2, Topology::lan(), 7);
    let _ = server;
    let master = sim
        .bind(
            object,
            caches[0],
            BindOptions::new()
                .read_node(caches[0])
                .guard(ClientModel::ReadYourWrites),
        )
        .unwrap();
    sim.handle(master)
        .write(registers::put("program.html", b"v1"))
        .unwrap();
    // Read immediately: the cache cannot have been pushed to yet (2 s
    // period), so RYW must trigger a demand.
    let got = sim
        .handle(master)
        .read(registers::get("program.html"))
        .unwrap();
    assert_eq!(&got[..], b"v1", "read-your-writes violated");

    let history = sim.history();
    let history = history.lock();
    check::check_read_your_writes(&history, master.client).unwrap();
    // The demand-update path must have been exercised.
    drop(history);
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    assert!(
        metrics.traffic.contains_key("DemandUpdate"),
        "expected a demand-update, traffic: {:?}",
        metrics.traffic.keys().collect::<Vec<_>>()
    );
}

#[test]
fn without_ryw_guard_stale_cache_is_visible() {
    // Control experiment: same setup, no guard — the stale read returns
    // the old value, which is exactly why the paper's master needs RYW.
    let policy = ReplicationPolicy::conference_page();
    let (mut sim, object, server, caches) = setup(policy, 2, Topology::lan(), 8);
    let _ = server;
    let master = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    sim.handle(master)
        .write(registers::put("program.html", b"v1"))
        .unwrap();
    let got = sim
        .handle(master)
        .read(registers::get("program.html"))
        .unwrap();
    assert!(
        got.is_empty(),
        "expected stale (empty) read from unpushed cache, got {:?}",
        got
    );
    // After the lazy push the cache catches up.
    sim.run_for(Duration::from_secs(3));
    let got = sim
        .handle(master)
        .read(registers::get("program.html"))
        .unwrap();
    assert_eq!(&got[..], b"v1");
}

#[test]
fn monotonic_reads_survives_store_switch() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .lazy(Duration::from_secs(2))
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 2, Topology::lan(), 9);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reader = sim
        .bind(
            object,
            caches[0],
            BindOptions::new()
                .read_node(caches[0])
                .guard(ClientModel::MonotonicReads),
        )
        .unwrap();
    sim.handle(master)
        .write(registers::put("page", b"v1"))
        .unwrap();
    sim.run_for(Duration::from_secs(3)); // cache 0 gets the push
    let first = sim.handle(reader).read(registers::get("page")).unwrap();
    assert_eq!(&first[..], b"v1");
    // Switch reads to cache 1, which may be staler. MR must not regress.
    sim.rebind_reads(&reader, caches[1]).unwrap();
    let second = sim.handle(reader).read(registers::get("page")).unwrap();
    assert_eq!(&second[..], b"v1", "monotonic reads regressed");
    let history = sim.history();
    let history = history.lock();
    check::check_monotonic_reads(&history, reader.client).unwrap();
}

#[test]
fn writes_follow_reads_orders_reaction_everywhere() {
    // WFR on top of *eventual* coherence: the weakest model plus the
    // client-causal guard still orders article before reaction at every
    // store.
    let policy = ReplicationPolicy::builder(ObjectModel::Eventual)
        .lazy(Duration::from_millis(300))
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 2, Topology::lan(), 10);
    let author = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reactor = sim
        .bind(
            object,
            caches[0],
            BindOptions::new()
                .read_node(caches[0])
                .guard(ClientModel::WritesFollowReads),
        )
        .unwrap();
    sim.handle(author)
        .write(registers::put("article", b"original"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    let read = sim.handle(reactor).read(registers::get("article")).unwrap();
    assert_eq!(&read[..], b"original");
    sim.handle(reactor)
        .write(registers::put("reaction", b"reply"))
        .unwrap();
    sim.run_for(Duration::from_secs(5));
    sim.finalize_digests();
    let history = sim.history();
    let history = history.lock();
    check::check_writes_follow_reads(&history, reactor.client).unwrap();
    check::check_eventual(&history).unwrap();
}

#[test]
fn invalidation_mode_refetches_on_read() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .propagation(Propagation::Invalidate)
        .immediate()
        .object_outdate(OutdateReaction::Demand)
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 1, Topology::lan(), 11);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reader = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    sim.handle(master)
        .write(registers::put("page", b"v1"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    let got = sim.handle(reader).read(registers::get("page")).unwrap();
    assert_eq!(&got[..], b"v1");
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    assert!(metrics.traffic.contains_key("Invalidate"));
}

#[test]
fn notification_mode_with_wait_serves_stale() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .coherence_transfer(CoherenceTransfer::Notification)
        .immediate()
        .object_outdate(OutdateReaction::Wait)
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 1, Topology::lan(), 12);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reader = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    sim.handle(master)
        .write(registers::put("page", b"v1"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    // Notification carries no data and wait never demands: stale read.
    let got = sim.handle(reader).read(registers::get("page")).unwrap();
    assert!(got.is_empty(), "notification+wait should leave cache stale");
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    assert!(metrics.traffic.contains_key("Notify"));
    assert!(!metrics.traffic.contains_key("Update"));
}

#[test]
fn notification_mode_with_demand_fetches() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .coherence_transfer(CoherenceTransfer::Notification)
        .immediate()
        .object_outdate(OutdateReaction::Demand)
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 1, Topology::lan(), 13);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reader = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    sim.handle(master)
        .write(registers::put("page", b"v1"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    let got = sim.handle(reader).read(registers::get("page")).unwrap();
    assert_eq!(&got[..], b"v1", "demand reaction should have fetched data");
}

#[test]
fn pull_initiative_polls_the_home_store() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .initiative(TransferInitiative::Pull)
        .period(Duration::from_millis(500))
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 1, Topology::lan(), 14);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reader = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    sim.handle(master)
        .write(registers::put("page", b"v1"))
        .unwrap();
    sim.run_for(Duration::from_secs(2)); // several poll rounds
    let got = sim.handle(reader).read(registers::get("page")).unwrap();
    assert_eq!(&got[..], b"v1");
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    assert!(metrics.traffic.contains_key("DemandUpdate"));
    assert!(
        !metrics.traffic.contains_key("Update"),
        "push path should be idle under pull initiative"
    );
}

#[test]
fn full_coherence_transfer_ships_snapshots() {
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .coherence_transfer(CoherenceTransfer::Full)
        .lazy(Duration::from_millis(500))
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 1, Topology::lan(), 15);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reader = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    for i in 0..3 {
        sim.handle(master)
            .write(registers::put("a", format!("v{i}").as_bytes()))
            .unwrap();
        sim.handle(master)
            .write(registers::put("b", format!("w{i}").as_bytes()))
            .unwrap();
    }
    sim.run_for(Duration::from_secs(2));
    let got = sim.handle(reader).read(registers::get("a")).unwrap();
    assert_eq!(&got[..], b"v2");
    let got = sim.handle(reader).read(registers::get("b")).unwrap();
    assert_eq!(&got[..], b"w2");
    let metrics = sim.metrics();
    let metrics = metrics.lock();
    assert!(metrics.traffic.contains_key("FullState"));
}

#[test]
fn pram_over_lossy_links_recovers_with_demand_reaction() {
    // §4.2: "simply by changing the object-outdate reaction parameter
    // from wait to demand, reliability comes as a side-effect of the
    // coherence model." Lossy, non-FIFO (UDP-like) links; pipelined
    // writes; the demand reaction must recover every loss.
    let link = LinkConfig::new(Duration::from_millis(10))
        .with_loss(0.25)
        .with_fifo(false);
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .object_outdate(OutdateReaction::Demand)
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 2, Topology::uniform(link), 16);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    for i in 0..20 {
        sim.issue_write(&master, registers::put("page", format!("v{i}").as_bytes()))
            .unwrap();
        sim.run_for(Duration::from_millis(40));
    }
    sim.run_for(Duration::from_secs(60));
    sim.finalize_digests();

    let server_digest = sim.store_digest(object, server).unwrap();
    for &cache in &caches {
        assert_eq!(
            sim.store_digest(object, cache),
            Some(server_digest),
            "demand reaction failed to recover losses at {cache}"
        );
    }
    let history = sim.history();
    let history = history.lock();
    check::check_pram(&history).unwrap();
    // All 20 writes must have reached the server despite client→server loss.
    assert_eq!(
        history
            .store_applies(globe_coherence::StoreId::new(0))
            .count(),
        20
    );
}

#[test]
fn pram_over_lossy_links_stalls_with_wait_reaction() {
    // The control arm of the §4.2 experiment: with `wait`, losses are
    // never recovered and replicas stay behind.
    let link = LinkConfig::new(Duration::from_millis(10))
        .with_loss(0.25)
        .with_fifo(false);
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .object_outdate(OutdateReaction::Wait)
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 2, Topology::uniform(link), 16);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    for i in 0..20 {
        sim.issue_write(&master, registers::put("page", format!("v{i}").as_bytes()))
            .unwrap();
        sim.run_for(Duration::from_millis(40));
    }
    sim.run_for(Duration::from_secs(60));
    sim.finalize_digests();
    let server_version = sim.store_version(object, server).unwrap();
    let lagging = caches.iter().any(|&cache| {
        sim.store_version(object, cache)
            .map(|v| v != server_version)
            .unwrap_or(true)
    }) || server_version.get(master.client) < 20;
    assert!(
        lagging,
        "with 25% loss and wait reaction, something must be missing"
    );
}

#[test]
fn dynamic_policy_switch_takes_effect() {
    // Start lazy with a long period; switch to immediate at run time; the
    // next write must propagate promptly (§5: dynamically adaptable).
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .lazy(Duration::from_secs(30))
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 1, Topology::lan(), 17);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    let reader = sim
        .bind(object, caches[0], BindOptions::new().read_node(caches[0]))
        .unwrap();
    sim.handle(master)
        .write(registers::put("page", b"lazy"))
        .unwrap();
    sim.run_for(Duration::from_secs(2));
    let got = sim.handle(reader).read(registers::get("page")).unwrap();
    assert!(got.is_empty(), "30s lazy period: cache must still be stale");

    let immediate = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    sim.set_policy(object, immediate).unwrap();
    sim.handle(master)
        .write(registers::put("page", b"fast"))
        .unwrap();
    sim.run_for(Duration::from_secs(1));
    let got = sim.handle(reader).read(registers::get("page")).unwrap();
    assert_eq!(&got[..], b"fast", "immediate policy should have pushed");
}

#[test]
fn dynamic_mirror_installation_syncs_state() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    let (mut sim, object, server, _) = setup(policy, 0, Topology::wan(), 18);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    sim.handle(master)
        .write(registers::put("page", b"before-mirror"))
        .unwrap();

    // Install an object-initiated store (mirror) at run time.
    let mirror_node = sim.add_node_in(globe_net::RegionId::new(1));
    sim.add_store(
        object,
        mirror_node,
        StoreClass::ObjectInitiated,
        Box::new(RegisterDoc::new()),
    )
    .unwrap();
    sim.run_for(Duration::from_secs(2)); // initial sync

    let reader = sim
        .bind(
            object,
            mirror_node,
            BindOptions::new().read_node(mirror_node),
        )
        .unwrap();
    let got = sim.handle(reader).read(registers::get("page")).unwrap();
    assert_eq!(&got[..], b"before-mirror", "mirror missed initial sync");

    // And it receives subsequent pushes.
    sim.handle(master)
        .write(registers::put("page", b"after-mirror"))
        .unwrap();
    sim.run_for(Duration::from_secs(2));
    let got = sim.handle(reader).read(registers::get("page")).unwrap();
    assert_eq!(&got[..], b"after-mirror");
}

#[test]
fn partition_heals_and_replicas_catch_up() {
    let policy = ReplicationPolicy::builder(ObjectModel::Eventual)
        .lazy(Duration::from_millis(500))
        .build()
        .unwrap();
    let (mut sim, object, server, caches) = setup(policy, 1, Topology::lan(), 19);
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    sim.topology_mut().partition(server, caches[0]);
    sim.handle(master)
        .write(registers::put("page", b"during-partition"))
        .unwrap();
    sim.run_for(Duration::from_secs(3));
    assert_ne!(
        sim.store_digest(object, caches[0]),
        sim.store_digest(object, server),
        "partitioned cache cannot have the update"
    );
    sim.topology_mut().heal(server, caches[0]);
    sim.run_for(Duration::from_secs(3));
    assert_eq!(
        sim.store_digest(object, caches[0]),
        sim.store_digest(object, server),
        "after healing, anti-entropy must converge the cache"
    );
}

#[test]
fn store_scope_limits_which_layers_get_strong_coherence() {
    // Scope = permanent only: the mirror and cache still receive data,
    // but only through the out-of-scope lazy path.
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .store_scope(globe_core::StoreScope::Permanent)
        .immediate()
        .period(Duration::from_millis(800))
        .build()
        .unwrap();
    let mut sim = GlobeSim::new(Topology::lan(), 20);
    let server = sim.add_node();
    let second_permanent = sim.add_node();
    let mirror = sim.add_node();
    let object = ObjectSpec::new("/scoped")
        .policy(policy)
        .semantics_boxed(doc_factory)
        .store(server, StoreClass::Permanent)
        .store(second_permanent, StoreClass::Permanent)
        .store(mirror, StoreClass::ObjectInitiated)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    sim.handle(master)
        .write(registers::put("page", b"v1"))
        .unwrap();
    // Immediately after the write: the in-scope permanent store has it...
    sim.run_for(Duration::from_millis(100));
    assert_eq!(
        sim.store_version(object, second_permanent)
            .unwrap()
            .get(master.client),
        1,
        "in-scope permanent store should get immediate push"
    );
    // ...the out-of-scope mirror does not yet.
    assert_eq!(
        sim.store_version(object, mirror)
            .unwrap()
            .get(master.client),
        0,
        "out-of-scope mirror must wait for the lazy flush"
    );
    sim.run_for(Duration::from_secs(2));
    assert_eq!(
        sim.store_version(object, mirror)
            .unwrap()
            .get(master.client),
        1,
        "lazy flush should eventually serve the mirror"
    );
}
