//! Closed-loop self-adaptation (§5 future work): the controller watches
//! the write rate and retunes the object's transfer instant while the
//! workload changes phase under it.

use std::time::Duration;

use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    registers, AdaptiveController, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, Regime,
    RegisterDoc, ReplicationPolicy, TransferInstant,
};
use globe_net::Topology;

#[test]
fn controller_retunes_the_object_as_the_workload_changes() {
    let cold = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .unwrap();
    let hot = ReplicationPolicy::builder(ObjectModel::Fifo)
        .lazy(Duration::from_secs(2))
        .build()
        .unwrap();
    let mut controller =
        AdaptiveController::new(cold.clone(), hot, 1.0, 0.1, Duration::from_secs(10));

    let mut sim = GlobeSim::new(Topology::wan(), 80);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/adaptive/loop")
        .policy(cold)
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();

    let write = |sim: &mut GlobeSim, controller: &mut AdaptiveController, i: usize| {
        sim.handle(master)
            .write(registers::put("page", format!("v{i}").as_bytes()))
            .unwrap();
        controller.record_write(sim.now());
        if let Some(policy) = controller.evaluate(sim.now()) {
            sim.set_policy(object, policy).unwrap();
        }
    };

    // Cold phase: sparse writes; the controller must stay cold.
    for i in 0..4 {
        write(&mut sim, &mut controller, i);
        sim.run_for(Duration::from_secs(15));
    }
    assert_eq!(controller.regime(), Regime::Cold);

    // Hot phase: a burst; the controller must flip to lazy aggregation.
    for i in 4..40 {
        write(&mut sim, &mut controller, i);
        sim.run_for(Duration::from_millis(200));
    }
    assert_eq!(
        controller.regime(),
        Regime::Hot,
        "burst must trip the hot threshold"
    );
    assert_eq!(controller.active_policy().instant, TransferInstant::Lazy);

    // Quiet again: the controller cools back down.
    sim.run_for(Duration::from_secs(120));
    if let Some(policy) = controller.evaluate(sim.now()) {
        sim.set_policy(object, policy).unwrap();
    }
    assert_eq!(controller.regime(), Regime::Cold);

    // Through all the switching, the object stayed coherent & converged.
    sim.run_for(Duration::from_secs(5));
    sim.finalize_digests();
    assert_eq!(
        sim.store_digest(object, cache),
        sim.store_digest(object, server)
    );
    let history = sim.history();
    let history = history.lock();
    globe_coherence::check::check_fifo(&history).unwrap();
}
