//! Negative paths of the runtime API: every misuse must surface as a
//! typed error, never a panic or a silent success.

// Test-only crate: helper fns outside #[test] bodies may unwrap/expect
// (clippy's allow-unwrap-in-tests only covers #[test] functions).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use globe_coherence::{ObjectModel, StoreClass};
use globe_core::{
    registers, BindOptions, CallError, GlobeRuntime, GlobeSim, ObjectSpec, ReadChoice, RegisterDoc,
    ReplicationPolicy, RuntimeError,
};
use globe_net::{NodeId, Topology};

fn doc() -> Box<dyn globe_core::Semantics> {
    Box::new(RegisterDoc::new())
}

fn policy() -> ReplicationPolicy {
    ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap()
}

#[test]
fn create_object_rejects_bad_input() {
    let mut sim = GlobeSim::new(Topology::lan(), 0);
    let node = sim.add_node();

    // No permanent store in the placement.
    let err = ObjectSpec::new("/x")
        .policy(policy())
        .semantics_boxed(doc)
        .store(node, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap_err();
    assert_eq!(err, RuntimeError::NoPermanentStore);

    // Unknown node.
    let err = ObjectSpec::new("/x")
        .policy(policy())
        .semantics_boxed(doc)
        .store(NodeId::new(99), StoreClass::Permanent)
        .create(&mut sim)
        .unwrap_err();
    assert_eq!(err, RuntimeError::UnknownNode(NodeId::new(99)));

    // Malformed name.
    let err = ObjectSpec::new("not-absolute")
        .policy(policy())
        .semantics_boxed(doc)
        .store(node, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap_err();
    assert!(matches!(err, RuntimeError::BadName(_)));

    // Duplicate name.
    ObjectSpec::new("/x")
        .policy(policy())
        .semantics_boxed(doc)
        .home(node)
        .create(&mut sim)
        .unwrap();
    let err = ObjectSpec::new("/x")
        .policy(policy())
        .semantics_boxed(doc)
        .home(node)
        .create(&mut sim)
        .unwrap_err();
    assert!(matches!(err, RuntimeError::NameTaken(_)));

    // Invalid policy.
    let bad = ReplicationPolicy {
        lazy_period: std::time::Duration::ZERO,
        instant: globe_core::TransferInstant::Lazy,
        ..policy()
    };
    let err = ObjectSpec::new("/y")
        .policy(bad)
        .semantics_boxed(doc)
        .home(node)
        .create(&mut sim)
        .unwrap_err();
    assert!(matches!(err, RuntimeError::BadPolicy(_)));
}

#[test]
fn bind_rejects_missing_replicas_and_nodes() {
    let mut sim = GlobeSim::new(Topology::lan(), 1);
    let server = sim.add_node();
    let other = sim.add_node();
    let object = ObjectSpec::new("/b")
        .policy(policy())
        .semantics_boxed(doc)
        .home(server)
        .create(&mut sim)
        .unwrap();

    // Binding reads to a node without a replica.
    let err = sim
        .bind(object, other, BindOptions::new().read_node(other))
        .unwrap_err();
    assert_eq!(err, RuntimeError::NoSuchReplica);

    // Binding in an unknown address space.
    let err = sim
        .bind(object, NodeId::new(77), BindOptions::new())
        .unwrap_err();
    assert_eq!(err, RuntimeError::UnknownNode(NodeId::new(77)));

    // Requesting a store class that has no replica.
    let err = sim
        .bind(
            object,
            other,
            BindOptions {
                read_from: ReadChoice::Class(StoreClass::ObjectInitiated),
                ..BindOptions::new()
            },
        )
        .unwrap_err();
    assert_eq!(err, RuntimeError::NoSuchReplica);

    // Unknown object id.
    let err = sim
        .bind(globe_naming::ObjectId::new(999), other, BindOptions::new())
        .unwrap_err();
    assert!(matches!(err, RuntimeError::UnknownObject(_)));
}

#[test]
fn calls_on_unbound_handles_fail_cleanly() {
    let mut sim = GlobeSim::new(Topology::lan(), 2);
    let server = sim.add_node();
    let object = ObjectSpec::new("/c")
        .policy(policy())
        .semantics_boxed(doc)
        .home(server)
        .create(&mut sim)
        .unwrap();
    let real = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    // Forge a handle with a bogus client id.
    let fake = globe_core::ClientHandle {
        object,
        node: server,
        client: globe_coherence::ClientId::new(4242),
    };
    assert_eq!(
        sim.handle(fake).read(registers::get("p")).unwrap_err(),
        CallError::NotBound
    );
    assert_eq!(
        sim.handle(fake)
            .write(registers::put("p", b"x"))
            .unwrap_err(),
        CallError::NotBound
    );
    // The real handle still works.
    sim.handle(real).write(registers::put("p", b"x")).unwrap();
}

#[test]
fn semantics_errors_travel_back_to_the_caller() {
    let mut sim = GlobeSim::new(Topology::lan(), 3);
    let server = sim.add_node();
    let object = ObjectSpec::new("/d")
        .policy(policy())
        .semantics_boxed(doc)
        .home(server)
        .create(&mut sim)
        .unwrap();
    let handle = sim
        .bind(object, server, BindOptions::new().read_node(server))
        .unwrap();
    // Method 99 does not exist on RegisterDoc.
    let bogus =
        globe_core::InvocationMessage::new(globe_core::MethodId::new(99), bytes::Bytes::new());
    match sim.handle(handle).read(bogus).unwrap_err() {
        CallError::Semantics(msg) => assert!(msg.contains("m99"), "{msg}"),
        other => panic!("expected a semantics error, got {other:?}"),
    }
}

#[test]
fn stalled_calls_report_instead_of_hanging() {
    // A read bound to a store that can never satisfy it: min_version
    // can't rise because nothing is scheduled. The pump detects the dead
    // simulation and errors.
    let lazy_forever = ReplicationPolicy {
        instant: globe_core::TransferInstant::Lazy,
        lazy_period: std::time::Duration::from_secs(100_000),
        client_outdate: globe_core::OutdateReaction::Wait,
        object_outdate: globe_core::OutdateReaction::Wait,
        ..policy()
    };
    let mut sim = GlobeSim::new(Topology::lan(), 4);
    let server = sim.add_node();
    let cache = sim.add_node();
    let object = ObjectSpec::new("/e")
        .policy(lazy_forever)
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(&mut sim)
        .unwrap();
    let master = sim
        .bind(
            object,
            cache,
            BindOptions::new()
                .read_node(cache)
                .guard(globe_coherence::ClientModel::ReadYourWrites),
        )
        .unwrap();
    sim.handle(master).write(registers::put("p", b"v")).unwrap();
    // RYW read through the un-pushed cache with `wait` everywhere: the
    // read queues until the far-future lazy push. With a short timeout
    // the call reports rather than spinning.
    sim.set_call_timeout(std::time::Duration::from_secs(30));
    let err = sim.handle(master).read(registers::get("p")).unwrap_err();
    assert!(
        matches!(err, CallError::TimedOut | CallError::Stalled),
        "got {err:?}"
    );
}

#[test]
fn lifecycle_rejects_unknown_targets() {
    // The lifecycle surface reports precise errors instead of panicking.
    let mut sim = GlobeSim::new(Topology::lan(), 5);
    let server = sim.add_node();
    let stranger = sim.add_node();
    let object = ObjectSpec::new("/legacy")
        .policy(policy())
        .semantics_boxed(doc)
        .store(server, StoreClass::Permanent)
        .create(&mut sim)
        .unwrap();
    // Unknown object.
    let ghost = globe_naming::ObjectId::new(9999);
    assert!(matches!(
        sim.membership(ghost),
        Err(RuntimeError::UnknownObject(_))
    ));
    // A node that hosts no replica cannot be removed or restarted.
    assert!(matches!(
        sim.remove_store(object, stranger),
        Err(RuntimeError::NoSuchReplica)
    ));
    assert!(matches!(
        sim.restart_store(object, stranger, doc()),
        Err(RuntimeError::NoSuchReplica)
    ));
    // The home store can be neither removed nor restarted.
    assert!(sim.remove_store(object, server).is_err());
    assert!(sim.restart_store(object, server, doc()).is_err());
    // A node cannot host two replicas of the same object.
    assert!(sim
        .add_store(object, server, StoreClass::ClientInitiated, doc())
        .is_err());
}
