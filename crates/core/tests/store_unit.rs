//! Direct unit tests of the store engine: a `StoreReplica` driven by
//! hand, with every outbound message captured and decoded. These pin the
//! message-level behaviours the integration tests only observe in the
//! aggregate.

// Test-only crate: helper fns outside #[test] bodies may unwrap/expect
// (clippy's allow-unwrap-in-tests only covers #[test] functions).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use globe_coherence::{ClientId, ObjectModel, StoreClass, StoreId, VersionVector, WriteId};
use globe_core::{
    registers, shared_history, shared_metrics, CallOutcome, CoherenceMsg, NetMsg, OutdateReaction,
    PeerStore, RegisterDoc, ReplicationPolicy, RequestId, StoreConfig, StoreReplica,
};
use globe_naming::ObjectId;
use globe_net::{Event, NodeId, SimNet, Topology};

/// Captures every NetMsg delivered to a node.
fn capture(net: &mut SimNet, node: NodeId) -> Rc<RefCell<Vec<(NodeId, CoherenceMsg)>>> {
    let log = Rc::new(RefCell::new(Vec::new()));
    let log2 = Rc::clone(&log);
    net.set_handler(node, move |event, _ctx| {
        if let Event::Message { from, payload } = event {
            let env: NetMsg = globe_wire::from_bytes(&payload).expect("valid frame");
            log2.borrow_mut().push((from, env.msg));
        }
    });
    log
}

struct Rig {
    net: SimNet,
    store: StoreReplica,
    home_node: NodeId,
    peer_node: NodeId,
    client_node: NodeId,
    peer_log: Rc<RefCell<Vec<(NodeId, CoherenceMsg)>>>,
    client_log: Rc<RefCell<Vec<(NodeId, CoherenceMsg)>>>,
    metrics: globe_core::SharedMetrics,
}

fn rig(policy: ReplicationPolicy, is_home: bool) -> Rig {
    rig_tuned(policy, is_home, globe_core::StoreTuning::default())
}

fn rig_tuned(policy: ReplicationPolicy, is_home: bool, tuning: globe_core::StoreTuning) -> Rig {
    rig_full(
        policy,
        is_home,
        tuning,
        globe_core::storage::StorageSpec::default(),
    )
}

fn rig_full(
    policy: ReplicationPolicy,
    is_home: bool,
    tuning: globe_core::StoreTuning,
    storage: globe_core::storage::StorageSpec,
) -> Rig {
    let mut net = SimNet::new(Topology::lan(), 0);
    let home_node = net.add_node();
    let peer_node = net.add_node();
    let client_node = net.add_node();
    let peer_log = capture(&mut net, peer_node);
    let client_log = capture(&mut net, client_node);
    let metrics = shared_metrics();
    if tuning.trace_capacity > 0 {
        metrics.lock().set_trace_capacity(tuning.trace_capacity);
    }
    // When testing a replica (is_home = false), the "store under test"
    // lives on peer_node's id space conceptually, but we drive it by
    // hand, so node identity only matters for message routing.
    let store = StoreReplica::new(StoreConfig {
        object: ObjectId::new(1),
        store_id: StoreId::new(0),
        class: if is_home {
            StoreClass::Permanent
        } else {
            StoreClass::ClientInitiated
        },
        policy,
        home_node,
        home_store: StoreId::new(0),
        is_home,
        peers: if is_home {
            vec![PeerStore {
                node: peer_node,
                store: StoreId::new(1),
                class: StoreClass::ClientInitiated,
            }]
        } else {
            Vec::new()
        },
        semantics: Box::new(RegisterDoc::new()),
        history: shared_history(),
        metrics: metrics.clone(),
        detector: globe_core::lifecycle::DetectorConfig::disabled(),
        tuning,
        storage,
    });
    Rig {
        net,
        store,
        home_node,
        peer_node,
        client_node,
        peer_log,
        client_log,
        metrics,
    }
}

fn wid(c: u32, s: u64) -> WriteId {
    WriteId::new(ClientId::new(c), s)
}

fn client_write(seq: u64) -> globe_core::LoggedWrite {
    globe_core::LoggedWrite::from_client(
        wid(9, seq),
        registers::put("page", format!("v{seq}").as_bytes()),
        VersionVector::new(),
    )
}

#[test]
fn duplicate_write_req_is_acked_idempotently() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    let mut r = rig(policy, true);
    let (store, client_node) = (&mut r.store, r.client_node);
    r.net.with_ctx(r.home_node, |ctx| {
        store.accept_write(
            Some((client_node, RequestId::new(1), ClientId::new(9))),
            client_write(1),
            ctx,
        );
        // The proxy retransmits the same WiD.
        store.accept_write(
            Some((client_node, RequestId::new(1), ClientId::new(9))),
            client_write(1),
            ctx,
        );
    });
    r.net.run_until_quiescent();
    // Exactly one semantic application…
    assert_eq!(r.store.applied().get(ClientId::new(9)), 1);
    // …but two acks, both successful.
    let replies = r
        .client_log
        .borrow()
        .iter()
        .filter(|(_, m)| matches!(m, CoherenceMsg::Reply { .. }))
        .count();
    assert_eq!(replies, 2);
}

#[test]
fn immediate_push_carries_backlog_to_late_peers() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    let mut r = rig(policy, true);
    let (store, client_node) = (&mut r.store, r.client_node);
    r.net.with_ctx(r.home_node, |ctx| {
        for seq in 1..=3 {
            store.accept_write(
                Some((client_node, RequestId::new(seq), ClientId::new(9))),
                client_write(seq),
                ctx,
            );
        }
    });
    r.net.run_until_quiescent();
    let log = r.peer_log.borrow();
    // First write: single Update; the peer is then up to date, so each
    // subsequent write is a single Update too.
    let updates = log
        .iter()
        .filter(|(_, m)| matches!(m, CoherenceMsg::Update { .. }))
        .count();
    assert_eq!(updates, 3, "one Update per write: {log:?}");
}

#[test]
fn queued_read_drains_when_the_write_arrives() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .client_outdate(OutdateReaction::Wait)
        .build()
        .unwrap();
    let mut r = rig(policy, true);
    let (store, client_node) = (&mut r.store, r.client_node);
    // A read requiring write #1, which has not arrived yet.
    let min: VersionVector = [(ClientId::new(9), 1u64)].into_iter().collect();
    r.net.with_ctx(r.home_node, |ctx| {
        store.serve_read(
            client_node,
            RequestId::new(10),
            ClientId::new(5),
            registers::get("page"),
            min,
            ctx,
        );
    });
    r.net.run_until_quiescent();
    assert!(r.client_log.borrow().is_empty(), "read must be parked");
    // The write arrives; the parked read completes with the fresh value.
    r.net.with_ctx(r.home_node, |ctx| {
        store.accept_write(None, client_write(1), ctx);
    });
    r.net.run_until_quiescent();
    let log = r.client_log.borrow();
    match &log[..] {
        [(_, CoherenceMsg::Reply { req, outcome, .. })] => {
            assert_eq!(*req, RequestId::new(10));
            assert_eq!(outcome, &CallOutcome::Ok(Bytes::from_static(b"v1")));
        }
        other => panic!("expected exactly the parked reply, got {other:?}"),
    }
}

#[test]
fn demand_update_ships_exactly_the_missing_writes() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .lazy(Duration::from_secs(60))
        .build()
        .unwrap();
    let mut r = rig(policy, true);
    let (store, client_node) = (&mut r.store, r.client_node);
    r.net.with_ctx(r.home_node, |ctx| {
        for seq in 1..=4 {
            store.accept_write(
                Some((client_node, RequestId::new(seq), ClientId::new(9))),
                client_write(seq),
                ctx,
            );
        }
    });
    // A peer that already has writes 1–2 demands the rest.
    let since: VersionVector = [(ClientId::new(9), 2u64)].into_iter().collect();
    let (store, peer_node) = (&mut r.store, r.peer_node);
    r.net.with_ctx(r.home_node, |ctx| {
        store.handle_demand_update(peer_node, since, None, ctx);
    });
    r.net.run_until_quiescent();
    let log = r.peer_log.borrow();
    let batch = log
        .iter()
        .find_map(|(_, m)| match m {
            CoherenceMsg::UpdateBatch { writes, .. } => Some(writes.clone()),
            _ => None,
        })
        .expect("an UpdateBatch reply");
    let seqs: Vec<u64> = batch.iter().map(|w| w.wid.seq).collect();
    assert_eq!(seqs, vec![3, 4], "only the missing suffix ships");
}

#[test]
fn stale_full_state_is_ignored() {
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .unwrap();
    let mut r = rig(policy, false);
    let store = &mut r.store;
    // The replica applies write 5 of client 9.
    let mut w = client_write(5);
    w.page = Some("page".to_string());
    r.net.with_ctx(r.peer_node, |ctx| {
        store.accept_write(None, w, ctx);
    });
    let digest_before = r.store.final_digest();
    // An older snapshot arrives (version only covers write 2): ignored.
    let stale_version: VersionVector = [(ClientId::new(9), 2u64)].into_iter().collect();
    let mut old_doc = RegisterDoc::new();
    use globe_core::Semantics as _;
    old_doc.dispatch(&registers::put("page", b"OLD")).unwrap();
    let state = old_doc.snapshot();
    let store = &mut r.store;
    r.net.with_ctx(r.peer_node, |ctx| {
        store.handle_full_state(
            stale_version,
            state,
            vec![("page".into(), wid(9, 2))],
            None,
            ctx,
        );
    });
    assert_eq!(
        r.store.final_digest(),
        digest_before,
        "stale snapshot must not regress state"
    );
}

#[test]
fn invalidated_page_read_demands_from_home() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .propagation(globe_core::Propagation::Invalidate)
        .immediate()
        .object_outdate(OutdateReaction::Wait) // even with wait…
        .build()
        .unwrap();
    let mut r = rig(policy, false);
    let store = &mut r.store;
    let home_log = capture(&mut r.net, r.home_node);
    // Home invalidates "page".
    let version: VersionVector = [(ClientId::new(9), 1u64)].into_iter().collect();
    r.net.with_ctx(r.peer_node, |ctx| {
        store.handle_invalidate(vec![Some("page".to_string())], version, ctx);
    });
    // A read on the invalid page must demand data (invalidate implies
    // refetch-on-read) and park the read.
    let (store, client_node) = (&mut r.store, r.client_node);
    r.net.with_ctx(r.peer_node, |ctx| {
        store.serve_read(
            client_node,
            RequestId::new(1),
            ClientId::new(5),
            registers::get("page"),
            VersionVector::new(),
            ctx,
        );
    });
    r.net.run_until_quiescent();
    assert!(
        home_log
            .borrow()
            .iter()
            .any(|(_, m)| matches!(m, CoherenceMsg::DemandUpdate { .. })),
        "invalid-page read must trigger a demand"
    );
    assert!(r.client_log.borrow().is_empty(), "read parked until data");
}

#[test]
fn group_commit_counters_and_trace_capture_flushes() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    let tuning = globe_core::StoreTuning {
        batch_max: 2,
        trace_capacity: 64,
        ..globe_core::StoreTuning::default()
    };
    let mut r = rig_tuned(policy, true, tuning);
    let (store, client_node) = (&mut r.store, r.client_node);
    r.net.with_ctx(r.home_node, |ctx| {
        // Two writes fill the batch: one size-limit flush of size 2.
        for seq in 1..=2 {
            store.accept_write(
                Some((client_node, RequestId::new(seq), ClientId::new(9))),
                client_write(seq),
                ctx,
            );
        }
        // A third write stages alone; the local read forces it out as a
        // read-triggered flush of size 1.
        store.accept_write(
            Some((client_node, RequestId::new(3), ClientId::new(9))),
            client_write(3),
            ctx,
        );
        store.serve_read(
            client_node,
            RequestId::new(4),
            ClientId::new(5),
            registers::get("page"),
            VersionVector::new(),
            ctx,
        );
    });
    r.net.run_until_quiescent();

    // The always-on counters see both flushes regardless of tracing.
    let m = r.metrics.lock();
    assert_eq!(m.protocol.flush_count(globe_core::FlushReason::Max), 1);
    assert_eq!(m.protocol.flush_count(globe_core::FlushReason::Read), 1);
    assert_eq!(m.protocol.flushes(), 2);
    assert_eq!(m.protocol.batch_writes, 3);
    assert_eq!(m.protocol.batch_max_size, 2);
    assert!((m.protocol.mean_batch_occupancy() - 1.5).abs() < 1e-9);
    let snap = m.trace_snapshot();
    drop(m);

    // The trace ring captured the same story, event by event, and the
    // checker finds it coherent (acks after applies, contiguous orders).
    assert!(snap.events.iter().any(|e| matches!(
        e.event,
        globe_core::ProtocolEvent::BatchFlushed {
            reason: globe_core::FlushReason::Max,
            size: 2
        }
    )));
    assert!(snap.events.iter().any(|e| matches!(
        e.event,
        globe_core::ProtocolEvent::BatchFlushed {
            reason: globe_core::FlushReason::Read,
            size: 1
        }
    )));
    let staged = snap
        .events
        .iter()
        .filter(|e| matches!(e.event, globe_core::ProtocolEvent::WriteStaged { .. }))
        .count();
    assert_eq!(staged, 3, "every batched write is staged exactly once");
    let violations = globe_core::TraceChecker::check(&snap);
    assert!(violations.is_empty(), "trace violations: {violations:?}");
}

#[test]
fn fifo_replica_jumps_over_skipped_writes() {
    let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
        .immediate()
        .build()
        .unwrap();
    let mut r = rig(policy, false);
    let store = &mut r.store;
    r.net.with_ctx(r.peer_node, |ctx| {
        store.accept_write(None, client_write(5), ctx); // 1–4 overwritten
        store.accept_write(None, client_write(3), ctx); // late: ignored
    });
    assert_eq!(r.store.applied().get(ClientId::new(9)), 5);
}

/// The write log must not grow without bound once checkpointing is on:
/// every `checkpoint_every` applies the home announces a checkpoint,
/// and when the (sole) peer acks it the covered prefix is dropped. The
/// retained suffix stays small while the *logical* log length keeps
/// counting every write ever applied, and the truncation shows up in
/// the always-on protocol counters.
#[test]
fn checkpointing_home_keeps_the_write_log_bounded() {
    let policy = ReplicationPolicy::builder(ObjectModel::Pram)
        .immediate()
        .build()
        .unwrap();
    let mut r = rig_full(
        policy,
        true,
        globe_core::StoreTuning::default(),
        globe_core::storage::StorageSpec {
            durable_dir: None,
            checkpoint_every: 4,
        },
    );
    let (client_node, peer_node) = (r.client_node, r.peer_node);
    const WRITES: u64 = 40;
    let mut acked: Vec<VersionVector> = Vec::new();
    for seq in 1..=WRITES {
        let store = &mut r.store;
        r.net.with_ctx(r.home_node, |ctx| {
            store.accept_write(
                Some((client_node, RequestId::new(seq), ClientId::new(9))),
                client_write(seq),
                ctx,
            );
        });
        r.net.run_until_quiescent();
        // Play the healthy peer by hand: ack every announce the home
        // multicast since the last write, exactly as the control plane
        // would after the peer checkpointed its own state.
        let announces: Vec<VersionVector> = r
            .peer_log
            .borrow()
            .iter()
            .filter_map(|(_, m)| match m {
                CoherenceMsg::CheckpointAnnounce { version } => Some(version.clone()),
                _ => None,
            })
            .filter(|v| !acked.contains(v))
            .collect();
        let store = &mut r.store;
        r.net.with_ctx(r.home_node, |ctx| {
            for version in announces {
                store.handle_checkpoint_ack(peer_node, version.clone(), ctx);
                acked.push(version);
            }
        });
        r.net.run_until_quiescent();
    }

    assert_eq!(
        r.store.log_len() as u64,
        WRITES,
        "logical length counts every write ever applied"
    );
    assert!(
        r.store.log_retained() <= 8,
        "retained suffix stays bounded (got {} of {WRITES})",
        r.store.log_retained()
    );
    let truncated = r.metrics.lock().protocol.log_truncated;
    assert!(
        truncated >= WRITES - 8,
        "compaction is accounted: log_truncated = {truncated}"
    );
    // The peers were told to drop the same prefix.
    let compacts = r
        .peer_log
        .borrow()
        .iter()
        .filter(|(_, m)| matches!(m, CoherenceMsg::CompactBelow { .. }))
        .count();
    assert!(compacts > 0, "home broadcasts the compaction floor");
}
