//! The `GlobeRuntime` abstraction is real: one generic scenario body —
//! the paper's conference page in miniature — runs verbatim on the
//! deterministic simulator and on real TCP sockets. Only construction
//! differs; every create/bind/invoke call goes through the trait.

use std::time::Duration;

use globe_coherence::{ClientModel, StoreClass};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeSim, GlobeTcp, ObjectSpec, RegisterDoc,
    ReplicationPolicy, RuntimeConfig,
};
use globe_net::Topology;

/// The shared scenario: a Web master writes through the home store,
/// reads back through a cache under Read-Your-Writes, a reader
/// eventually sees the pushed page, and the recorded history passes the
/// PRAM and RYW checkers.
fn conference_roundtrip<R: GlobeRuntime>(rt: &mut R) -> Result<(), Box<dyn std::error::Error>> {
    let server = rt.add_node()?;
    let cache = rt.add_node()?;
    let master_node = rt.add_node()?;
    let reader_node = rt.add_node()?;

    let mut policy = ReplicationPolicy::conference_page();
    policy.lazy_period = Duration::from_millis(300);
    let object = ObjectSpec::new("/conf/icdcs98")
        .policy(policy)
        .semantics(RegisterDoc::new)
        .store(server, StoreClass::Permanent)
        .store(cache, StoreClass::ClientInitiated)
        .create(rt)?;

    let master = rt.bind(
        object,
        master_node,
        BindOptions::new()
            .read_node(cache)
            .guard(ClientModel::ReadYourWrites),
    )?;
    let reader = rt.bind(object, reader_node, BindOptions::new().read_node(cache))?;

    rt.start(&[master_node, reader_node]);

    // RYW through a cache that has not been pushed yet — written via
    // the asynchronous issue/poll split, whose polling contract
    // promises progress on every runtime.
    let req = rt
        .handle(master)
        .issue_write(registers::put("program.html", b"TBA"))?;
    let ack = loop {
        if let Some(result) = rt.handle(master).result(req) {
            break result;
        }
    };
    ack?;
    let seen = rt.handle(master).read(registers::get("program.html"))?;
    assert_eq!(&seen[..], b"TBA", "read-your-writes");

    // The reader converges once the periodic push lands.
    let mut latest = Vec::new();
    for _ in 0..40 {
        latest = rt
            .handle(reader)
            .read(registers::get("program.html"))?
            .to_vec();
        if latest == b"TBA" {
            break;
        }
        rt.settle(Duration::from_millis(100));
    }
    assert_eq!(&latest[..], b"TBA", "push must reach the reader's cache");

    // The same checkers pass on the same recorded history type.
    let history = rt.history();
    let history = history.lock();
    globe_coherence::check::check_pram(&history)?;
    globe_coherence::check::check_read_your_writes(&history, master.client)?;
    drop(history);

    rt.shutdown();
    Ok(())
}

#[test]
fn conference_roundtrip_on_the_simulator() {
    let mut sim = GlobeSim::with_config(Topology::lan(), RuntimeConfig::new().seed(42));
    conference_roundtrip(&mut sim).expect("scenario on GlobeSim");
}

#[test]
fn conference_roundtrip_over_real_sockets() {
    let mut tcp = GlobeTcp::with_config(
        RuntimeConfig::new()
            .seed(42)
            .call_timeout(Duration::from_secs(10)),
    );
    conference_roundtrip(&mut tcp).expect("scenario on GlobeTcp");
}

#[test]
fn runtimes_construct_symmetrically() {
    let config = RuntimeConfig::new().seed(7);
    let _sim = GlobeSim::with_config(Topology::lan(), config);
    let tcp = GlobeTcp::with_config(config);
    assert_eq!(tcp.seed(), 7);
}
