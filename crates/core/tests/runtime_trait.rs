//! The `GlobeRuntime` abstraction is real: one generic scenario body —
//! the paper's conference page in miniature — runs verbatim on the
//! deterministic simulator, on real TCP sockets, and on the in-process
//! sharded runtime, through the `matrix` harness that also asserts the
//! three backends report identical logical outcomes. Only construction
//! differs; every create/bind/invoke call goes through the trait.

use std::time::Duration;

use globe_coherence::{ClientModel, StoreClass};
use globe_core::matrix::{self, Backend, Observations, Scenario};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeShard, GlobeSim, GlobeTcp, ObjectSpec, RegisterDoc,
    ReplicationPolicy, RuntimeConfig,
};
use globe_net::Topology;

/// The shared scenario: a Web master writes through the home store,
/// reads back through a cache under Read-Your-Writes, a reader
/// eventually sees the pushed page, and the recorded history passes the
/// PRAM and RYW checkers.
struct ConferencePage;

impl Scenario for ConferencePage {
    fn name(&self) -> &'static str {
        "conference-page"
    }

    fn run<R: GlobeRuntime>(&self, rt: &mut R) -> Result<Observations, Box<dyn std::error::Error>> {
        let server = rt.add_node()?;
        let cache = rt.add_node()?;
        let master_node = rt.add_node()?;
        let reader_node = rt.add_node()?;

        let mut policy = ReplicationPolicy::conference_page();
        policy.lazy_period = Duration::from_millis(300);
        let object = ObjectSpec::new("/conf/icdcs98")
            .policy(policy)
            .semantics(RegisterDoc::new)
            .store(server, StoreClass::Permanent)
            .store(cache, StoreClass::ClientInitiated)
            .create(rt)?;

        let master = rt.bind(
            object,
            master_node,
            BindOptions::new()
                .read_node(cache)
                .guard(ClientModel::ReadYourWrites),
        )?;
        let reader = rt.bind(object, reader_node, BindOptions::new().read_node(cache))?;

        rt.start(&[master_node, reader_node]);

        // RYW through a cache that has not been pushed yet — written via
        // the asynchronous issue/poll split, whose polling contract
        // promises progress on every runtime.
        let req = rt
            .handle(master)
            .issue_write(registers::put("program.html", b"TBA"))?;
        let ack = loop {
            if let Some(result) = rt.handle(master).result(req) {
                break result;
            }
        };
        ack?;
        let mut obs = Observations::new();
        let seen = rt.handle(master).read(registers::get("program.html"))?;
        assert_eq!(&seen[..], b"TBA", "read-your-writes");
        obs.record("master-ryw-read", &seen);

        // The reader converges once the periodic push lands.
        let mut latest = Vec::new();
        for _ in 0..40 {
            latest = rt
                .handle(reader)
                .read(registers::get("program.html"))?
                .to_vec();
            if latest == b"TBA" {
                break;
            }
            rt.settle(Duration::from_millis(100));
        }
        assert_eq!(&latest[..], b"TBA", "push must reach the reader's cache");
        obs.record("reader-converged", &latest);

        // The same checkers pass on the same recorded history type.
        let history = rt.history();
        let history = history.lock();
        globe_coherence::check::check_pram(&history)?;
        globe_coherence::check::check_read_your_writes(&history, master.client)?;
        drop(history);

        rt.shutdown();
        Ok(obs)
    }
}

#[test]
fn conference_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10));
    let outcomes = matrix::run_matrix(&ConferencePage, &Backend::ALL, config)
        .expect("identical logical outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            2,
            "{}: both observations recorded",
            outcome.backend
        );
    }
}

/// The fault matrix: kill a replica mid-workload, recover it through
/// the state-transfer protocol, and require identical logical outcomes
/// on the simulator, real sockets, and the sharded runtime.
#[test]
fn kill_restart_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10));
    let outcomes = matrix::run_matrix(&matrix::fault::KillRestart, &Backend::ALL, config)
        .expect("identical kill-and-recover outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            4,
            "{}: all fault observations recorded",
            outcome.backend
        );
    }
}

/// The tentpole fault scenario: kill the home (sequencer) store, let a
/// surviving permanent store win the deterministic election and accept
/// writes, rejoin the old home, then hand the sequencer back with a
/// graceful removal — with identical logical outcomes everywhere and a
/// prefix-consistent history on every replica.
#[test]
fn home_failover_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10));
    let outcomes = matrix::run_matrix(&matrix::fault::HomeFailover, &Backend::ALL, config)
        .expect("identical fail-over outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            6,
            "{}: all fail-over observations recorded",
            outcome.backend
        );
    }
}

/// The unattended fail-over drill, identical on every backend: with
/// the detector and `auto_failover` on, partitioning the home yields a
/// self-elected sequencer that accepts writes with **no** lifecycle
/// call, sessions reroute on the unsolicited takeover announcement,
/// and the deposed home rejoins as an ordinary replica when healed.
#[test]
fn auto_failover_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(20))
        .heartbeat_period(Duration::from_millis(60))
        .suspect_after_misses(2)
        .auto_failover(true)
        .failover_confirm_periods(1);
    let outcomes = matrix::run_matrix(&matrix::fault::AutoFailover, &Backend::ALL, config)
        .expect("identical unattended fail-over outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            6,
            "{}: all auto-fail-over observations recorded",
            outcome.backend
        );
    }
}

/// Live membership churn (add a mirror, read through it, remove it)
/// behaves identically everywhere — including on TCP after `start()`,
/// where the operations ride the control plane.
#[test]
fn mirror_churn_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(7)
        .call_timeout(Duration::from_secs(10));
    let outcomes = matrix::run_matrix(&matrix::fault::MirrorChurn, &Backend::ALL, config)
        .expect("identical churn outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
}

#[test]
fn runtimes_construct_symmetrically() {
    let config = RuntimeConfig::new().seed(7);
    let _sim = GlobeSim::with_config(Topology::lan(), config);
    let tcp = GlobeTcp::with_config(config);
    let shard = GlobeShard::with_config(config);
    assert_eq!(tcp.seed(), 7);
    assert_eq!(shard.seed(), 7);
    assert_eq!(shard.num_shards(), globe_core::DEFAULT_SHARDS);
}
