//! The `GlobeRuntime` abstraction is real: one generic scenario body —
//! the paper's conference page in miniature — runs verbatim on the
//! deterministic simulator, on real TCP sockets, and on the in-process
//! sharded runtime, through the `matrix` harness that also asserts the
//! three backends report identical logical outcomes. Only construction
//! differs; every create/bind/invoke call goes through the trait.

// Test-only crate: helper fns outside #[test] bodies may unwrap/expect
// (clippy's allow-unwrap-in-tests only covers #[test] functions).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use globe_coherence::{ClientModel, StoreClass};
use globe_core::matrix::{self, Backend, Observations, Scenario};
use globe_core::{
    registers, BindOptions, GlobeRuntime, GlobeShard, GlobeSim, GlobeTcp, ObjectSpec, RegisterDoc,
    ReplicationPolicy, RuntimeConfig,
};
use globe_net::Topology;

/// The shared scenario: a Web master writes through the home store,
/// reads back through a cache under Read-Your-Writes, a reader
/// eventually sees the pushed page, and the recorded history passes the
/// PRAM and RYW checkers.
struct ConferencePage;

impl Scenario for ConferencePage {
    fn name(&self) -> &'static str {
        "conference-page"
    }

    fn run<R: GlobeRuntime>(&self, rt: &mut R) -> Result<Observations, Box<dyn std::error::Error>> {
        let server = rt.add_node()?;
        let cache = rt.add_node()?;
        let master_node = rt.add_node()?;
        let reader_node = rt.add_node()?;

        let mut policy = ReplicationPolicy::conference_page();
        policy.lazy_period = Duration::from_millis(300);
        let object = ObjectSpec::new("/conf/icdcs98")
            .policy(policy)
            .semantics(RegisterDoc::new)
            .store(server, StoreClass::Permanent)
            .store(cache, StoreClass::ClientInitiated)
            .create(rt)?;

        let master = rt.bind(
            object,
            master_node,
            BindOptions::new()
                .read_node(cache)
                .guard(ClientModel::ReadYourWrites),
        )?;
        let reader = rt.bind(object, reader_node, BindOptions::new().read_node(cache))?;

        rt.start(&[master_node, reader_node]);

        // RYW through a cache that has not been pushed yet — written via
        // the asynchronous issue/poll split, whose polling contract
        // promises progress on every runtime.
        let req = rt
            .handle(master)
            .issue_write(registers::put("program.html", b"TBA"))?;
        let ack = loop {
            if let Some(result) = rt.handle(master).result(req) {
                break result;
            }
        };
        ack?;
        let mut obs = Observations::new();
        let seen = rt.handle(master).read(registers::get("program.html"))?;
        assert_eq!(&seen[..], b"TBA", "read-your-writes");
        obs.record("master-ryw-read", &seen);

        // The reader converges once the periodic push lands.
        let mut latest = Vec::new();
        for _ in 0..40 {
            latest = rt
                .handle(reader)
                .read(registers::get("program.html"))?
                .to_vec();
            if latest == b"TBA" {
                break;
            }
            rt.settle(Duration::from_millis(100));
        }
        assert_eq!(&latest[..], b"TBA", "push must reach the reader's cache");
        obs.record("reader-converged", &latest);

        // The same checkers pass on the same recorded history type.
        let history = rt.history();
        let history = history.lock();
        globe_coherence::check::check_pram(&history)?;
        globe_coherence::check::check_read_your_writes(&history, master.client)?;
        drop(history);

        rt.shutdown();
        Ok(obs)
    }
}

#[test]
fn conference_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10));
    let outcomes = matrix::run_matrix(&ConferencePage, &Backend::ALL, config)
        .expect("identical logical outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            2,
            "{}: both observations recorded",
            outcome.backend
        );
    }
}

/// The fault matrix: kill a replica mid-workload, recover it through
/// the state-transfer protocol, and require identical logical outcomes
/// on the simulator, real sockets, and the sharded runtime.
#[test]
fn kill_restart_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10));
    let outcomes = matrix::run_matrix(&matrix::fault::KillRestart, &Backend::ALL, config)
        .expect("identical kill-and-recover outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            4,
            "{}: all fault observations recorded",
            outcome.backend
        );
    }
}

/// The tentpole fault scenario: kill the home (sequencer) store, let a
/// surviving permanent store win the deterministic election and accept
/// writes, rejoin the old home, then hand the sequencer back with a
/// graceful removal — with identical logical outcomes everywhere and a
/// prefix-consistent history on every replica.
#[test]
fn home_failover_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10));
    let outcomes = matrix::run_matrix(&matrix::fault::HomeFailover, &Backend::ALL, config)
        .expect("identical fail-over outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            7,
            "{}: all fail-over observations recorded",
            outcome.backend
        );
    }
}

/// The unattended fail-over drill, identical on every backend: with
/// the detector and `auto_failover` on, partitioning the home yields a
/// self-elected sequencer that accepts writes with **no** lifecycle
/// call, sessions reroute on the unsolicited takeover announcement,
/// and the deposed home rejoins as an ordinary replica when healed.
#[test]
fn auto_failover_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(20))
        .heartbeat_period(Duration::from_millis(60))
        .suspect_after_misses(2)
        .auto_failover(true)
        .failover_confirm_periods(1);
    let outcomes = matrix::run_matrix(&matrix::fault::AutoFailover, &Backend::ALL, config)
        .expect("identical unattended fail-over outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            7,
            "{}: all auto-fail-over observations recorded",
            outcome.backend
        );
    }
}

/// The same fail-over drill with group commit enabled: every write
/// rides a sequencer batch (window-flushed), the handoff and election
/// paths must preserve the batched log, and the three backends must
/// still agree observation-for-observation.
#[test]
fn home_failover_matrix_with_batching() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10))
        .batch_max(4)
        .batch_window(Duration::from_millis(10))
        .trace_capacity(4096);
    let outcomes = matrix::run_matrix(&matrix::fault::HomeFailover, &Backend::ALL, config)
        .expect("identical batched fail-over outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    assert_trace_captured(&outcomes);
}

/// With the flight recorder on, every backend must come back with a
/// non-empty, checker-clean trace: the scenario body records a
/// normalized `trace-captured = 1` observation only when `rt.trace()`
/// returned events, and runs `TraceChecker` on the snapshot itself.
fn assert_trace_captured(outcomes: &[matrix::MatrixOutcome]) {
    for outcome in outcomes {
        let (_, captured) = outcome
            .observations
            .items()
            .iter()
            .find(|(label, _)| label == "trace-captured")
            .expect("fault scenarios record whether the trace was captured");
        assert_eq!(
            captured, b"1",
            "{}: trace-enabled run must capture protocol events",
            outcome.backend
        );
    }
}

/// Unattended fail-over with group commit enabled: the detector fires
/// while the sequencer is accumulating batches, and the self-elected
/// standby must carry on without losing an acknowledged write.
#[test]
fn auto_failover_matrix_with_batching() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(20))
        .heartbeat_period(Duration::from_millis(60))
        .suspect_after_misses(2)
        .auto_failover(true)
        .failover_confirm_periods(1)
        .batch_max(4)
        .batch_window(Duration::from_millis(10))
        .trace_capacity(4096);
    let outcomes = matrix::run_matrix(&matrix::fault::AutoFailover, &Backend::ALL, config)
        .expect("identical batched unattended fail-over outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    assert_trace_captured(&outcomes);
}

/// The partial-batch fault: writes are *staged but unflushed* at the
/// sequencer when it dies, and again when the elected sequencer is
/// gracefully retired. Unacknowledged writes must never be lost — the
/// session retransmits them to whichever store holds the sequencer
/// next — and no write may be acknowledged unless it survives.
struct PartialBatchFailover;

impl Scenario for PartialBatchFailover {
    fn name(&self) -> &'static str {
        "fault-partial-batch-failover"
    }

    fn run<R: GlobeRuntime>(&self, rt: &mut R) -> Result<Observations, Box<dyn std::error::Error>> {
        let home = rt.add_node()?;
        let standby = rt.add_node()?;
        let writer_node = rt.add_node()?;

        let policy = globe_core::ReplicationPolicy::builder(globe_coherence::ObjectModel::Fifo)
            .immediate()
            .build()?;
        let object = ObjectSpec::new("/fault/partial-batch")
            .policy(policy)
            .semantics(RegisterDoc::new)
            .store(home, StoreClass::Permanent)
            .store(standby, StoreClass::Permanent)
            .create(rt)?;
        let writer = rt.bind(object, writer_node, BindOptions::new().read_node(standby))?;
        rt.start(&[writer_node]);

        // Warm the session (the standby learns where it lives, so the
        // takeover announcement can reroute it later).
        rt.handle(writer).write(registers::put("warm", b"w"))?;
        let warm = rt.handle(writer).read(registers::get("warm"))?;
        assert_eq!(&warm[..], b"w");

        // Stage three writes into the sequencer's open batch — the
        // window is far longer than the time to the kill below, so they
        // are in flight (unflushed, unacknowledged) when the home dies.
        let reqs = [
            rt.handle(writer).issue_write(registers::put("k0", b"v0"))?,
            rt.handle(writer).issue_write(registers::put("k1", b"v1"))?,
            rt.handle(writer).issue_write(registers::put("k2", b"v2"))?,
        ];
        rt.restart_store(object, home, Box::new(RegisterDoc::new()))?;

        // Every staged write must still complete: the session retries
        // it against the elected sequencer (the standby).
        for req in reqs {
            let ack = loop {
                if let Some(result) = rt.handle(writer).result(req) {
                    break result;
                }
                rt.settle(Duration::from_millis(20));
            };
            ack?;
        }
        let view = rt.membership(object)?;
        let mut obs = Observations::new();
        assert!(view.members[0].is_home);
        assert_eq!(view.members[0].node, standby, "the standby must be elected");
        obs.record("elected-home", view.members[0].node.to_string());

        // The graceful leg: stage writes at the *elected* sequencer and
        // retire it mid-batch. Demotion drops the pending batch without
        // acknowledging; the handback must re-admit the retried writes.
        let reqs = [
            rt.handle(writer).issue_write(registers::put("k3", b"v3"))?,
            rt.handle(writer).issue_write(registers::put("k4", b"v4"))?,
        ];
        rt.remove_store(object, standby)?;
        for req in reqs {
            let ack = loop {
                if let Some(result) = rt.handle(writer).result(req) {
                    break result;
                }
                rt.settle(Duration::from_millis(20));
            };
            ack?;
        }
        let view = rt.membership(object)?;
        assert!(view.members[0].is_home);
        assert_eq!(
            view.members[0].node, home,
            "the handback must reach the home"
        );
        obs.record("post-handback-home", view.members[0].node.to_string());

        // Every acknowledged write is durable and readable.
        let reader = rt.bind(object, writer_node, BindOptions::new().read_node(home))?;
        for (page, want) in [
            ("k0", b"v0" as &[u8]),
            ("k1", b"v1"),
            ("k2", b"v2"),
            ("k3", b"v3"),
            ("k4", b"v4"),
        ] {
            let mut latest = Vec::new();
            for _ in 0..50 {
                latest = rt.handle(reader).read(registers::get(page))?.to_vec();
                if latest == want {
                    break;
                }
                rt.settle(Duration::from_millis(100));
            }
            assert_eq!(
                &latest[..],
                want,
                "acked write {page} must survive the faults"
            );
            obs.record(page, &latest);
        }

        // The single writer's sequence is never replayed or reordered.
        let history = rt.history();
        let history = history.lock();
        globe_coherence::check::check_fifo(&history)?;
        drop(history);

        // Partial batches are exactly where an ack could sneak out
        // before its apply; the flight recorder must never see one.
        let snap = rt.trace();
        let violations = globe_core::TraceChecker::check(&snap);
        assert!(violations.is_empty(), "trace violations: {violations:?}");
        obs.record("trace-captured", snap.len().min(1).to_string());

        rt.shutdown();
        Ok(obs)
    }
}

/// The partial-batch drill must agree on all three backends: a batch
/// window much longer than the fault gap guarantees the staged writes
/// are unflushed when the sequencer goes down.
#[test]
fn partial_batch_failover_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10))
        .batch_max(8)
        .batch_window(Duration::from_millis(150))
        .trace_capacity(4096);
    let outcomes = matrix::run_matrix(&PartialBatchFailover, &Backend::ALL, config)
        .expect("identical partial-batch outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    assert_trace_captured(&outcomes);
}

/// Live membership churn (add a mirror, read through it, remove it)
/// behaves identically everywhere — including on TCP after `start()`,
/// where the operations ride the control plane.
#[test]
fn mirror_churn_matrix_spans_sim_tcp_and_shard() {
    let config = RuntimeConfig::new()
        .seed(7)
        .call_timeout(Duration::from_secs(10));
    let outcomes = matrix::run_matrix(&matrix::fault::MirrorChurn, &Backend::ALL, config)
        .expect("identical churn outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
}

/// Builds a per-backend durable config factory: each backend gets its
/// own WAL tree (store ids repeat across backends, so a shared tree
/// would corrupt), rooted in temp dirs that vanish when `dirs` drops.
fn durable_config_for(
    dirs: &[(Backend, globe_core::TempDir)],
    base: RuntimeConfig,
) -> impl Fn(Backend) -> RuntimeConfig + '_ {
    move |backend| {
        let dir = dirs
            .iter()
            .find(|(b, _)| *b == backend)
            .map(|(_, d)| d.path())
            .expect("a temp dir per backend");
        base.clone().durable_dir(dir)
    }
}

fn durable_dirs(prefix: &str) -> Vec<(Backend, globe_core::TempDir)> {
    Backend::ALL
        .iter()
        .map(|&b| (b, globe_core::TempDir::new(&format!("{prefix}_{b}"))))
        .collect()
}

/// The kill-restart drill with the durable WAL backend on: the killed
/// mirror must come back from its local log (not a blank slate) and
/// the matrix must still agree on every backend.
#[test]
fn kill_restart_matrix_with_durable_storage() {
    let dirs = durable_dirs("kill_restart");
    let base = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10))
        .checkpoint_every(4)
        .trace_capacity(4096);
    let outcomes = matrix::run_matrix_with(
        &matrix::fault::KillRestart,
        &Backend::ALL,
        durable_config_for(&dirs, base),
    )
    .expect("identical durable kill-and-recover outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    for outcome in &outcomes {
        assert_eq!(
            outcome.observations.items().len(),
            4,
            "{}: all fault observations recorded",
            outcome.backend
        );
    }
}

/// The home fail-over drill with the durable WAL backend on: election,
/// rejoin, and handback must all survive checkpointing + compaction
/// running underneath, identically on every backend.
#[test]
fn home_failover_matrix_with_durable_storage() {
    let dirs = durable_dirs("home_failover");
    let base = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10))
        .checkpoint_every(4)
        .trace_capacity(4096);
    let outcomes = matrix::run_matrix_with(
        &matrix::fault::HomeFailover,
        &Backend::ALL,
        durable_config_for(&dirs, base),
    )
    .expect("identical durable fail-over outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    assert_trace_captured(&outcomes);
}

/// The incremental-recovery proof: a durable mirror is killed after the
/// workload has been checkpointed, recovers its state from its own WAL,
/// and rejoins by shipping its version vector — so the home sends a
/// chunked *delta* (the log suffix it missed), never the full state.
/// The trace must show the delta install, and the checker must confirm
/// no write was applied below the recovered checkpoint.
struct DurableSuffixRecovery;

impl Scenario for DurableSuffixRecovery {
    fn name(&self) -> &'static str {
        "fault-durable-suffix-recovery"
    }

    fn run<R: GlobeRuntime>(&self, rt: &mut R) -> Result<Observations, Box<dyn std::error::Error>> {
        let server = rt.add_node()?;
        let mirror = rt.add_node()?;
        let client_node = rt.add_node()?;

        let policy = globe_core::ReplicationPolicy::builder(globe_coherence::ObjectModel::Fifo)
            .immediate()
            .build()?;
        let object = ObjectSpec::new("/fault/durable-suffix")
            .policy(policy)
            .semantics(RegisterDoc::new)
            .store(server, StoreClass::Permanent)
            .store(mirror, StoreClass::Permanent)
            .create(rt)?;
        let writer = rt.bind(object, client_node, BindOptions::new().read_node(server))?;
        let reader = rt.bind(object, client_node, BindOptions::new().read_node(mirror))?;
        rt.start(&[client_node]);

        // Enough writes to cross several checkpoint boundaries, so the
        // mirror's WAL holds a checkpoint + suffix when it dies.
        for i in 0..12 {
            rt.handle(writer).write(registers::put(
                &format!("k{i}"),
                format!("pre-{i}").as_bytes(),
            ))?;
        }
        let mut obs = Observations::new();
        let mut seen = Vec::new();
        for _ in 0..50 {
            seen = rt.handle(reader).read(registers::get("k11"))?.to_vec();
            if seen == b"pre-11" {
                break;
            }
            rt.settle(Duration::from_millis(100));
        }
        assert_eq!(&seen[..], b"pre-11", "mirror converges before the fault");
        obs.record("pre-fail", &seen);

        // Kill the mirror. Its semantics object is replaced with a
        // blank one — everything it knows after this line came from
        // its local WAL or from the join reply.
        rt.restart_store(object, mirror, Box::new(RegisterDoc::new()))?;

        // Pre-failure writes are readable again (recovered locally or
        // shipped in the delta), and new writes keep flowing.
        let mut old = Vec::new();
        for _ in 0..50 {
            old = rt.handle(reader).read(registers::get("k0"))?.to_vec();
            if old == b"pre-0" {
                break;
            }
            rt.settle(Duration::from_millis(100));
        }
        assert_eq!(&old[..], b"pre-0", "WAL recovery restores old writes");
        obs.record("post-recover-old", &old);
        rt.handle(writer)
            .write(registers::put("k99", b"post-recover"))?;
        let mut fresh = Vec::new();
        for _ in 0..50 {
            fresh = rt.handle(reader).read(registers::get("k99"))?.to_vec();
            if fresh == b"post-recover" {
                break;
            }
            rt.settle(Duration::from_millis(100));
        }
        assert_eq!(&fresh[..], b"post-recover");
        obs.record("post-recover-new", &fresh);

        // The trace must show the incremental path: the rejoining
        // mirror announced a non-empty vector, so the home shipped a
        // delta, and the mirror installed it. A full `StateTransfer`
        // to a *recovering* store would be a regression (the initial
        // joins at create() legitimately use the full path).
        let snap = rt.trace();
        let delta_installs = snap
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    globe_core::ProtocolEvent::DeltaTransferInstalled { .. }
                )
            })
            .count();
        assert!(
            delta_installs > 0,
            "recovery must ride the delta path, not full state transfer"
        );
        obs.record("delta-recovery", delta_installs.min(1).to_string());
        let ckpt_installs = snap
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.event,
                    globe_core::ProtocolEvent::CheckpointInstalled { .. }
                )
            })
            .count();
        assert!(
            ckpt_installs > 0,
            "the restarted store must recover a checkpoint from its WAL"
        );
        obs.record("wal-checkpoint-recovered", ckpt_installs.min(1).to_string());

        // No write below the recovered checkpoint is ever re-applied.
        let violations = globe_core::TraceChecker::check(&snap);
        assert!(violations.is_empty(), "trace violations: {violations:?}");
        obs.record("trace-captured", snap.len().min(1).to_string());

        let history = rt.history();
        let history = history.lock();
        globe_coherence::check::check_fifo(&history)?;
        drop(history);

        rt.shutdown();
        Ok(obs)
    }
}

/// The durable suffix-recovery drill must agree on all three backends:
/// WAL recovery + incremental delta join, proven by the flight
/// recorder on each.
#[test]
fn durable_suffix_recovery_matrix_spans_sim_tcp_and_shard() {
    let dirs = durable_dirs("suffix_recovery");
    let base = RuntimeConfig::new()
        .seed(42)
        .call_timeout(Duration::from_secs(10))
        .checkpoint_every(4)
        .trace_capacity(8192);
    let outcomes = matrix::run_matrix_with(
        &DurableSuffixRecovery,
        &Backend::ALL,
        durable_config_for(&dirs, base),
    )
    .expect("identical durable suffix-recovery outcomes on every backend");
    assert_eq!(outcomes.len(), 3);
    assert_trace_captured(&outcomes);
}

#[test]
fn runtimes_construct_symmetrically() {
    let config = RuntimeConfig::new().seed(7);
    let _sim = GlobeSim::with_config(Topology::lan(), config.clone());
    let tcp = GlobeTcp::with_config(config.clone());
    let shard = GlobeShard::with_config(config);
    assert_eq!(tcp.seed(), 7);
    assert_eq!(shard.seed(), 7);
    assert_eq!(shard.num_shards(), globe_core::DEFAULT_SHARDS);
}
