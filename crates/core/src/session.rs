//! Client sessions: the proxy side of a bound object.
//!
//! "The clients do not implement the semantics object. Basically, clients
//! only translate method calls to messages which are sent to the caches
//! (or server) to retrieve (or write) data" (§4.2). A [`Session`] is that
//! translation layer plus the *client-based coherence* enforcement: it
//! assigns WiDs to writes, tracks what the client has observed, attaches
//! session-guard requirements to requests, and resends writes when the
//! home store demands them (the §4.2 reliability mechanism).

use std::collections::HashMap;

use bytes::Bytes;
use globe_coherence::{ClientId, ClientModel, ObjectModel, StoreId, VersionVector, WriteId};
use globe_naming::ObjectId;
use globe_net::{NetCtx, NodeId, SimTime};

use crate::{
    CallError, CallOutcome, CoherenceMsg, CommObject, InvocationMessage, LoggedWrite, MethodKind,
    OpSample, RequestId, SharedHistory, SharedMetrics,
};

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    kind: MethodKind,
    issued: SimTime,
}

/// One client's binding to a distributed object.
///
/// Reads go to the bound (usually nearest) store; writes go to the home
/// permanent store, exactly like the paper's Web master writing directly
/// to the Web server while users read from caches (Fig. 3).
pub struct Session {
    client: ClientId,
    object: ObjectId,
    model: ObjectModel,
    guards: Vec<ClientModel>,
    read_node: NodeId,
    read_store: StoreId,
    write_node: NodeId,
    write_store: StoreId,
    comm: CommObject,
    observed: VersionVector,
    read_set: VersionVector,
    issued_writes: u64,
    next_req: u64,
    sent_writes: Vec<(RequestId, LoggedWrite)>,
    outstanding: HashMap<RequestId, Outstanding>,
    results: HashMap<RequestId, Result<Bytes, CallError>>,
    last_full_state: Option<Bytes>,
    history: SharedHistory,
    metrics: SharedMetrics,
}

/// Everything needed to construct a [`Session`].
pub struct SessionConfig {
    /// The client's identity.
    pub client: ClientId,
    /// The bound object.
    pub object: ObjectId,
    /// The object's coherence model (drives causal dependency tagging).
    pub model: ObjectModel,
    /// Client-based models to enforce on top (already filtered of ones
    /// the object model subsumes).
    pub guards: Vec<ClientModel>,
    /// Node and store id serving this client's reads.
    pub read_node: NodeId,
    /// Store id of the read store.
    pub read_store: StoreId,
    /// Node accepting this client's writes (the home store, or the bound
    /// store for models that allow local write ingress).
    pub write_node: NodeId,
    /// Store id of the write store.
    pub write_store: StoreId,
    /// Shared history recorder.
    pub history: SharedHistory,
    /// Shared metrics.
    pub metrics: SharedMetrics,
}

impl Session {
    /// Creates a session.
    pub fn new(config: SessionConfig) -> Self {
        let comm = CommObject::new(config.object, config.metrics.clone());
        Session {
            client: config.client,
            object: config.object,
            model: config.model,
            guards: config.guards,
            read_node: config.read_node,
            read_store: config.read_store,
            write_node: config.write_node,
            write_store: config.write_store,
            comm,
            observed: VersionVector::new(),
            read_set: VersionVector::new(),
            issued_writes: 0,
            next_req: 0,
            sent_writes: Vec::new(),
            outstanding: HashMap::new(),
            results: HashMap::new(),
            last_full_state: None,
            history: config.history,
            metrics: config.metrics,
        }
    }

    /// The client id.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The bound object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The store currently serving reads.
    pub fn read_store(&self) -> StoreId {
        self.read_store
    }

    /// Rebinds reads to a different store (clients may switch replicas;
    /// the monotonic-reads guard keeps that safe).
    pub fn rebind_reads(&mut self, node: NodeId, store: StoreId) {
        self.read_node = node;
        self.read_store = store;
    }

    /// Reroutes this session after a home-store fail-over: writes bound
    /// to the failed home now target the elected successor, so the
    /// periodic retransmission of unacknowledged writes — and every
    /// future invocation — reaches a live sequencer. Reads are rebound
    /// too when the failed replica is gone for good (`reroute_reads`);
    /// after a crash-restart the replica recovers in place and keeps
    /// serving this session's reads.
    pub fn reroute_home(
        &mut self,
        old_home: NodeId,
        new_home: NodeId,
        new_store: StoreId,
        reroute_reads: bool,
    ) {
        if self.write_node == old_home {
            self.write_node = new_home;
            self.write_store = new_store;
        }
        if reroute_reads && self.read_node == old_home {
            self.rebind_reads(new_home, new_store);
        }
    }

    /// Active session guards.
    pub fn guards(&self) -> &[ClientModel] {
        &self.guards
    }

    /// Adds a guard at run time ("the replication subobject of the store
    /// is easily augmented to integrate the implementation of the new
    /// coherence model", §3.2.2).
    pub fn add_guard(&mut self, guard: ClientModel) {
        if !self.model.subsumes(guard) && !self.guards.contains(&guard) {
            self.guards.push(guard);
        }
    }

    /// The merge of every store version this session has observed.
    pub fn observed(&self) -> &VersionVector {
        &self.observed
    }

    /// The last full-document snapshot received (when the object's access
    /// transfer type is `full`).
    pub fn last_full_state(&self) -> Option<&Bytes> {
        self.last_full_state.as_ref()
    }

    fn fresh_req(&mut self) -> RequestId {
        let req = RequestId::new((u64::from(self.client.raw()) << 32) | self.next_req);
        self.next_req += 1;
        req
    }

    /// The minimum store version a read must observe under the active
    /// guards.
    fn read_min_version(&self) -> VersionVector {
        let mut min = VersionVector::new();
        for guard in &self.guards {
            match guard {
                ClientModel::ReadYourWrites => {
                    if self.issued_writes > 0 {
                        min.set(self.client, self.issued_writes);
                    }
                }
                ClientModel::MonotonicReads => min.merge_max(&self.read_set),
                ClientModel::MonotonicWrites | ClientModel::WritesFollowReads => {}
            }
        }
        min
    }

    /// The dependency vector a write must carry under the model/guards.
    fn write_deps(&self) -> VersionVector {
        let mut deps = VersionVector::new();
        if self.model == ObjectModel::Causal {
            deps.merge_max(&self.observed);
            deps.merge_max(&self.read_set);
        }
        for guard in &self.guards {
            match guard {
                ClientModel::WritesFollowReads => deps.merge_max(&self.read_set),
                ClientModel::MonotonicWrites => {}
                ClientModel::ReadYourWrites | ClientModel::MonotonicReads => {}
            }
        }
        // Program order: always depend on our own previous write under
        // models that order via dependencies; harmless elsewhere because
        // stores enforce per-client order anyway.
        if (self.model == ObjectModel::Causal
            || self.guards.contains(&ClientModel::MonotonicWrites))
            && self.issued_writes > 0
        {
            deps.set(self.client, self.issued_writes);
        }
        // Our own entry must never exceed the write being issued.
        deps.set(self.client, deps.get(self.client).min(self.issued_writes));
        deps
    }

    /// Issues a read. The reply arrives asynchronously via
    /// [`Session::on_reply`].
    pub fn issue_read(&mut self, inv: InvocationMessage, ctx: &mut dyn NetCtx) -> RequestId {
        let req = self.fresh_req();
        self.outstanding.insert(
            req,
            Outstanding {
                kind: MethodKind::Read,
                issued: ctx.now(),
            },
        );
        let msg = CoherenceMsg::ReadReq {
            req,
            client: self.client,
            inv,
            min_version: self.read_min_version(),
        };
        self.comm.send(ctx, self.read_node, &msg);
        req
    }

    /// Issues a write. Writes may be pipelined: PRAM's whole point is
    /// that a client can stream incremental updates.
    pub fn issue_write(&mut self, inv: InvocationMessage, ctx: &mut dyn NetCtx) -> RequestId {
        let req = self.fresh_req();
        let deps = self.write_deps();
        self.issued_writes += 1;
        let wid = WriteId::new(self.client, self.issued_writes);
        let write = LoggedWrite::from_client(wid, inv, deps.clone());
        self.history.lock().record_write(
            ctx.now(),
            self.client,
            self.write_store,
            write
                .page
                .clone()
                .unwrap_or_else(|| crate::WHOLE_DOC.to_string()),
            wid,
            deps,
        );
        self.sent_writes.push((req, write.clone()));
        self.outstanding.insert(
            req,
            Outstanding {
                kind: MethodKind::Write,
                issued: ctx.now(),
            },
        );
        let msg = CoherenceMsg::WriteReq {
            req,
            client: self.client,
            write,
        };
        self.comm.send(ctx, self.write_node, &msg);
        req
    }

    /// Handles a reply from a store.
    pub fn on_reply(
        &mut self,
        req: RequestId,
        outcome: CallOutcome,
        version: VersionVector,
        _sees: Option<WriteId>,
        full_state: Option<Bytes>,
        ctx: &mut dyn NetCtx,
    ) {
        let Some(out) = self.outstanding.remove(&req) else {
            return; // duplicate reply (e.g. after a resend)
        };
        self.observed.merge_max(&version);
        if out.kind == MethodKind::Read {
            self.read_set.merge_max(&version);
        }
        if let Some(state) = full_state {
            self.last_full_state = Some(state);
        }
        let ok = matches!(outcome, CallOutcome::Ok(_));
        self.metrics.lock().record_op(OpSample {
            client: self.client,
            kind: out.kind,
            issued: out.issued,
            completed: ctx.now(),
            ok,
        });
        let result = match outcome {
            CallOutcome::Ok(bytes) => Ok(bytes),
            CallOutcome::Err(msg) => Err(CallError::Semantics(msg)),
        };
        self.results.insert(req, result);
    }

    /// Resends writes the home store reports missing (§4.2: reliability
    /// as a side-effect of the coherence protocol).
    pub fn resend_from(&mut self, from_seq: u64, ctx: &mut dyn NetCtx) {
        let to_resend: Vec<(RequestId, LoggedWrite)> = self
            .sent_writes
            .iter()
            .filter(|(_, w)| w.wid.seq >= from_seq)
            .cloned()
            .collect();
        for (req, write) in to_resend {
            let msg = CoherenceMsg::WriteReq {
                req,
                client: self.client,
                write,
            };
            self.comm.send(ctx, self.write_node, &msg);
        }
    }

    /// Retransmits every write still awaiting acknowledgement. Returns
    /// how many were resent. The control object drives this from a
    /// periodic timer, giving datagram-like transports at-least-once
    /// write delivery; stores deduplicate by WiD.
    pub fn resend_unacked(&mut self, ctx: &mut dyn NetCtx) -> usize {
        let to_resend: Vec<(RequestId, LoggedWrite)> = self
            .sent_writes
            .iter()
            .filter(|(req, _)| self.outstanding.contains_key(req))
            .cloned()
            .collect();
        let count = to_resend.len();
        for (req, write) in to_resend {
            let msg = CoherenceMsg::WriteReq {
                req,
                client: self.client,
                write,
            };
            self.comm.send(ctx, self.write_node, &msg);
        }
        count
    }

    /// Takes the completed result of a request, if available.
    pub fn take_result(&mut self, req: RequestId) -> Option<Result<Bytes, CallError>> {
        self.results.remove(&req)
    }

    /// Number of operations still awaiting replies.
    pub fn outstanding_ops(&self) -> usize {
        self.outstanding.len()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("client", &self.client)
            .field("object", &self.object)
            .field("read_node", &self.read_node)
            .field("write_node", &self.write_node)
            .field("guards", &self.guards)
            .field("issued_writes", &self.issued_writes)
            .finish()
    }
}
