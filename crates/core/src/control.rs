//! The control sub-object.
//!
//! "The control object takes care of invocations from client processes,
//! and controls the interaction between the semantics object and the
//! replication object. Incoming invocation requests are also handled by
//! the control object" (§2). One [`ControlObject`] exists per distributed
//! object per address space; it hosts an optional store replica (spaces
//! that only run clients have none — their local object consists of the
//! proxy sessions and the communication object) and any number of client
//! sessions.

use std::collections::HashMap;

use bytes::Bytes;
use globe_coherence::ClientId;
use globe_naming::ObjectId;
use globe_net::{NetCtx, NodeId};

use crate::{
    CallError, CoherenceMsg, InvocationMessage, RequestId, Session, StoreReplica, TimerKind,
};

/// Interval for client-proxy retransmission of unacknowledged writes.
const SESSION_RETRY_PERIOD: std::time::Duration = std::time::Duration::from_millis(1000);

/// The per-object dispatcher within one address space.
pub struct ControlObject {
    object: ObjectId,
    store: Option<StoreReplica>,
    sessions: HashMap<ClientId, Session>,
    req_owner: HashMap<RequestId, ClientId>,
    session_retry_armed: bool,
    /// The strongest takeover claim this control object has applied to
    /// its sessions, as `(epoch, winning store id)`: a late or replayed
    /// announcement from an older election — or a same-epoch claim by a
    /// higher store id, the conflict the store layer resolves the same
    /// way — must not reroute sessions to a deposed sequencer.
    handoff_claim: Option<(u64, globe_coherence::StoreId)>,
}

impl ControlObject {
    /// A control object hosting a store replica.
    pub fn with_store(object: ObjectId, store: StoreReplica) -> Self {
        ControlObject {
            object,
            store: Some(store),
            sessions: HashMap::new(),
            req_owner: HashMap::new(),
            session_retry_armed: false,
            handoff_claim: None,
        }
    }

    /// A proxy-only control object (client address spaces).
    pub fn proxy_only(object: ObjectId) -> Self {
        ControlObject {
            object,
            store: None,
            sessions: HashMap::new(),
            req_owner: HashMap::new(),
            session_retry_armed: false,
            handoff_claim: None,
        }
    }

    /// The object this control object belongs to.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The hosted store replica, if any.
    pub fn store(&self) -> Option<&StoreReplica> {
        self.store.as_ref()
    }

    /// Mutable access to the hosted store replica.
    pub fn store_mut(&mut self) -> Option<&mut StoreReplica> {
        self.store.as_mut()
    }

    /// Installs a store replica (e.g. a cache created after binding).
    pub fn set_store(&mut self, store: StoreReplica) {
        self.store = Some(store);
    }

    /// Removes and returns the hosted store replica (graceful removal);
    /// local sessions survive and keep proxying to remote stores.
    pub fn take_store(&mut self) -> Option<StoreReplica> {
        self.store.take()
    }

    /// Registers a client session.
    pub fn add_session(&mut self, session: Session) {
        self.sessions.insert(session.client(), session);
    }

    /// Access to a client session.
    pub fn session(&self, client: ClientId) -> Option<&Session> {
        self.sessions.get(&client)
    }

    /// Mutable access to a client session.
    pub fn session_mut(&mut self, client: ClientId) -> Option<&mut Session> {
        self.sessions.get_mut(&client)
    }

    /// Reroutes every local session away from a failed home store (see
    /// [`Session::reroute_home`]): pending retransmissions and future
    /// invocations then target the elected successor.
    pub fn reroute_sessions(
        &mut self,
        old_home: NodeId,
        new_home: NodeId,
        new_store: globe_coherence::StoreId,
        reroute_reads: bool,
    ) {
        for session in self.sessions.values_mut() {
            session.reroute_home(old_home, new_home, new_store, reroute_reads);
        }
    }

    /// Arms whatever timers the hosted replica's policy needs.
    pub fn start(&mut self, ctx: &mut dyn NetCtx) {
        if let Some(store) = self.store.as_mut() {
            store.start(ctx);
        }
    }

    /// Issues a read on behalf of a local client.
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] if the client has no session here.
    pub fn client_read(
        &mut self,
        client: ClientId,
        inv: InvocationMessage,
        ctx: &mut dyn NetCtx,
    ) -> Result<RequestId, CallError> {
        let session = self.sessions.get_mut(&client).ok_or(CallError::NotBound)?;
        let req = session.issue_read(inv, ctx);
        self.req_owner.insert(req, client);
        Ok(req)
    }

    /// Issues a write on behalf of a local client.
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] if the client has no session here.
    pub fn client_write(
        &mut self,
        client: ClientId,
        inv: InvocationMessage,
        ctx: &mut dyn NetCtx,
    ) -> Result<RequestId, CallError> {
        let session = self.sessions.get_mut(&client).ok_or(CallError::NotBound)?;
        let req = session.issue_write(inv, ctx);
        self.req_owner.insert(req, client);
        if !self.session_retry_armed {
            ctx.set_timer(
                SESSION_RETRY_PERIOD,
                crate::space::timer_token(self.object, TimerKind::SessionRetry),
            );
            self.session_retry_armed = true;
        }
        Ok(req)
    }

    /// Takes a completed call result.
    pub fn take_result(
        &mut self,
        client: ClientId,
        req: RequestId,
    ) -> Option<Result<Bytes, CallError>> {
        let session = self.sessions.get_mut(&client)?;
        let result = session.take_result(req)?;
        self.req_owner.remove(&req);
        Some(result)
    }

    /// Routes one incoming coherence message.
    pub fn handle_message(&mut self, from: NodeId, msg: CoherenceMsg, ctx: &mut dyn NetCtx) {
        match msg {
            CoherenceMsg::ReadReq {
                req,
                client,
                inv,
                min_version,
            } => {
                if let Some(store) = self.store.as_mut() {
                    store.serve_read(from, req, client, inv, min_version, ctx);
                }
            }
            CoherenceMsg::WriteReq { req, client, write } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_write_req(from, req, client, write, ctx);
                }
            }
            CoherenceMsg::Reply {
                req,
                outcome,
                version,
                sees,
                full_state,
            } => {
                if let Some(&client) = self.req_owner.get(&req) {
                    if let Some(session) = self.sessions.get_mut(&client) {
                        session.on_reply(req, outcome, version, sees, full_state, ctx);
                    }
                    // A leaseless replica may have forwarded this very
                    // request for a co-located client; the reply was
                    // consumed here, so drop the forwarding record.
                    if let Some(store) = self.store.as_mut() {
                        store.forget_forwarded(req);
                    }
                } else if let Some(store) = self.store.as_mut() {
                    // A reply for a write this store forwarded home.
                    let relayed = store.relay_reply(
                        &CoherenceMsg::Reply {
                            req,
                            outcome,
                            version,
                            sees,
                            full_state,
                        },
                        ctx,
                    );
                    let _ = relayed;
                }
            }
            CoherenceMsg::Update { write } => {
                if let Some(store) = self.store.as_mut() {
                    store.accept_write(None, write, ctx);
                }
            }
            CoherenceMsg::UpdateBatch { writes, version } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_update_batch(writes, version, ctx);
                }
            }
            CoherenceMsg::FullState {
                version,
                state,
                writers,
                order_high,
            } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_full_state(version, state, writers, order_high, ctx);
                }
            }
            CoherenceMsg::Invalidate { pages, version } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_invalidate(pages, version, ctx);
                }
            }
            CoherenceMsg::Notify { version } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_notify(version, ctx);
                }
            }
            CoherenceMsg::DemandUpdate { since, order_since } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_demand_update(from, since, order_since, ctx);
                }
            }
            CoherenceMsg::DemandResend { client, from_seq } => {
                if let Some(session) = self.sessions.get_mut(&client) {
                    session.resend_from(from_seq, ctx);
                }
            }
            CoherenceMsg::PolicyUpdate { policy } => {
                if let Some(store) = self.store.as_mut() {
                    store.set_policy(policy, ctx);
                }
            }
            CoherenceMsg::JoinRequest {
                node,
                store,
                class,
                version,
            } => {
                if let Some(replica) = self.store.as_mut() {
                    replica.handle_join(node, store, class, version, ctx);
                }
            }
            CoherenceMsg::StateDelta {
                chunk,
                chunks,
                writes,
                version,
                order_high,
                peers,
            } => {
                if let Some(store) = self.store.as_mut() {
                    store
                        .handle_state_delta(chunk, chunks, writes, version, order_high, peers, ctx);
                }
            }
            CoherenceMsg::CheckpointAnnounce { version } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_checkpoint_announce(from, version, ctx);
                }
            }
            CoherenceMsg::CheckpointAck { node, version } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_checkpoint_ack(node, version, ctx);
                }
            }
            CoherenceMsg::CompactBelow { version } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_compact_below(from, version, ctx);
                }
            }
            CoherenceMsg::StateTransfer {
                version,
                state,
                writers,
                order_high,
                log,
                peers,
            } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_state_transfer(
                        version, state, writers, order_high, log, peers, ctx,
                    );
                }
            }
            CoherenceMsg::Leave { node } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_leave(node, ctx);
                }
            }
            CoherenceMsg::Membership { peers } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_membership(from, peers, ctx);
                }
            }
            CoherenceMsg::WriteBatch {
                first_order,
                writes,
                version,
            } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_write_batch(first_order, writes, version, ctx);
                }
            }
            CoherenceMsg::LeaseRequest { node, store } => {
                if let Some(replica) = self.store.as_mut() {
                    replica.handle_lease_request(node, store, ctx);
                }
            }
            CoherenceMsg::LeaseGrant {
                epoch,
                version,
                duration,
            } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_lease_grant(from, epoch, version, duration, ctx);
                }
            }
            CoherenceMsg::LeaseRevoke { epoch } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_lease_revoke(from, epoch, ctx);
                }
            }
            // Node-scoped heartbeats are handled by the address space's
            // node-level detector; one that somehow arrives under an
            // object envelope is dropped like any other stray frame.
            CoherenceMsg::NodePing { .. } | CoherenceMsg::NodePong { .. } => {}
            CoherenceMsg::ElectRequest { peers, epoch } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_elect(peers, epoch, ctx);
                }
            }
            CoherenceMsg::SequencerHandoff {
                old_home,
                new_home,
                new_home_store,
                epoch,
                version,
                state,
                writers,
                order_high,
                log,
                peers,
            } => {
                if let Some(store) = self.store.as_mut() {
                    store.handle_sequencer_handoff(
                        old_home,
                        new_home,
                        new_home_store,
                        epoch,
                        version,
                        state,
                        writers,
                        order_high,
                        log,
                        peers,
                        ctx,
                    );
                }
                // Sessions reroute on the same (unsolicited) takeover
                // announcement, whether or not a store lives here: the
                // new sequencer — or a deposed ex-home relaying on its
                // clients' behalf — names the node writes must leave.
                // The claim guard rejects stale announcements (older
                // epoch, or a same-epoch claim by a higher store id —
                // the conflict the store layer resolves identically),
                // so a detector flap cannot bounce sessions back to a
                // deposed sequencer.
                let claim = (epoch, new_home_store);
                let wins = match self.handoff_claim {
                    None => true,
                    Some((e, s)) => epoch > e || (epoch == e && new_home_store <= s),
                };
                if wins {
                    self.handoff_claim = Some(claim);
                    self.reroute_sessions(old_home, new_home, new_home_store, false);
                }
            }
        }
    }

    /// Adds this object's failure-detection interest (see
    /// [`StoreReplica::heartbeat_targets`]) to the space-wide set.
    pub fn heartbeat_targets(&self, out: &mut std::collections::BTreeSet<globe_net::NodeId>) {
        if let Some(store) = self.store.as_ref() {
            store.heartbeat_targets(out);
        }
    }

    /// Fan-in from the node-level detector: `node` went suspect.
    pub fn on_node_suspect(&mut self, node: NodeId, ctx: &mut dyn NetCtx) {
        if let Some(store) = self.store.as_mut() {
            store.on_node_suspect(node, ctx);
        }
    }

    /// Fan-in from the node-level detector: `node` answered again.
    pub fn on_node_recovered(&mut self, node: NodeId, ctx: &mut dyn NetCtx) {
        if let Some(store) = self.store.as_mut() {
            store.on_node_recovered(node, ctx);
        }
    }

    /// Fan-in from the node-level detector: `node` is confirmed down;
    /// with unattended fail-over enabled, a hosted replica whose home
    /// died may self-elect.
    pub fn on_node_down(
        &mut self,
        node: NodeId,
        alive: &dyn Fn(NodeId) -> bool,
        ctx: &mut dyn NetCtx,
    ) {
        if let Some(store) = self.store.as_mut() {
            store.on_node_down(node, alive, ctx);
        }
    }

    /// Routes a timer to the hosted replica or, for session-retry
    /// timers, to the local client sessions.
    pub fn handle_timer(&mut self, kind: TimerKind, ctx: &mut dyn NetCtx) {
        if kind == TimerKind::SessionRetry {
            self.session_retry_armed = false;
            let mut unacked = 0;
            for session in self.sessions.values_mut() {
                unacked += session.resend_unacked(ctx);
            }
            if unacked > 0 {
                ctx.set_timer(
                    SESSION_RETRY_PERIOD,
                    crate::space::timer_token(self.object, TimerKind::SessionRetry),
                );
                self.session_retry_armed = true;
            }
            return;
        }
        if let Some(store) = self.store.as_mut() {
            store.handle_timer(kind, ctx);
        }
    }
}

impl std::fmt::Debug for ControlObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlObject")
            .field("object", &self.object)
            .field("has_store", &self.store.is_some())
            .field("sessions", &self.sessions.len())
            .finish()
    }
}
