//! Distributed shared Web objects with per-object pluggable replication
//! and coherence — a Rust reproduction of the Globe Web-object framework
//! (Kermarrec, Kuz, van Steen, Tanenbaum, ICDCS 1998).
//!
//! Each Web document is a *distributed shared object* that fully
//! encapsulates its own state, methods, and — crucially — its policies
//! for caching, replication, and coherence. A local object in each bound
//! address space is composed of four sub-objects (§2 of the paper):
//!
//! * **semantics** ([`Semantics`]) — the document state and methods,
//!   written by the developer;
//! * **communication** ([`CommObject`]) — point-to-point and multicast
//!   messaging, system-provided;
//! * **replication** ([`replication::ReplicationObject`]) — the coherence
//!   protocol, chosen per object from [`globe_coherence::ObjectModel`]
//!   and parameterized by the Table-1 [`ReplicationPolicy`];
//! * **control** ([`ControlObject`]) — glue dispatching invocations
//!   between the other three.
//!
//! Stores come in the paper's three classes (permanent, object-initiated,
//! client-initiated); clients bind through the naming and location
//! services and may impose *client-based* coherence (Bayou session
//! guarantees) on top of the object's model. All of this is reachable
//! through one runtime-agnostic surface — the [`GlobeRuntime`] trait,
//! the [`ObjectSpec`] builder, and the [`ObjectHandle`] call handle —
//! implemented by three backends: the deterministic simulator
//! ([`GlobeSim`]), the real-socket runtime ([`GlobeTcp`]), and the
//! in-process sharded runtime ([`GlobeShard`]). The same scenario code
//! runs verbatim on any of them — the paper's location-transparency
//! claim made concrete — and the [`matrix`] harness asserts it, by
//! replaying one scenario across all backends and comparing what the
//! clients observed.
//!
//! # Examples
//!
//! The paper's conference-page scenario in miniature:
//!
//! ```
//! use globe_coherence::{ClientModel, StoreClass};
//! use globe_core::{registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec,
//!                  RegisterDoc, ReplicationPolicy};
//! use globe_net::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = GlobeSim::new(Topology::lan(), 7);
//! let server = sim.add_node();
//! let cache = sim.add_node();
//! let object = ObjectSpec::new("/conf/icdcs98")
//!     .policy(ReplicationPolicy::conference_page())
//!     .semantics(RegisterDoc::new)
//!     .store(server, StoreClass::Permanent)
//!     .store(cache, StoreClass::ClientInitiated)
//!     .create(&mut sim)?;
//! // The Web master reads through the cache but demands Read-Your-Writes.
//! let master = sim.bind(object, cache, BindOptions::new()
//!     .read_node(cache)
//!     .guard(ClientModel::ReadYourWrites))?;
//! sim.handle(master).write(registers::put("program.html", b"TBA"))?;
//! let page = sim.handle(master).read(registers::get("program.html"))?;
//! assert_eq!(&page[..], b"TBA");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod adaptive;
mod api;
mod comm;
mod control;
mod error;
mod ids;
mod invocation;
pub mod lifecycle;
pub mod matrix;
mod messages;
mod metrics;
mod plan;
mod policy;
pub mod replication;
mod runtime;
mod semantics;
mod session;
mod shard_runtime;
mod space;
pub mod storage;
mod store_engine;
mod tcp_runtime;
pub mod trace;

pub use adaptive::{AdaptiveController, Regime};
pub use api::{
    EnginePort, GlobeRuntime, ObjectHandle, ObjectSpec, RuntimeConfig, SemanticsFactory,
};
pub use comm::CommObject;
pub use control::ControlObject;
pub use error::{CallError, PolicyError, SemanticsError};
pub use ids::{MethodId, RequestId};
pub use invocation::{InvocationMessage, MethodKind};
pub use lifecycle::{LifecycleEvent, LifecycleEventKind, MemberInfo, MembershipView, StoreHealth};
pub use messages::{CallOutcome, CoherenceMsg, LoggedWrite, NetMsg, WireMember};
pub use metrics::{
    shared_history, shared_metrics, KindCount, MetricsStore, OpSample, SharedHistory,
    SharedMetrics, TransportFaults,
};
pub use policy::{
    AccessTransfer, CoherenceTransfer, OutdateReaction, PolicyBuilder, Propagation,
    ReplicationPolicy, StoreScope, TransferInitiative, TransferInstant, WriteSet,
};
pub use runtime::{BindOptions, ClientHandle, GlobeSim, ReadChoice, RuntimeError, WriteChoice};
pub use semantics::{registers, RegisterDoc, Semantics};
pub use session::{Session, SessionConfig};
pub use shard_runtime::{GlobeShard, DEFAULT_SHARDS};
pub use space::AddressSpace;
pub use storage::{
    CheckpointImage, DurableBackend, MemoryBackend, StorageSpec, StoreBackend, TempDir,
};
pub use store_engine::{
    PeerStore, StoreConfig, StoreReplica, StoreTuning, TimerKind, DEFAULT_BATCH_WINDOW,
    DEFAULT_LEASE_DURATION, WHOLE_DOC,
};
pub use tcp_runtime::GlobeTcp;
pub use trace::{
    FlushReason, ProtocolCounters, ProtocolEvent, ReadSource, TraceChecker, TraceEvent,
    TraceSnapshot,
};
