//! Operation-level metrics shared across the runtime.

use std::collections::BTreeMap;
use std::sync::Arc;

use globe_coherence::{ClientId, History};
use globe_net::SimTime;
use parking_lot::Mutex;

use crate::lifecycle::{LifecycleEvent, LifecycleEventKind};
use crate::trace::{ProtocolCounters, TraceEvent, TraceLog, TraceSnapshot};
use crate::MethodKind;

/// One completed client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSample {
    /// The issuing client.
    pub client: ClientId,
    /// Read or write.
    pub kind: MethodKind,
    /// When the client issued the operation.
    pub issued: SimTime,
    /// When the reply arrived back at the client.
    pub completed: SimTime,
    /// Whether the call succeeded at the semantics level.
    pub ok: bool,
}

impl OpSample {
    /// End-to-end latency of the operation.
    pub fn latency(&self) -> std::time::Duration {
        self.completed.saturating_since(self.issued)
    }
}

/// Aggregated per-message-kind traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCount {
    /// Messages sent.
    pub count: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

/// Cumulative transport-fault counters: what a deployment observes when
/// the network misbehaves instead of a crash (malformed frames dropped
/// on the receive path, failed sends, peer disconnects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportFaults {
    /// Received frames that failed to decode and were dropped.
    pub malformed_frames: u64,
    /// Sends that failed at the transport (connect refused, broken
    /// pipe); zero on the simulator, mirrored from the TCP mesh.
    pub send_errors: u64,
    /// Established connections that ended: the peer went away, or sent
    /// a garbled/oversized frame after the hello.
    pub disconnects: u64,
    /// Inbound connections the transport rejected before entering
    /// service (bad hello, reader spawn failure); mirrored from the TCP
    /// mesh, zero elsewhere.
    pub rejected_frames: u64,
    /// Service threads the OS refused to spawn (node event loops, shard
    /// workers, the timer thread): the runtime degrades observably
    /// instead of panicking.
    pub spawn_failures: u64,
}

/// Mutable metrics store shared by every local object in a runtime.
#[derive(Debug, Default)]
pub struct MetricsStore {
    /// Completed operations. In completion order while below
    /// `op_capacity` (or when uncapped); once the cap is reached, new
    /// samples overwrite the oldest ring-style, so position no longer
    /// implies order — aggregate consumers are unaffected.
    pub ops: Vec<OpSample>,
    /// Coherence traffic by message kind.
    pub traffic: BTreeMap<&'static str, KindCount>,
    /// Replica lifecycle transitions (joins, leaves, detector verdicts),
    /// in observation order.
    pub lifecycle: Vec<LifecycleEvent>,
    /// Transport faults survived (and counted) instead of panicking.
    pub transport: TransportFaults,
    /// Always-on protocol counters (flush reasons, batch occupancy,
    /// lease read mix).
    pub protocol: ProtocolCounters,
    /// The flight-recorder journal (off unless given capacity).
    pub trace: TraceLog,
    /// Cap on retained [`OpSample`]s; `0` (the default) keeps every
    /// sample, preserving historical behavior for tests and short runs.
    op_capacity: usize,
    /// Ring write cursor, meaningful only once `ops` is at capacity.
    op_cursor: usize,
    /// Samples overwritten by the ring since the start of the run.
    pub ops_dropped: u64,
}

impl MetricsStore {
    /// Records a completed operation. Uncapped stores grow without
    /// bound (historical behavior); a capped store overwrites the
    /// oldest sample once full, so long open-loop runs stop measuring
    /// allocator churn.
    pub fn record_op(&mut self, sample: OpSample) {
        if self.op_capacity == 0 || self.ops.len() < self.op_capacity {
            self.ops.push(sample);
            return;
        }
        self.ops[self.op_cursor] = sample;
        self.op_cursor = (self.op_cursor + 1) % self.op_capacity;
        self.ops_dropped += 1;
    }

    /// Sets the retained-sample cap (`0` = unbounded). Shrinking an
    /// over-full store truncates to the newest samples.
    pub fn set_op_capacity(&mut self, capacity: usize) {
        self.op_capacity = capacity;
        if capacity > 0 && self.ops.len() > capacity {
            let excess = self.ops.len() - capacity;
            self.ops.drain(..excess);
            self.ops_dropped += excess as u64;
            self.op_cursor = 0;
        }
    }

    /// The retained-sample cap (`0` = unbounded).
    pub fn op_capacity(&self) -> usize {
        self.op_capacity
    }

    /// Sets the flight recorder's per-node ring capacity (`0` = off).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// Records one flight-recorder event (no-op while the trace is off).
    pub fn record_trace(&mut self, event: TraceEvent) {
        self.trace.record(event);
    }

    /// Snapshots the flight recorder: the merged journal plus a copy of
    /// the always-on protocol counters.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            capacity: self.trace.capacity(),
            dropped: self.trace.dropped(),
            events: self.trace.snapshot(),
            counters: self.protocol,
        }
    }

    /// Counts one received frame that failed to decode and was dropped.
    pub fn record_malformed_frame(&mut self) {
        self.transport.malformed_frames += 1;
    }

    /// Mirrors the transport's cumulative send-error, disconnect,
    /// rejected-frame, and spawn-failure counters (the TCP mesh counts
    /// them with atomics on its own threads; the runtime syncs them
    /// into the store on read).
    pub fn sync_transport(
        &mut self,
        send_errors: u64,
        disconnects: u64,
        rejected_frames: u64,
        spawn_failures: u64,
    ) {
        self.transport.send_errors = send_errors;
        self.transport.disconnects = disconnects;
        self.transport.rejected_frames = rejected_frames;
        self.transport.spawn_failures = spawn_failures;
    }

    /// Counts one service thread the OS refused to spawn (used by
    /// runtimes that degrade in place rather than mirror a transport's
    /// counters).
    pub fn record_spawn_failure(&mut self) {
        self.transport.spawn_failures += 1;
    }

    /// Records a replica lifecycle transition.
    pub fn record_lifecycle(&mut self, event: LifecycleEvent) {
        self.lifecycle.push(event);
    }

    /// Lifecycle events of one kind, in observation order.
    pub fn lifecycle_events(
        &self,
        kind: LifecycleEventKind,
    ) -> impl Iterator<Item = &LifecycleEvent> + '_ {
        self.lifecycle.iter().filter(move |e| e.kind == kind)
    }

    /// Accounts one protocol message of `kind` and `bytes` payload.
    pub fn record_msg(&mut self, kind: &'static str, bytes: usize) {
        let entry = self.traffic.entry(kind).or_default();
        entry.count += 1;
        entry.bytes += bytes as u64;
    }

    /// Total messages across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.traffic.values().map(|k| k.count).sum()
    }

    /// Total bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.traffic.values().map(|k| k.bytes).sum()
    }

    /// Mean latency of completed operations of `kind`, if any completed.
    pub fn mean_latency(&self, kind: MethodKind) -> Option<std::time::Duration> {
        let samples: Vec<_> = self.ops.iter().filter(|s| s.kind == kind).collect();
        if samples.is_empty() {
            return None;
        }
        let total: std::time::Duration = samples.iter().map(|s| s.latency()).sum();
        Some(total / samples.len() as u32)
    }
}

/// Shared handle to the metrics store.
pub type SharedMetrics = Arc<Mutex<MetricsStore>>;

/// Shared handle to the recorded execution history.
pub type SharedHistory = Arc<Mutex<History>>;

/// Creates an empty shared metrics store.
pub fn shared_metrics() -> SharedMetrics {
    Arc::new(Mutex::new(MetricsStore::default()))
}

/// Creates an empty shared history.
pub fn shared_history() -> SharedHistory {
    Arc::new(Mutex::new(History::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_latency_and_means() {
        let mut m = MetricsStore::default();
        m.record_op(OpSample {
            client: ClientId::new(1),
            kind: MethodKind::Read,
            issued: SimTime::from_millis(0),
            completed: SimTime::from_millis(10),
            ok: true,
        });
        m.record_op(OpSample {
            client: ClientId::new(1),
            kind: MethodKind::Read,
            issued: SimTime::from_millis(10),
            completed: SimTime::from_millis(40),
            ok: true,
        });
        assert_eq!(
            m.mean_latency(MethodKind::Read),
            Some(std::time::Duration::from_millis(20))
        );
        assert_eq!(m.mean_latency(MethodKind::Write), None);
    }

    #[test]
    fn traffic_accumulates() {
        let mut m = MetricsStore::default();
        m.record_msg("Update", 100);
        m.record_msg("Update", 50);
        m.record_msg("Notify", 10);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_bytes(), 160);
        assert_eq!(m.traffic["Update"].count, 2);
    }

    #[test]
    fn op_ring_caps_growth_and_counts_overwrites() {
        let sample = |seq: u64| OpSample {
            client: ClientId::new(1),
            kind: MethodKind::Write,
            issued: SimTime::from_millis(seq),
            completed: SimTime::from_millis(seq + 1),
            ok: true,
        };
        let mut m = MetricsStore::default();
        m.set_op_capacity(3);
        for seq in 0..7 {
            m.record_op(sample(seq));
        }
        assert_eq!(m.ops.len(), 3);
        assert_eq!(m.ops_dropped, 4);
        // The three newest samples survive (in ring positions).
        let mut issued: Vec<u64> = m.ops.iter().map(|s| s.issued.as_millis()).collect();
        issued.sort_unstable();
        assert_eq!(issued, vec![4, 5, 6]);

        // Uncapped keeps everything — the historical default.
        let mut unbounded = MetricsStore::default();
        for seq in 0..7 {
            unbounded.record_op(sample(seq));
        }
        assert_eq!(unbounded.ops.len(), 7);
        assert_eq!(unbounded.ops_dropped, 0);
    }
}
