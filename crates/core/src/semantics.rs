//! The semantics sub-object.
//!
//! "The semantics object encapsulates the files that comprise the Web
//! document. The developer is responsible only for the construction of
//! those files, and encapsulating them into a semantics object with the
//! appropriate interfaces. All other parts can either be obtained from
//! libraries, or are generated" (§2). Implement [`Semantics`] and the
//! framework supplies replication, communication, and control.

use bytes::Bytes;
use globe_coherence::PageKey;

use crate::{InvocationMessage, MethodId, MethodKind, SemanticsError};

/// State and operations of a distributed shared object.
///
/// The framework calls [`Semantics::dispatch`] with marshalled invocation
/// messages; everything else (snapshots, method classification, page
/// attribution) exists so replication objects can move state around
/// without understanding it.
pub trait Semantics: Send {
    /// Executes one invocation against local state, returning the
    /// marshalled result.
    ///
    /// # Errors
    ///
    /// Returns a [`SemanticsError`] for unknown methods, undecodable
    /// arguments, or domain failures. Write dispatch must be
    /// deterministic: replicas apply the same invocations in the same
    /// order and must reach the same state.
    fn dispatch(&mut self, inv: &InvocationMessage) -> Result<Bytes, SemanticsError>;

    /// Classifies a method as read or write.
    fn method_kind(&self, method: MethodId) -> MethodKind;

    /// The page (part) of the document an invocation touches, if it is
    /// page-granular. Whole-document operations return `None`.
    ///
    /// Partial access and coherence transfers (§3.3, Table 1) operate at
    /// this granularity.
    fn part_of(&self, inv: &InvocationMessage) -> Option<PageKey>;

    /// Serializes the complete state (for full coherence transfers).
    fn snapshot(&self) -> Bytes;

    /// Replaces the complete state from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SemanticsError::BadState`] if the snapshot is malformed.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), SemanticsError>;

    /// A digest of the current state, used by convergence checkers.
    fn digest(&self) -> u64;
}

/// A minimal key→value document semantics used by the framework's own
/// tests and benchmarks: each page is a named register.
///
/// Methods: `0 = get(page)`, `1 = put(page, value)`, `2 = list()`.
///
/// # Examples
///
/// ```
/// use globe_core::{registers, InvocationMessage, RegisterDoc, Semantics};
///
/// let mut doc = RegisterDoc::new();
/// doc.dispatch(&registers::put("greeting", b"hello")).unwrap();
/// let got = doc.dispatch(&registers::get("greeting")).unwrap();
/// assert_eq!(&got[..], b"hello");
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegisterDoc {
    pages: std::collections::BTreeMap<String, Bytes>,
}

impl RegisterDoc {
    /// An empty document.
    pub fn new() -> Self {
        RegisterDoc::default()
    }

    /// Direct access for tests: the value of a page.
    pub fn page(&self, name: &str) -> Option<&Bytes> {
        self.pages.get(name)
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the document has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// Invocation constructors for [`RegisterDoc`].
pub mod registers {
    use bytes::Bytes;
    use globe_wire::{to_bytes, WireEncode};

    use crate::{InvocationMessage, MethodId};

    /// Method id of `get`.
    pub const GET: MethodId = MethodId::new(0);
    /// Method id of `put`.
    pub const PUT: MethodId = MethodId::new(1);
    /// Method id of `list`.
    pub const LIST: MethodId = MethodId::new(2);

    /// Builds a `get(page)` invocation.
    pub fn get(page: &str) -> InvocationMessage {
        InvocationMessage::new(GET, to_bytes(page))
    }

    /// Builds a `put(page, value)` invocation.
    pub fn put(page: &str, value: &[u8]) -> InvocationMessage {
        let pair = (page.to_string(), Bytes::copy_from_slice(value));
        let mut buf = Vec::with_capacity(pair.encoded_len());
        pair.encode(&mut buf);
        InvocationMessage::new(PUT, Bytes::from(buf))
    }

    /// Builds a `list()` invocation.
    pub fn list() -> InvocationMessage {
        InvocationMessage::new(LIST, Bytes::new())
    }
}

impl Semantics for RegisterDoc {
    fn dispatch(&mut self, inv: &InvocationMessage) -> Result<Bytes, SemanticsError> {
        match inv.method {
            registers::GET => {
                let page: String = globe_wire::from_bytes(&inv.args)
                    .map_err(|e| SemanticsError::BadArguments(e.to_string()))?;
                Ok(self.pages.get(&page).cloned().unwrap_or_default())
            }
            registers::PUT => {
                let (page, value): (String, Bytes) = globe_wire::from_bytes(&inv.args)
                    .map_err(|e| SemanticsError::BadArguments(e.to_string()))?;
                self.pages.insert(page, value);
                Ok(Bytes::new())
            }
            registers::LIST => {
                let names: Vec<String> = self.pages.keys().cloned().collect();
                Ok(globe_wire::to_bytes(&names))
            }
            other => Err(SemanticsError::UnknownMethod(other)),
        }
    }

    fn method_kind(&self, method: MethodId) -> MethodKind {
        match method {
            registers::PUT => MethodKind::Write,
            _ => MethodKind::Read,
        }
    }

    fn part_of(&self, inv: &InvocationMessage) -> Option<PageKey> {
        match inv.method {
            registers::GET => globe_wire::from_bytes::<String>(&inv.args).ok(),
            registers::PUT => globe_wire::from_bytes::<(String, Bytes)>(&inv.args)
                .ok()
                .map(|(page, _)| page),
            _ => None,
        }
    }

    fn snapshot(&self) -> Bytes {
        globe_wire::to_bytes(&self.pages)
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), SemanticsError> {
        self.pages = globe_wire::from_bytes(snapshot)
            .map_err(|e| SemanticsError::BadState(e.to_string()))?;
        Ok(())
    }

    fn digest(&self) -> u64 {
        globe_coherence::fnv1a(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_list_roundtrip() {
        let mut doc = RegisterDoc::new();
        assert!(doc.is_empty());
        doc.dispatch(&registers::put("a", b"1")).unwrap();
        doc.dispatch(&registers::put("b", b"2")).unwrap();
        assert_eq!(&doc.dispatch(&registers::get("a")).unwrap()[..], b"1");
        let listed: Vec<String> =
            globe_wire::from_bytes(&doc.dispatch(&registers::list()).unwrap()).unwrap();
        assert_eq!(listed, vec!["a", "b"]);
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn missing_page_reads_empty() {
        let mut doc = RegisterDoc::new();
        assert!(doc.dispatch(&registers::get("nope")).unwrap().is_empty());
    }

    #[test]
    fn method_kinds_and_parts() {
        let doc = RegisterDoc::new();
        assert_eq!(doc.method_kind(registers::PUT), MethodKind::Write);
        assert_eq!(doc.method_kind(registers::GET), MethodKind::Read);
        assert_eq!(doc.method_kind(registers::LIST), MethodKind::Read);
        assert_eq!(doc.part_of(&registers::get("x")).as_deref(), Some("x"));
        assert_eq!(
            doc.part_of(&registers::put("y", b"v")).as_deref(),
            Some("y")
        );
        assert_eq!(doc.part_of(&registers::list()), None);
    }

    #[test]
    fn snapshot_restore_digest() {
        let mut doc = RegisterDoc::new();
        doc.dispatch(&registers::put("a", b"1")).unwrap();
        let snap = doc.snapshot();
        let d1 = doc.digest();
        let mut other = RegisterDoc::new();
        other.restore(&snap).unwrap();
        assert_eq!(other.digest(), d1);
        assert_eq!(other.page("a").map(|b| &b[..]), Some(&b"1"[..]));
        assert!(other.restore(b"\xff\xff").is_err());
    }

    #[test]
    fn unknown_method_is_rejected() {
        let mut doc = RegisterDoc::new();
        let bogus = InvocationMessage::new(MethodId::new(99), Bytes::new());
        assert_eq!(
            doc.dispatch(&bogus),
            Err(SemanticsError::UnknownMethod(MethodId::new(99)))
        );
    }
}
