//! The scenario matrix: one scenario body, every backend, identical
//! logical outcomes.
//!
//! The paper's location-transparency claim is only honest if scenario
//! code really is oblivious to the distribution mechanism underneath it.
//! This module turns that claim into a harness: implement [`Scenario`]
//! once against [`GlobeRuntime`], record what the clients logically
//! observe into an [`Observations`] log, and [`run_matrix`] replays the
//! scenario verbatim on the deterministic simulator ([`crate::GlobeSim`]),
//! real sockets ([`crate::GlobeTcp`]), and the in-process sharded
//! backend ([`crate::GlobeShard`]), failing loudly if any backend's
//! observations diverge.
//!
//! # Examples
//!
//! ```no_run
//! use globe_core::matrix::{self, Backend, Observations, Scenario};
//! use globe_core::{registers, BindOptions, GlobeRuntime, ObjectSpec, RuntimeConfig};
//! use globe_coherence::StoreClass;
//!
//! struct HomePage;
//!
//! impl Scenario for HomePage {
//!     fn name(&self) -> &'static str {
//!         "home-page"
//!     }
//!
//!     fn run<R: GlobeRuntime>(
//!         &self,
//!         rt: &mut R,
//!     ) -> Result<Observations, Box<dyn std::error::Error>> {
//!         let server = rt.add_node()?;
//!         let browser = rt.add_node()?;
//!         let object = ObjectSpec::new("/home/alice")
//!             .store(server, StoreClass::Permanent)
//!             .create(rt)?;
//!         let alice = rt.bind(object, browser, BindOptions::new())?;
//!         rt.start(&[browser]);
//!         rt.handle(alice).write(registers::put("index.html", b"hi"))?;
//!         let mut obs = Observations::new();
//!         obs.record("read-back", rt.handle(alice).read(registers::get("index.html"))?);
//!         rt.shutdown();
//!         Ok(obs)
//!     }
//! }
//!
//! let outcomes = matrix::run_matrix(&HomePage, &Backend::ALL, RuntimeConfig::new().seed(42))
//!     .expect("identical outcomes on sim, tcp, and shard");
//! assert_eq!(outcomes.len(), 3);
//! ```

use std::fmt;

use globe_net::Topology;

use crate::{GlobeRuntime, GlobeShard, GlobeSim, GlobeTcp, RuntimeConfig};

/// The runtimes a scenario can be replayed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// [`crate::GlobeSim`]: deterministic discrete-event simulation.
    Sim,
    /// [`crate::GlobeTcp`]: real TCP sockets on loopback.
    Tcp,
    /// [`crate::GlobeShard`]: in-process sharded worker threads.
    Shard,
}

impl Backend {
    /// Every backend, in the order results are reported.
    pub const ALL: [Backend; 3] = [Backend::Sim, Backend::Tcp, Backend::Shard];

    /// A short stable name for reports and assertions.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Tcp => "tcp",
            Backend::Shard => "shard",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The ordered log of what a scenario's clients logically observed:
/// labeled byte values, equal across backends iff the scenario behaved
/// identically everywhere.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Observations {
    items: Vec<(String, Vec<u8>)>,
}

impl Observations {
    /// An empty log.
    pub fn new() -> Self {
        Observations::default()
    }

    /// Appends one labeled observation.
    pub fn record(&mut self, label: impl Into<String>, value: impl AsRef<[u8]>) {
        self.items.push((label.into(), value.as_ref().to_vec()));
    }

    /// The observations in recording order.
    pub fn items(&self) -> &[(String, Vec<u8>)] {
        &self.items
    }
}

impl fmt::Display for Observations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, value) in &self.items {
            writeln!(f, "  {label} = {:?}", String::from_utf8_lossy(value))?;
        }
        Ok(())
    }
}

/// One scenario written once against the [`GlobeRuntime`] trait.
///
/// The body must go through the trait for every create/bind/invoke call
/// and report client-visible results via [`Observations`]; internal
/// assertions (coherence checks, convergence) are welcome too.
pub trait Scenario {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// Runs the scenario body on one runtime.
    ///
    /// # Errors
    ///
    /// Any error fails the whole matrix for that backend.
    fn run<R: GlobeRuntime>(&self, rt: &mut R) -> Result<Observations, Box<dyn std::error::Error>>;
}

/// A scenario's outcome on one backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixOutcome {
    /// The backend the scenario ran on.
    pub backend: Backend,
    /// What its clients observed there.
    pub observations: Observations,
}

/// Why a matrix run failed.
#[derive(Debug)]
pub enum MatrixError {
    /// The scenario body itself failed on one backend.
    ScenarioFailed {
        /// The failing backend.
        backend: Backend,
        /// The scenario's name.
        scenario: String,
        /// The underlying error, stringified.
        error: String,
    },
    /// Two backends disagreed on the logical outcome.
    Diverged {
        /// The scenario's name.
        scenario: String,
        /// The reference backend (first in the run order).
        reference: Backend,
        /// The disagreeing backend.
        divergent: Backend,
        /// The reference backend's observations.
        expected: Observations,
        /// The disagreeing backend's observations.
        actual: Observations,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ScenarioFailed {
                backend,
                scenario,
                error,
            } => write!(f, "scenario {scenario} failed on {backend}: {error}"),
            MatrixError::Diverged {
                scenario,
                reference,
                divergent,
                expected,
                actual,
            } => write!(
                f,
                "scenario {scenario} diverged: {divergent} disagrees with {reference}\n\
                 {reference} observed:\n{expected}{divergent} observed:\n{actual}"
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

fn run_on(
    scenario: &impl Scenario,
    backend: Backend,
    config: RuntimeConfig,
) -> Result<Observations, MatrixError> {
    let result = match backend {
        Backend::Sim => scenario.run(&mut GlobeSim::with_config(Topology::lan(), config)),
        Backend::Tcp => scenario.run(&mut GlobeTcp::with_config(config)),
        Backend::Shard => scenario.run(&mut GlobeShard::with_config(config)),
    };
    result.map_err(|e| MatrixError::ScenarioFailed {
        backend,
        scenario: scenario.name().to_string(),
        error: e.to_string(),
    })
}

/// Runs `scenario` on every backend in `backends` with the same
/// configuration and checks that all logical outcomes agree with the
/// first backend's.
///
/// # Errors
///
/// Returns [`MatrixError::ScenarioFailed`] if any run errors, or
/// [`MatrixError::Diverged`] if the observations differ.
pub fn run_matrix(
    scenario: &impl Scenario,
    backends: &[Backend],
    config: RuntimeConfig,
) -> Result<Vec<MatrixOutcome>, MatrixError> {
    run_matrix_with(scenario, backends, |_| config.clone())
}

/// [`run_matrix`] with a per-backend configuration factory. Needed when
/// the config carries backend-unshareable resources — a durable storage
/// directory, say, where store ids repeat across backends and two
/// runtimes writing one WAL tree would corrupt each other.
///
/// # Errors
///
/// Returns [`MatrixError::ScenarioFailed`] if any run errors, or
/// [`MatrixError::Diverged`] if the observations differ.
pub fn run_matrix_with(
    scenario: &impl Scenario,
    backends: &[Backend],
    config_for: impl Fn(Backend) -> RuntimeConfig,
) -> Result<Vec<MatrixOutcome>, MatrixError> {
    let mut outcomes: Vec<MatrixOutcome> = Vec::with_capacity(backends.len());
    for &backend in backends {
        let observations = run_on(scenario, backend, config_for(backend))?;
        if let Some(reference) = outcomes.first() {
            if reference.observations != observations {
                return Err(MatrixError::Diverged {
                    scenario: scenario.name().to_string(),
                    reference: reference.backend,
                    divergent: backend,
                    expected: reference.observations.clone(),
                    actual: observations,
                });
            }
        }
        outcomes.push(MatrixOutcome {
            backend,
            observations,
        });
    }
    Ok(outcomes)
}

/// Fault-injection scenarios: the matrix exercising failure, not just
/// happy paths.
///
/// Each scenario kills, restarts, adds, or removes replicas mid-workload
/// through the trait-level lifecycle operations, then asserts the
/// client-visible outcomes — which [`run_matrix`] requires to be
/// identical on the simulator, real sockets, and the sharded runtime.
pub mod fault {
    use std::collections::HashMap;
    use std::time::Duration;

    use globe_coherence::{ObjectModel, StoreClass, StoreId, WriteId};

    use super::{Observations, Scenario};
    use crate::{registers, BindOptions, GlobeRuntime, ObjectSpec, RegisterDoc, ReplicationPolicy};

    /// Polls `read` until it yields `want` (settling between attempts)
    /// or a generous retry budget runs out; returns the final value.
    fn converge<R: GlobeRuntime>(
        rt: &mut R,
        client: crate::ClientHandle,
        page: &str,
        want: &[u8],
    ) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
        let mut latest = Vec::new();
        for _ in 0..50 {
            latest = rt.handle(client).read(registers::get(page))?.to_vec();
            if latest == want {
                break;
            }
            rt.settle(Duration::from_millis(100));
        }
        Ok(latest)
    }

    /// Kill a mirror mid-workload, recover it through the state-transfer
    /// protocol, and require that (a) pre-failure writes are readable
    /// from the recovered replica — the transfer preserved the state and
    /// coherence history — and (b) post-failure writes keep flowing
    /// to it.
    pub struct KillRestart;

    impl Scenario for KillRestart {
        fn name(&self) -> &'static str {
            "fault-kill-restart"
        }

        fn run<R: GlobeRuntime>(
            &self,
            rt: &mut R,
        ) -> Result<Observations, Box<dyn std::error::Error>> {
            let server = rt.add_node()?;
            let mirror = rt.add_node()?;
            let writer_node = rt.add_node()?;
            let reader_node = rt.add_node()?;

            let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()?;
            let object = ObjectSpec::new("/fault/kill-restart")
                .policy(policy)
                .semantics(RegisterDoc::new)
                .store(server, StoreClass::Permanent)
                .store(mirror, StoreClass::ObjectInitiated)
                .create(rt)?;
            let writer = rt.bind(object, writer_node, BindOptions::new().read_node(server))?;
            let reader = rt.bind(object, reader_node, BindOptions::new().read_node(mirror))?;
            rt.start(&[writer_node, reader_node]);

            for i in 0..5 {
                rt.handle(writer).write(registers::put(
                    &format!("k{i}"),
                    format!("pre-{i}").as_bytes(),
                ))?;
            }
            let mut obs = Observations::new();
            let seen = converge(rt, reader, "k4", b"pre-4")?;
            assert_eq!(&seen[..], b"pre-4", "mirror must converge before the fault");
            obs.record("pre-fail", &seen);

            // Kill the mirror (its in-memory state is gone) and recover
            // it from the home store's state transfer.
            rt.restart_store(object, mirror, Box::new(RegisterDoc::new()))?;

            // A write from *before* the failure, served by the recovered
            // replica: indistinguishable from a read before the failure.
            let old = converge(rt, reader, "k0", b"pre-0")?;
            assert_eq!(
                &old[..],
                b"pre-0",
                "state transfer must restore pre-failure writes"
            );
            obs.record("post-recover-old", &old);

            // And the recovered replica keeps receiving new writes.
            rt.handle(writer)
                .write(registers::put("k9", b"post-recover"))?;
            let new = converge(rt, reader, "k9", b"post-recover")?;
            assert_eq!(
                &new[..],
                b"post-recover",
                "recovered mirror must rejoin propagation"
            );
            obs.record("post-recover-new", &new);

            let members = rt.membership(object)?;
            assert!(members.all_alive());
            obs.record("member-count", members.members.len().to_string());

            // The recorded history still satisfies the object's model.
            let history = rt.history();
            let history = history.lock();
            globe_coherence::check::check_fifo(&history)?;
            drop(history);

            rt.shutdown();
            Ok(obs)
        }
    }

    /// Kill the home (sequencer) store mid-workload and require that the
    /// fault story completes: a surviving permanent store is elected the
    /// new sequencer and accepts writes, the old home rejoins its own
    /// object as an ordinary replica, a later *graceful* removal of the
    /// elected home hands the sequencer back, and the history recorded
    /// at every replica is a prefix-consistent continuation of its
    /// pre-failure history.
    pub struct HomeFailover;

    impl HomeFailover {
        /// Per-store snapshot of the recorded apply history.
        fn applies_by_store<R: GlobeRuntime>(rt: &R) -> HashMap<StoreId, Vec<WriteId>> {
            let history = rt.history();
            let history = history.lock();
            let mut by_store: HashMap<StoreId, Vec<WriteId>> = HashMap::new();
            for apply in history.applies() {
                by_store.entry(apply.store).or_default().push(apply.wid);
            }
            by_store
        }

        /// Asserts that `post` continues `pre` for every store: the
        /// pre-failure records survive verbatim as a prefix, and no
        /// store ever replays or reorders the single writer's sequence.
        fn assert_prefix_consistent(
            pre: &HashMap<StoreId, Vec<WriteId>>,
            post: &HashMap<StoreId, Vec<WriteId>>,
        ) {
            for (store, pre_applies) in pre {
                #[allow(clippy::expect_used)]
                // lint: allow(panic) — harness assertion: a vanished store history IS the invariant violation this matrix exists to catch
                let post_applies = post.get(store).expect("store history must never vanish");
                assert!(
                    post_applies.len() >= pre_applies.len()
                        && post_applies[..pre_applies.len()] == pre_applies[..],
                    "store {store}: pre-failover history must survive as an untouched prefix"
                );
            }
            for (store, applies) in post {
                let mut last = 0;
                for wid in applies {
                    assert!(
                        wid.seq > last,
                        "store {store}: apply {wid:?} replays or reorders across the fail-over"
                    );
                    last = wid.seq;
                }
            }
        }
    }

    impl Scenario for HomeFailover {
        fn name(&self) -> &'static str {
            "fault-home-failover"
        }

        fn run<R: GlobeRuntime>(
            &self,
            rt: &mut R,
        ) -> Result<Observations, Box<dyn std::error::Error>> {
            let home = rt.add_node()?;
            let standby = rt.add_node()?;
            let mirror = rt.add_node()?;
            let writer_node = rt.add_node()?;
            let reader_node = rt.add_node()?;

            let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()?;
            let object = ObjectSpec::new("/fault/home-failover")
                .policy(policy)
                .semantics(RegisterDoc::new)
                .store(home, StoreClass::Permanent)
                .store(standby, StoreClass::Permanent)
                .store(mirror, StoreClass::ObjectInitiated)
                .create(rt)?;
            // The writer reads from the standby so its own converge loops
            // survive the home's death; the reader watches the mirror.
            let writer = rt.bind(object, writer_node, BindOptions::new().read_node(standby))?;
            let reader = rt.bind(object, reader_node, BindOptions::new().read_node(mirror))?;
            rt.start(&[writer_node, reader_node]);

            for i in 0..5 {
                rt.handle(writer).write(registers::put(
                    &format!("k{i}"),
                    format!("pre-{i}").as_bytes(),
                ))?;
            }
            let mut obs = Observations::new();
            let seen = converge(rt, reader, "k4", b"pre-4")?;
            assert_eq!(&seen[..], b"pre-4", "mirror must converge before the fault");
            obs.record("pre-fail", &seen);
            let pre = Self::applies_by_store(rt);

            // Kill the home. The lowest-id surviving permanent store (the
            // standby) is elected sequencer; the old home rejoins its own
            // object as an ordinary permanent replica.
            rt.restart_store(object, home, Box::new(RegisterDoc::new()))?;
            let view = rt.membership(object)?;
            let new_home = view.members[0].clone();
            assert!(new_home.is_home);
            assert_eq!(
                new_home.node, standby,
                "the surviving permanent store must be elected"
            );
            // Node ids are allocation-ordered, hence identical across
            // backends: the elected node itself is a checkable outcome.
            obs.record("elected-home", new_home.node.to_string());

            // The elected sequencer accepts writes; they reach every
            // replica, including the recovered old home.
            rt.handle(writer)
                .write(registers::put("k5", b"post-failover"))?;
            let k5 = converge(rt, reader, "k5", b"post-failover")?;
            assert_eq!(
                &k5[..],
                b"post-failover",
                "the elected sequencer must accept and propagate writes"
            );
            obs.record("post-failover", &k5);

            let via_old_home = rt.bind(object, reader_node, BindOptions::new().read_node(home))?;
            let old0 = converge(rt, via_old_home, "k0", b"pre-0")?;
            assert_eq!(
                &old0[..],
                b"pre-0",
                "the rejoined old home must recover the pre-failure state"
            );
            let old5 = converge(rt, via_old_home, "k5", b"post-failover")?;
            assert_eq!(&old5[..], b"post-failover");
            obs.record("old-home-rejoined", &old0);

            // The graceful leg: retiring the *elected* home hands the
            // sequencer back via a SequencerHandoff carrying the log.
            rt.remove_store(object, standby)?;
            let view = rt.membership(object)?;
            assert!(view.members[0].is_home);
            assert_eq!(
                view.members[0].node, home,
                "graceful removal must hand the sequencer to the remaining permanent store"
            );
            rt.handle(writer)
                .write(registers::put("k6", b"post-handback"))?;
            let k6 = converge(rt, reader, "k6", b"post-handback")?;
            assert_eq!(&k6[..], b"post-handback");
            obs.record("post-handback", &k6);
            obs.record("final-members", view.members.len().to_string());

            // Every replica's recorded history is a prefix-consistent
            // continuation of its pre-failover history, and the whole
            // run still satisfies the object's coherence model.
            let post = Self::applies_by_store(rt);
            Self::assert_prefix_consistent(&pre, &post);
            let history = rt.history();
            let history = history.lock();
            globe_coherence::check::check_fifo(&history)?;
            drop(history);

            // The flight recorder, when enabled, must tell a coherent
            // story across the fail-over; with tracing off the snapshot
            // is empty and the checker passes trivially. The observation
            // is normalized to presence (0/1) because raw event counts
            // legitimately differ across backends.
            let snap = rt.trace();
            let violations = crate::trace::TraceChecker::check(&snap);
            assert!(violations.is_empty(), "trace violations: {violations:?}");
            obs.record("trace-captured", snap.len().min(1).to_string());

            rt.shutdown();
            Ok(obs)
        }
    }

    /// The unattended fail-over drill: partition the home (sequencer)
    /// store mid-workload — **no** `remove_store`/`restart_store` call —
    /// and require that the node-level failure detector confirms it
    /// down, the surviving permanent store self-elects and accepts
    /// writes, client sessions reroute on the unsolicited takeover
    /// announcement, the deposed home rejoins as an ordinary replica
    /// when the partition heals, and every store's recorded history is
    /// a prefix-consistent continuation.
    ///
    /// Requires a [`crate::RuntimeConfig`] with a heartbeat period and
    /// `auto_failover(true)`; keep the period short (tens of
    /// milliseconds) so detection fits a test budget on the wall-clock
    /// backends.
    pub struct AutoFailover;

    impl Scenario for AutoFailover {
        fn name(&self) -> &'static str {
            "fault-auto-failover"
        }

        fn run<R: GlobeRuntime>(
            &self,
            rt: &mut R,
        ) -> Result<Observations, Box<dyn std::error::Error>> {
            let home = rt.add_node()?;
            let standby = rt.add_node()?;
            let mirror = rt.add_node()?;
            let writer_node = rt.add_node()?;
            let reader_node = rt.add_node()?;

            let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()?;
            let object = ObjectSpec::new("/fault/auto-failover")
                .policy(policy)
                .semantics(RegisterDoc::new)
                .store(home, StoreClass::Permanent)
                .store(standby, StoreClass::Permanent)
                .store(mirror, StoreClass::ObjectInitiated)
                .create(rt)?;
            // The writer reads through the standby: its reads teach the
            // future sequencer where the writer's sessions live, so the
            // takeover announcement reaches them.
            let writer = rt.bind(object, writer_node, BindOptions::new().read_node(standby))?;
            let reader = rt.bind(object, reader_node, BindOptions::new().read_node(mirror))?;
            rt.start(&[writer_node, reader_node]);

            for i in 0..5 {
                rt.handle(writer).write(registers::put(
                    &format!("k{i}"),
                    format!("pre-{i}").as_bytes(),
                ))?;
            }
            let mut obs = Observations::new();
            let seen = converge(rt, reader, "k4", b"pre-4")?;
            assert_eq!(&seen[..], b"pre-4", "mirror must converge before the fault");
            obs.record("pre-fail", &seen);
            let warm = converge(rt, writer, "k4", b"pre-4")?;
            assert_eq!(&warm[..], b"pre-4", "writer reads through the standby");
            let pre = HomeFailover::applies_by_store(rt);

            // Partition the home. Nobody calls a lifecycle operation:
            // the detector must confirm the silence and the standby
            // must elect itself.
            rt.partition_node(home, true)?;
            let mut elected = false;
            for _ in 0..200 {
                let view = rt.membership(object)?;
                if view.members[0].is_home && view.members[0].node == standby {
                    elected = true;
                    break;
                }
                rt.settle(Duration::from_millis(50));
            }
            assert!(
                elected,
                "the surviving permanent store must self-elect with no driver call"
            );
            obs.record(
                "elected-home",
                rt.membership(object)?.members[0].node.to_string(),
            );

            // The elected sequencer accepts writes: the writer's session
            // was rerouted by the takeover announcement (its pending
            // retransmissions land on the standby), no rebind needed.
            rt.handle(writer)
                .write(registers::put("k5", b"post-auto"))?;
            let k5 = converge(rt, reader, "k5", b"post-auto")?;
            assert_eq!(
                &k5[..],
                b"post-auto",
                "the self-elected sequencer must accept and propagate writes"
            );
            obs.record("post-auto-failover", &k5);

            // Heal the partition: the deposed home hears the takeover
            // re-announcement, steps down, and converges on the elected
            // sequencer's log as an ordinary replica.
            rt.partition_node(home, false)?;
            let via_old_home = rt.bind(object, reader_node, BindOptions::new().read_node(home))?;
            let old0 = converge(rt, via_old_home, "k0", b"pre-0")?;
            assert_eq!(
                &old0[..],
                b"pre-0",
                "the rejoined old home must keep its pre-partition state"
            );
            let old5 = converge(rt, via_old_home, "k5", b"post-auto")?;
            assert_eq!(
                &old5[..],
                b"post-auto",
                "the rejoined old home must converge on the elected sequencer's log"
            );
            obs.record("old-home-rejoined", &old5);

            let view = rt.membership(object)?;
            assert!(view.members[0].is_home);
            assert_eq!(
                view.members[0].node, standby,
                "healing must not move the sequencer back"
            );
            obs.record("final-home", view.members[0].node.to_string());
            obs.record("final-members", view.members.len().to_string());

            // Every replica's recorded history is a prefix-consistent
            // continuation of its pre-partition history, and the whole
            // run still satisfies the object's coherence model.
            let post = HomeFailover::applies_by_store(rt);
            HomeFailover::assert_prefix_consistent(&pre, &post);
            let history = rt.history();
            let history = history.lock();
            globe_coherence::check::check_fifo(&history)?;
            drop(history);

            // The unattended drill is where the trace invariants earn
            // their keep: suspicion, election, takeover, and the first
            // post-takeover writes all land in the journal when tracing
            // is on, and the checker must find no incoherence in it.
            let snap = rt.trace();
            let violations = crate::trace::TraceChecker::check(&snap);
            assert!(violations.is_empty(), "trace violations: {violations:?}");
            obs.record("trace-captured", snap.len().min(1).to_string());

            rt.shutdown();
            Ok(obs)
        }
    }

    /// Add a mirror to a live object, read through it, then remove it
    /// gracefully while the workload continues.
    pub struct MirrorChurn;

    impl Scenario for MirrorChurn {
        fn name(&self) -> &'static str {
            "fault-mirror-churn"
        }

        fn run<R: GlobeRuntime>(
            &self,
            rt: &mut R,
        ) -> Result<Observations, Box<dyn std::error::Error>> {
            let server = rt.add_node()?;
            let mirror = rt.add_node()?;
            let client_node = rt.add_node()?;

            let policy = ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()?;
            let object = ObjectSpec::new("/fault/mirror-churn")
                .policy(policy)
                .semantics(RegisterDoc::new)
                .store(server, StoreClass::Permanent)
                .create(rt)?;
            let writer = rt.bind(object, client_node, BindOptions::new().read_node(server))?;
            rt.start(&[client_node]);

            for i in 0..3 {
                rt.handle(writer).write(registers::put(
                    &format!("k{i}"),
                    format!("pre-{i}").as_bytes(),
                ))?;
            }

            // Install a mirror on the live deployment; it catches up via
            // the join/state-transfer protocol.
            rt.add_store(
                object,
                mirror,
                StoreClass::ObjectInitiated,
                Box::new(RegisterDoc::new()),
            )?;
            let reader = rt.bind(object, client_node, BindOptions::new().read_node(mirror))?;
            let mut obs = Observations::new();
            let caught_up = converge(rt, reader, "k2", b"pre-2")?;
            assert_eq!(&caught_up[..], b"pre-2", "added mirror must catch up");
            obs.record("mirror-caught-up", &caught_up);
            obs.record(
                "members-with-mirror",
                rt.membership(object)?.members.len().to_string(),
            );

            // Retire it gracefully; the workload continues on the home.
            rt.remove_store(object, mirror)?;
            rt.handle(writer)
                .write(registers::put("k9", b"post-remove"))?;
            let after = converge(rt, writer, "k9", b"post-remove")?;
            assert_eq!(&after[..], b"post-remove");
            obs.record("post-remove", &after);
            obs.record(
                "members-after-remove",
                rt.membership(object)?.members.len().to_string(),
            );

            rt.shutdown();
            Ok(obs)
        }
    }
}
