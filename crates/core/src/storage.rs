//! Pluggable per-replica storage: the coherence write log and checkpoint
//! snapshots behind one narrow interface.
//!
//! A [`StoreReplica`](crate::StoreReplica) never touches its log
//! directly any more — every access goes through [`StoreBackend`]:
//! append a write, read the suffix past a logical index, checkpoint the
//! semantics snapshot at a version vector, truncate the prefix below an
//! all-peers-acked checkpoint. Two implementations ship:
//!
//! * [`MemoryBackend`] — the original RAM-only log, bit-for-bit the
//!   pre-refactor behavior (and still the default);
//! * [`DurableBackend`] — a write-ahead log plus periodic snapshot on
//!   the local filesystem ([`RuntimeConfig::durable_dir`]), so a
//!   restarted store recovers its state from its own disk and fetches
//!   only the missing log *suffix* from the home instead of a full
//!   state transfer.
//!
//! Log indices handed out by a backend are **logical**: they keep
//! counting across compaction, so `peer_sent` cursors held by the home
//! survive a truncation (compaction only ever drops entries below the
//! checkpoint every peer acknowledged, hence below every cursor).
//!
//! [`RuntimeConfig::durable_dir`]: crate::RuntimeConfig::durable_dir

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{Buf, BufMut, Bytes};
use globe_coherence::{PageKey, StoreId, VersionVector, WriteId};
use globe_naming::ObjectId;
use globe_wire::{WireDecode, WireEncode, WireError};

use crate::messages::LoggedWrite;

/// Storage knobs carried by [`RuntimeConfig`](crate::RuntimeConfig) and
/// threaded through the creation plan into every replica.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageSpec {
    /// Directory for write-ahead logs and checkpoint snapshots. `None`
    /// (the default) keeps every replica on the RAM-only
    /// [`MemoryBackend`].
    pub durable_dir: Option<PathBuf>,
    /// Take a checkpoint (and start the compaction handshake) every
    /// this many appended writes at the home store. `0` disables
    /// checkpointing — the pre-refactor behavior.
    pub checkpoint_every: usize,
}

impl StorageSpec {
    /// Builds the backend this spec asks for. Falls back to the
    /// in-memory backend (with a note on stderr) if the durable
    /// directory cannot be opened.
    pub(crate) fn make_backend(&self, object: ObjectId, store: StoreId) -> Box<dyn StoreBackend> {
        match &self.durable_dir {
            None => Box::new(MemoryBackend::new()),
            Some(dir) => match DurableBackend::open(dir, object, store) {
                Ok(backend) => Box::new(backend),
                Err(e) => {
                    eprintln!(
                        "globe-core: durable backend unavailable at {} ({e}); using memory",
                        dir.display()
                    );
                    Box::new(MemoryBackend::new())
                }
            },
        }
    }
}

/// Everything a checkpoint pins down: the semantics snapshot and the
/// coherence metadata needed to serve reads from it after recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointImage {
    /// The applied vector at the checkpoint.
    pub version: VersionVector,
    /// Marshalled semantics snapshot.
    pub state: Bytes,
    /// Last writer per page, so `sees` metadata survives recovery.
    pub writers: Vec<(PageKey, WriteId)>,
    /// Sequencer order height (sequential model).
    pub order_high: Option<u64>,
}

impl WireEncode for CheckpointImage {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.version.encode(buf);
        self.state.encode(buf);
        self.writers.encode(buf);
        self.order_high.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.version.encoded_len()
            + self.state.encoded_len()
            + self.writers.encoded_len()
            + self.order_high.encoded_len()
    }
}

impl WireDecode for CheckpointImage {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(CheckpointImage {
            version: VersionVector::decode(buf)?,
            state: Bytes::decode(buf)?,
            writers: Vec::<(PageKey, WriteId)>::decode(buf)?,
            order_high: Option::<u64>::decode(buf)?,
        })
    }
}

/// What a durable backend salvaged from its local files at open time:
/// the last checkpoint (if one was written) plus every write-ahead-log
/// entry still on disk. The replica restores the snapshot, replays the
/// log entries past it, and then joins with a non-empty version vector
/// so the home ships only a delta.
#[derive(Debug)]
pub struct Recovery {
    /// The last checkpoint snapshot written before the restart.
    pub checkpoint: Option<CheckpointImage>,
    /// Write-ahead-log entries on disk, oldest first (may include
    /// entries already covered by the checkpoint; replay skips those).
    pub log: Vec<LoggedWrite>,
}

/// The replica-facing storage interface: an append-only write log with
/// logical (compaction-surviving) indices, plus checkpoint and
/// truncation hooks.
pub trait StoreBackend: std::fmt::Debug + Send {
    /// Appends one write to the log (and, for durable backends, to the
    /// write-ahead log on disk).
    fn append(&mut self, write: &LoggedWrite);
    /// Logical log length: `base() +` the number of retained entries.
    fn len(&self) -> usize;
    /// True when the log has never held an entry (or everything was
    /// compacted away and the base is still zero).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Logical index of the first retained entry (grows at each
    /// compaction).
    fn base(&self) -> usize;
    /// Entries from logical index `from` on; `from` below `base()` is
    /// clamped (those entries are gone — callers guard with the
    /// compaction floor before relying on completeness).
    fn suffix_from(&self, from: usize) -> &[LoggedWrite];
    /// Every retained entry, oldest first.
    fn retained(&self) -> &[LoggedWrite];
    /// Replaces the whole log (a lifecycle/fail-over state transfer):
    /// logical indices restart at zero and, for durable backends, the
    /// checkpoint image is written so local recovery reflects the
    /// transfer rather than the pre-transfer history.
    fn install(&mut self, image: &CheckpointImage, log: Vec<LoggedWrite>);
    /// Records a checkpoint at the image's version (durable backends
    /// persist the snapshot; the log is untouched until
    /// [`StoreBackend::truncate_covered`]).
    fn checkpoint(&mut self, image: &CheckpointImage);
    /// Drops the longest log *prefix* fully covered by `version` and
    /// bumps the base past it; returns how many entries went.
    fn truncate_covered(&mut self, version: &VersionVector) -> usize;
    /// Hands over (at most once) whatever state the backend recovered
    /// from local durable storage when it was opened.
    fn take_recovery(&mut self) -> Option<Recovery>;
}

/// How many leading retained entries `version` fully covers.
fn covered_prefix(entries: &[LoggedWrite], version: &VersionVector) -> usize {
    entries.iter().take_while(|w| version.covers(w.wid)).count()
}

/// The original RAM-only write log — the default backend.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    base: usize,
    entries: Vec<LoggedWrite>,
}

impl MemoryBackend {
    /// An empty in-memory log.
    pub fn new() -> Self {
        MemoryBackend::default()
    }
}

impl StoreBackend for MemoryBackend {
    fn append(&mut self, write: &LoggedWrite) {
        self.entries.push(write.clone());
    }
    fn len(&self) -> usize {
        self.base + self.entries.len()
    }
    fn base(&self) -> usize {
        self.base
    }
    fn suffix_from(&self, from: usize) -> &[LoggedWrite] {
        &self.entries[from.saturating_sub(self.base).min(self.entries.len())..]
    }
    fn retained(&self) -> &[LoggedWrite] {
        &self.entries
    }
    fn install(&mut self, _image: &CheckpointImage, log: Vec<LoggedWrite>) {
        self.base = 0;
        self.entries = log;
    }
    fn checkpoint(&mut self, _image: &CheckpointImage) {}
    fn truncate_covered(&mut self, version: &VersionVector) -> usize {
        let n = covered_prefix(&self.entries, version);
        if n > 0 {
            self.entries.drain(..n);
            self.base += n;
        }
        n
    }
    fn take_recovery(&mut self) -> Option<Recovery> {
        None
    }
}

/// Write-ahead log + periodic snapshot on the local filesystem.
///
/// Layout under the configured directory, one pair per replica
/// (`o<object>_s<store>.wal` / `.snap`):
///
/// * the WAL starts with the logical base index (`u64` little-endian)
///   and then holds length-prefixed wire-encoded [`LoggedWrite`]
///   records; a torn tail (crash mid-append) is detected and truncated
///   at open;
/// * the snapshot is one wire-encoded [`CheckpointImage`], written to a
///   temp file and atomically renamed in.
///
/// Appends go straight to the file descriptor; the WAL is rewritten
/// wholesale only on compaction and on state-transfer installs.
#[derive(Debug)]
pub struct DurableBackend {
    wal_path: PathBuf,
    snap_path: PathBuf,
    wal: File,
    base: usize,
    entries: Vec<LoggedWrite>,
    recovery: Option<Recovery>,
}

impl DurableBackend {
    /// Opens (creating if absent) the WAL + snapshot pair for one
    /// replica, salvaging any state a previous incarnation left behind.
    pub fn open(dir: &Path, object: ObjectId, store: StoreId) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let stem = format!("o{}_s{}", object.raw(), store.raw());
        let wal_path = dir.join(format!("{stem}.wal"));
        let snap_path = dir.join(format!("{stem}.snap"));

        let checkpoint = match fs::read(&snap_path) {
            Ok(bytes) => globe_wire::from_bytes::<CheckpointImage>(&bytes).ok(),
            Err(_) => None,
        };

        let mut base = 0usize;
        let mut entries = Vec::new();
        let mut good_end = 0u64;
        if let Ok(raw) = fs::read(&wal_path) {
            let mut cursor = &raw[..];
            if cursor.len() >= 8 {
                #[allow(clippy::unwrap_used)]
                // lint: allow(panic) — infallible: the slice is exactly 8 bytes by the length check above
                let stored_base = u64::from_le_bytes(cursor[..8].try_into().unwrap());
                base = stored_base as usize;
                cursor = &cursor[8..];
                good_end = 8;
                while cursor.len() >= 4 {
                    #[allow(clippy::unwrap_used)]
                    // lint: allow(panic) — infallible: the slice is exactly 4 bytes by the loop condition
                    let len = u32::from_le_bytes(cursor[..4].try_into().unwrap()) as usize;
                    if cursor.len() < 4 + len {
                        break;
                    }
                    match globe_wire::from_bytes::<LoggedWrite>(&cursor[4..4 + len]) {
                        Ok(write) => entries.push(write),
                        Err(_) => break,
                    }
                    cursor = &cursor[4 + len..];
                    good_end += 4 + len as u64;
                }
            }
        }

        let wal = if good_end == 0 {
            let mut f = File::create(&wal_path)?;
            f.write_all(&(base as u64).to_le_bytes())?;
            f
        } else {
            let f = OpenOptions::new().append(true).open(&wal_path)?;
            f.set_len(good_end)?; // drop any torn tail before appending
            f
        };

        let recovery = if checkpoint.is_some() || !entries.is_empty() {
            Some(Recovery {
                checkpoint,
                log: entries.clone(),
            })
        } else {
            None
        };

        Ok(DurableBackend {
            wal_path,
            snap_path,
            wal,
            base,
            entries,
            recovery,
        })
    }

    /// Rewrites the whole WAL file from the in-memory mirror (used on
    /// compaction and installs, never on the append path).
    fn rewrite_wal(&mut self) {
        let tmp = self.wal_path.with_extension("wal.tmp");
        let result = (|| -> std::io::Result<File> {
            let mut f = File::create(&tmp)?;
            f.write_all(&(self.base as u64).to_le_bytes())?;
            for write in &self.entries {
                let bytes = globe_wire::to_bytes(write);
                f.write_all(&(bytes.len() as u32).to_le_bytes())?;
                f.write_all(&bytes)?;
            }
            fs::rename(&tmp, &self.wal_path)?;
            OpenOptions::new().append(true).open(&self.wal_path)
        })();
        match result {
            Ok(f) => self.wal = f,
            Err(e) => eprintln!(
                "globe-core: WAL rewrite failed at {} ({e}); log kept in memory",
                self.wal_path.display()
            ),
        }
    }

    fn write_snapshot(&self, image: &CheckpointImage) {
        let tmp = self.snap_path.with_extension("snap.tmp");
        let result = (|| -> std::io::Result<()> {
            fs::write(&tmp, globe_wire::to_bytes(image))?;
            fs::rename(&tmp, &self.snap_path)
        })();
        if let Err(e) = result {
            eprintln!(
                "globe-core: checkpoint write failed at {} ({e})",
                self.snap_path.display()
            );
        }
    }
}

impl StoreBackend for DurableBackend {
    fn append(&mut self, write: &LoggedWrite) {
        let bytes = globe_wire::to_bytes(write);
        let mut frame = Vec::with_capacity(4 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&bytes);
        if let Err(e) = self.wal.write_all(&frame) {
            eprintln!(
                "globe-core: WAL append failed at {} ({e})",
                self.wal_path.display()
            );
        }
        self.entries.push(write.clone());
    }
    fn len(&self) -> usize {
        self.base + self.entries.len()
    }
    fn base(&self) -> usize {
        self.base
    }
    fn suffix_from(&self, from: usize) -> &[LoggedWrite] {
        &self.entries[from.saturating_sub(self.base).min(self.entries.len())..]
    }
    fn retained(&self) -> &[LoggedWrite] {
        &self.entries
    }
    fn install(&mut self, image: &CheckpointImage, log: Vec<LoggedWrite>) {
        self.base = 0;
        self.entries = log;
        self.write_snapshot(image);
        self.rewrite_wal();
    }
    fn checkpoint(&mut self, image: &CheckpointImage) {
        self.write_snapshot(image);
    }
    fn truncate_covered(&mut self, version: &VersionVector) -> usize {
        let n = covered_prefix(&self.entries, version);
        if n > 0 {
            self.entries.drain(..n);
            self.base += n;
            self.rewrite_wal();
        }
        n
    }
    fn take_recovery(&mut self) -> Option<Recovery> {
        self.recovery.take()
    }
}

static TEMP_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory removed on drop — the harness for
/// durable-backend tests and benches, so no run ever sees another
/// run's stale WAL files.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<system-temp>/globe_<prefix>_<pid>_<seq>`.
    pub fn new(prefix: &str) -> Self {
        let seq = TEMP_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("globe_{prefix}_{}_{seq}", std::process::id()));
        #[allow(clippy::expect_used)]
        // lint: allow(panic) — test/bench scaffolding: a temp-dir failure must abort the harness loudly, there is no replica to degrade
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InvocationMessage, MethodId};
    use globe_coherence::ClientId;

    fn write(client: u32, seq: u64) -> LoggedWrite {
        LoggedWrite {
            wid: WriteId::new(ClientId::new(client), seq),
            inv: InvocationMessage::new(MethodId::new(1), Bytes::from_static(b"x")),
            deps: VersionVector::new(),
            page: Some(format!("p{seq}")),
            order: Some(seq),
        }
    }

    fn vv(pairs: &[(u32, u64)]) -> VersionVector {
        pairs.iter().map(|&(c, s)| (ClientId::new(c), s)).collect()
    }

    #[test]
    fn memory_backend_logical_indices_survive_compaction() {
        let mut log = MemoryBackend::new();
        for seq in 1..=4 {
            log.append(&write(1, seq));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.suffix_from(2).len(), 2);
        let dropped = log.truncate_covered(&vv(&[(1, 2)]));
        assert_eq!(dropped, 2);
        assert_eq!(log.base(), 2);
        assert_eq!(log.len(), 4, "logical length keeps counting");
        assert_eq!(log.suffix_from(3).len(), 1);
        assert_eq!(log.suffix_from(0).len(), 2, "below-base reads clamp");
    }

    #[test]
    fn truncate_stops_at_first_uncovered_entry() {
        let mut log = MemoryBackend::new();
        log.append(&write(1, 1));
        log.append(&write(2, 1));
        log.append(&write(1, 2));
        // Covers client 1 fully but client 2 not at all: only the first
        // entry is a covered *prefix*.
        assert_eq!(log.truncate_covered(&vv(&[(1, 2)])), 1);
        assert_eq!(log.retained().len(), 2);
    }

    #[test]
    fn durable_backend_recovers_wal_and_snapshot() {
        let tmp = TempDir::new("storage_unit");
        let object = ObjectId::new(7);
        let store = StoreId::new(3);
        {
            let mut log = DurableBackend::open(tmp.path(), object, store).unwrap();
            assert!(
                log.take_recovery().is_none(),
                "fresh dir: nothing to recover"
            );
            log.append(&write(1, 1));
            log.append(&write(1, 2));
            log.checkpoint(&CheckpointImage {
                version: vv(&[(1, 2)]),
                state: Bytes::from_static(b"snap"),
                writers: vec![("p2".to_string(), WriteId::new(ClientId::new(1), 2))],
                order_high: Some(2),
            });
            log.append(&write(1, 3));
        }
        let mut reopened = DurableBackend::open(tmp.path(), object, store).unwrap();
        let recovery = reopened.take_recovery().expect("files were on disk");
        let image = recovery.checkpoint.expect("snapshot was written");
        assert_eq!(image.version, vv(&[(1, 2)]));
        assert_eq!(&image.state[..], b"snap");
        assert_eq!(recovery.log.len(), 3, "WAL kept every append");
        assert_eq!(recovery.log[2].wid, WriteId::new(ClientId::new(1), 3));
        assert_eq!(reopened.len(), 3);
    }

    #[test]
    fn durable_backend_truncates_torn_tail() {
        let tmp = TempDir::new("storage_torn");
        let object = ObjectId::new(1);
        let store = StoreId::new(0);
        {
            let mut log = DurableBackend::open(tmp.path(), object, store).unwrap();
            log.append(&write(1, 1));
        }
        let wal = tmp.path().join("o1_s0.wal");
        let mut raw = fs::read(&wal).unwrap();
        raw.extend_from_slice(&[9, 0, 0, 0, 1, 2]); // half a record
        fs::write(&wal, &raw).unwrap();
        let mut reopened = DurableBackend::open(tmp.path(), object, store).unwrap();
        assert_eq!(reopened.retained().len(), 1, "torn tail dropped");
        reopened.append(&write(1, 2));
        drop(reopened);
        let third = DurableBackend::open(tmp.path(), object, store).unwrap();
        assert_eq!(third.retained().len(), 2, "appends after salvage are clean");
    }

    #[test]
    fn durable_compaction_rewrites_the_wal() {
        let tmp = TempDir::new("storage_compact");
        let object = ObjectId::new(2);
        let store = StoreId::new(1);
        {
            let mut log = DurableBackend::open(tmp.path(), object, store).unwrap();
            for seq in 1..=6 {
                log.append(&write(1, seq));
            }
            assert_eq!(log.truncate_covered(&vv(&[(1, 4)])), 4);
            assert_eq!(log.base(), 4);
        }
        let mut reopened = DurableBackend::open(tmp.path(), object, store).unwrap();
        assert_eq!(reopened.base(), 4, "base survives the rewrite");
        assert_eq!(reopened.len(), 6);
        let recovered = reopened.take_recovery().unwrap();
        assert_eq!(recovered.log.len(), 2, "only the suffix is on disk");
    }

    #[test]
    fn install_resets_indices_and_recovery_matches_transfer() {
        let tmp = TempDir::new("storage_install");
        let object = ObjectId::new(3);
        let store = StoreId::new(2);
        {
            let mut log = DurableBackend::open(tmp.path(), object, store).unwrap();
            for seq in 1..=3 {
                log.append(&write(9, seq));
            }
            log.install(
                &CheckpointImage {
                    version: vv(&[(1, 5)]),
                    state: Bytes::from_static(b"transferred"),
                    writers: Vec::new(),
                    order_high: None,
                },
                vec![write(1, 5)],
            );
            assert_eq!(log.base(), 0);
            assert_eq!(log.len(), 1);
        }
        let mut reopened = DurableBackend::open(tmp.path(), object, store).unwrap();
        let recovery = reopened.take_recovery().unwrap();
        assert_eq!(&recovery.checkpoint.unwrap().state[..], b"transferred");
        assert_eq!(recovery.log.len(), 1, "pre-transfer history is gone");
    }

    #[test]
    fn temp_dirs_are_unique_and_cleaned() {
        let a = TempDir::new("uniq");
        let b = TempDir::new("uniq");
        assert_ne!(a.path(), b.path());
        let kept = a.path().to_path_buf();
        assert!(kept.is_dir());
        drop(a);
        assert!(!kept.exists(), "dropped temp dir is removed");
    }
}
