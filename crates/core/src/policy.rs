//! Replication policies: Table 1 of the paper as a typed, validated
//! configuration.
//!
//! "These parameters must be set by the programmer of a Web object at
//! initialization once the object-based coherence model has been chosen"
//! (§3.3). Every replication object in this crate interprets the same
//! parameter set; the policy can also be changed dynamically at run time
//! (the paper's §5 future work).

use std::fmt;
use std::time::Duration;

use bytes::{Buf, BufMut};
use globe_coherence::{ObjectModel, StoreClass};
use globe_wire::{wire_enum, WireDecode, WireEncode, WireError};

use crate::PolicyError;

wire_enum! {
    /// *Consistency propagation*: "either by updating or invalidating
    /// replicas when changes occur on an object."
    pub enum Propagation {
        /// Ship the change itself.
        Update = 0,
        /// Ship an invalidation; replicas refetch on demand.
        Invalidate = 1,
    }
}

wire_enum! {
    /// *Store*: "which kind of store implements the object-based
    /// coherence model."
    pub enum StoreScope {
        /// Only permanent stores.
        Permanent = 0,
        /// Permanent and object-initiated stores (mirrors).
        PermanentAndObjectInitiated = 1,
        /// Every store, including client caches.
        All = 2,
    }
}

wire_enum! {
    /// *Write set*: "the number of simultaneous writers."
    pub enum WriteSet {
        /// A single writer (like the paper's Web master).
        Single = 0,
        /// Multiple concurrent writers (like a shared white-board).
        Multiple = 1,
    }
}

wire_enum! {
    /// *Transfer initiative*: "who is in charge of the propagation of
    /// coherence information."
    pub enum TransferInitiative {
        /// The holder of the change pushes it to replicas.
        Push = 0,
        /// Replicas pull coherence information.
        Pull = 1,
    }
}

wire_enum! {
    /// *Transfer instant*: "when the coherence is managed: either as soon
    /// as a change occurs, or periodically whereby successive updates can
    /// be aggregated."
    pub enum TransferInstant {
        /// Propagate at every change.
        Immediate = 0,
        /// Propagate periodically, aggregating successive changes (the
        /// period lives in [`ReplicationPolicy::lazy_period`]).
        Lazy = 1,
    }
}

wire_enum! {
    /// *Access transfer type*: "whether only part of the Web document or
    /// the entire document is retrieved when accessed."
    pub enum AccessTransfer {
        /// Retrieve only the requested page.
        Partial = 0,
        /// Retrieve the entire document on access.
        Full = 1,
    }
}

wire_enum! {
    /// *Coherence transfer type*: "whether coherence is managed on only
    /// part of the Web document, or on the entire document", where
    /// notification sends no data at all.
    pub enum CoherenceTransfer {
        /// Only a change notification is sent.
        Notification = 0,
        /// Only the changed parts (the write operations) are shipped.
        Partial = 1,
        /// The entire document state is shipped.
        Full = 2,
    }
}

wire_enum! {
    /// *Outdate reaction*: what a store does "when it notices that
    /// coherence requirements for a given model are not satisfied": wait
    /// passively for an update, or demand one immediately.
    pub enum OutdateReaction {
        /// Passively wait until the missing update arrives.
        Wait = 0,
        /// Demand the missing update immediately.
        Demand = 1,
    }
}

/// The complete per-object replication strategy: an object-based
/// coherence model plus the Table-1 implementation parameters.
///
/// Construct via [`ReplicationPolicy::builder`] (validated) or one of the
/// presets; the `Display` impl renders the paper's Table-2 layout.
///
/// # Examples
///
/// ```
/// use globe_core::ReplicationPolicy;
///
/// let policy = ReplicationPolicy::conference_page();
/// let sheet = policy.to_string();
/// assert!(sheet.contains("Coherence propagation: update"));
/// assert!(sheet.contains("Transfer instant:      lazy (periodic"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationPolicy {
    /// The object-based coherence model (§3.2.1).
    pub model: ObjectModel,
    /// Update vs invalidate propagation.
    pub propagation: Propagation,
    /// Which store layers implement the model.
    pub store_scope: StoreScope,
    /// Single vs multiple writers.
    pub write_set: WriteSet,
    /// Push vs pull.
    pub initiative: TransferInitiative,
    /// Immediate vs lazy propagation.
    pub instant: TransferInstant,
    /// Aggregation period for lazy propagation (also the poll interval
    /// for pull initiative).
    pub lazy_period: Duration,
    /// Client access granularity.
    pub access_transfer: AccessTransfer,
    /// Coherence traffic granularity.
    pub coherence_transfer: CoherenceTransfer,
    /// Store reaction to violated object-based requirements.
    pub object_outdate: OutdateReaction,
    /// Store reaction to violated client-based requirements.
    pub client_outdate: OutdateReaction,
}

impl ReplicationPolicy {
    /// Starts a validated builder for the given object model.
    pub fn builder(model: ObjectModel) -> PolicyBuilder {
        PolicyBuilder {
            policy: ReplicationPolicy::base(model),
        }
    }

    fn base(model: ObjectModel) -> Self {
        ReplicationPolicy {
            model,
            propagation: Propagation::Update,
            store_scope: StoreScope::All,
            write_set: WriteSet::Multiple,
            initiative: TransferInitiative::Push,
            instant: TransferInstant::Immediate,
            lazy_period: Duration::from_millis(500),
            access_transfer: AccessTransfer::Partial,
            coherence_transfer: CoherenceTransfer::Partial,
            object_outdate: OutdateReaction::Wait,
            client_outdate: OutdateReaction::Demand,
        }
    }

    /// The exact strategy of the paper's worked example (Table 2): PRAM
    /// at all stores, single writer, periodic push of partial updates,
    /// full access transfer, wait/demand outdate reactions.
    pub fn conference_page() -> Self {
        ReplicationPolicy {
            model: ObjectModel::Pram,
            propagation: Propagation::Update,
            store_scope: StoreScope::All,
            write_set: WriteSet::Single,
            initiative: TransferInitiative::Push,
            instant: TransferInstant::Lazy,
            lazy_period: Duration::from_secs(2),
            access_transfer: AccessTransfer::Full,
            coherence_transfer: CoherenceTransfer::Partial,
            object_outdate: OutdateReaction::Wait,
            client_outdate: OutdateReaction::Demand,
        }
    }

    /// A personal home page (§1): eventual coherence, pull-on-access by
    /// browser caches, invalidation-free.
    pub fn personal_home_page() -> Self {
        ReplicationPolicy {
            model: ObjectModel::Eventual,
            propagation: Propagation::Update,
            store_scope: StoreScope::Permanent,
            write_set: WriteSet::Single,
            initiative: TransferInitiative::Pull,
            instant: TransferInstant::Lazy,
            lazy_period: Duration::from_secs(10),
            access_transfer: AccessTransfer::Full,
            coherence_transfer: CoherenceTransfer::Full,
            object_outdate: OutdateReaction::Wait,
            client_outdate: OutdateReaction::Wait,
        }
    }

    /// A magazine-like document (§1): "updated periodically, may benefit
    /// from a push strategy to servers in areas with a relatively large
    /// number of subscribers."
    pub fn magazine() -> Self {
        ReplicationPolicy {
            model: ObjectModel::Fifo,
            propagation: Propagation::Update,
            store_scope: StoreScope::PermanentAndObjectInitiated,
            write_set: WriteSet::Single,
            initiative: TransferInitiative::Push,
            instant: TransferInstant::Lazy,
            lazy_period: Duration::from_secs(5),
            access_transfer: AccessTransfer::Partial,
            coherence_transfer: CoherenceTransfer::Partial,
            object_outdate: OutdateReaction::Wait,
            client_outdate: OutdateReaction::Wait,
        }
    }

    /// A multi-writer groupware object (§3.2.2: "a groupware editor
    /// requires strong coherence at every store layer").
    pub fn whiteboard() -> Self {
        ReplicationPolicy {
            model: ObjectModel::Sequential,
            propagation: Propagation::Update,
            store_scope: StoreScope::All,
            write_set: WriteSet::Multiple,
            initiative: TransferInitiative::Push,
            instant: TransferInstant::Immediate,
            lazy_period: Duration::from_millis(500),
            access_transfer: AccessTransfer::Partial,
            coherence_transfer: CoherenceTransfer::Partial,
            object_outdate: OutdateReaction::Demand,
            client_outdate: OutdateReaction::Demand,
        }
    }

    /// A causally coherent Web forum (§3.2.1's newsgroup example).
    pub fn news_forum() -> Self {
        ReplicationPolicy {
            model: ObjectModel::Causal,
            propagation: Propagation::Update,
            store_scope: StoreScope::All,
            write_set: WriteSet::Multiple,
            initiative: TransferInitiative::Push,
            instant: TransferInstant::Immediate,
            lazy_period: Duration::from_millis(500),
            access_transfer: AccessTransfer::Partial,
            coherence_transfer: CoherenceTransfer::Partial,
            object_outdate: OutdateReaction::Wait,
            client_outdate: OutdateReaction::Demand,
        }
    }

    /// Whether a store of `class` participates in enforcing the
    /// object-based model (Table 1's *store* parameter).
    pub fn in_scope(&self, class: StoreClass) -> bool {
        match self.store_scope {
            StoreScope::Permanent => class == StoreClass::Permanent,
            StoreScope::PermanentAndObjectInitiated => class.is_server_managed(),
            StoreScope::All => true,
        }
    }

    /// Validates the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] for contradictory settings.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.instant == TransferInstant::Lazy && self.lazy_period.is_zero() {
            return Err(PolicyError::ZeroLazyPeriod);
        }
        if self.initiative == TransferInitiative::Pull && self.lazy_period.is_zero() {
            return Err(PolicyError::ZeroLazyPeriod);
        }
        if self.propagation == Propagation::Invalidate
            && self.coherence_transfer == CoherenceTransfer::Full
        {
            return Err(PolicyError::Contradiction(
                "invalidation never ships full state; use update propagation",
            ));
        }
        if self.model == ObjectModel::Sequential
            && self.propagation == Propagation::Invalidate
            && self.object_outdate == OutdateReaction::Wait
        {
            return Err(PolicyError::Contradiction(
                "sequential + invalidate requires demand reaction to refetch the order",
            ));
        }
        Ok(())
    }
}

impl fmt::Display for ReplicationPolicy {
    /// Renders in the layout of the paper's Table 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Coherence model:       {}", self.model)?;
        writeln!(
            f,
            "Coherence propagation: {}",
            match self.propagation {
                Propagation::Update => "update",
                Propagation::Invalidate => "invalidate",
            }
        )?;
        writeln!(
            f,
            "Store:                 {}",
            match self.store_scope {
                StoreScope::Permanent => "permanent",
                StoreScope::PermanentAndObjectInitiated => "permanent and object-initiated",
                StoreScope::All => "all",
            }
        )?;
        writeln!(
            f,
            "Write set:             {}",
            match self.write_set {
                WriteSet::Single => "single",
                WriteSet::Multiple => "multiple",
            }
        )?;
        writeln!(
            f,
            "Transfer initiative:   {}",
            match self.initiative {
                TransferInitiative::Push => "push",
                TransferInitiative::Pull => "pull",
            }
        )?;
        match self.instant {
            TransferInstant::Immediate => writeln!(f, "Transfer instant:      immediate")?,
            TransferInstant::Lazy => writeln!(
                f,
                "Transfer instant:      lazy (periodic, {:?})",
                self.lazy_period
            )?,
        }
        writeln!(
            f,
            "Access transfer type:  {}",
            match self.access_transfer {
                AccessTransfer::Partial => "partial",
                AccessTransfer::Full => "full",
            }
        )?;
        writeln!(
            f,
            "Coherence transfer:    {}",
            match self.coherence_transfer {
                CoherenceTransfer::Notification => "notification",
                CoherenceTransfer::Partial => "partial",
                CoherenceTransfer::Full => "full",
            }
        )?;
        writeln!(
            f,
            "Object-outdate:        {}",
            match self.object_outdate {
                OutdateReaction::Wait => "wait",
                OutdateReaction::Demand => "demand",
            }
        )?;
        write!(
            f,
            "Client-outdate:        {}",
            match self.client_outdate {
                OutdateReaction::Wait => "wait",
                OutdateReaction::Demand => "demand",
            }
        )
    }
}

impl WireEncode for ReplicationPolicy {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.model.encode(buf);
        self.propagation.encode(buf);
        self.store_scope.encode(buf);
        self.write_set.encode(buf);
        self.initiative.encode(buf);
        self.instant.encode(buf);
        self.lazy_period.encode(buf);
        self.access_transfer.encode(buf);
        self.coherence_transfer.encode(buf);
        self.object_outdate.encode(buf);
        self.client_outdate.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.model.encoded_len()
            + self.propagation.encoded_len()
            + self.store_scope.encoded_len()
            + self.write_set.encoded_len()
            + self.initiative.encoded_len()
            + self.instant.encoded_len()
            + self.lazy_period.encoded_len()
            + self.access_transfer.encoded_len()
            + self.coherence_transfer.encoded_len()
            + self.object_outdate.encoded_len()
            + self.client_outdate.encoded_len()
    }
}

impl WireDecode for ReplicationPolicy {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(ReplicationPolicy {
            model: ObjectModel::decode(buf)?,
            propagation: Propagation::decode(buf)?,
            store_scope: StoreScope::decode(buf)?,
            write_set: WriteSet::decode(buf)?,
            initiative: TransferInitiative::decode(buf)?,
            instant: TransferInstant::decode(buf)?,
            lazy_period: Duration::decode(buf)?,
            access_transfer: AccessTransfer::decode(buf)?,
            coherence_transfer: CoherenceTransfer::decode(buf)?,
            object_outdate: OutdateReaction::decode(buf)?,
            client_outdate: OutdateReaction::decode(buf)?,
        })
    }
}

/// Validated builder for [`ReplicationPolicy`].
#[derive(Debug, Clone)]
pub struct PolicyBuilder {
    policy: ReplicationPolicy,
}

impl PolicyBuilder {
    /// Sets update vs invalidate propagation.
    pub fn propagation(mut self, v: Propagation) -> Self {
        self.policy.propagation = v;
        self
    }

    /// Sets which store layers implement the model.
    pub fn store_scope(mut self, v: StoreScope) -> Self {
        self.policy.store_scope = v;
        self
    }

    /// Sets the writer population.
    pub fn write_set(mut self, v: WriteSet) -> Self {
        self.policy.write_set = v;
        self
    }

    /// Sets push vs pull initiative.
    pub fn initiative(mut self, v: TransferInitiative) -> Self {
        self.policy.initiative = v;
        self
    }

    /// Sets immediate propagation.
    pub fn immediate(mut self) -> Self {
        self.policy.instant = TransferInstant::Immediate;
        self
    }

    /// Sets lazy (periodic, aggregated) propagation with the given period.
    pub fn lazy(mut self, period: Duration) -> Self {
        self.policy.instant = TransferInstant::Lazy;
        self.policy.lazy_period = period;
        self
    }

    /// Sets the pull/poll period without switching to lazy pushes.
    pub fn period(mut self, period: Duration) -> Self {
        self.policy.lazy_period = period;
        self
    }

    /// Sets the client access granularity.
    pub fn access_transfer(mut self, v: AccessTransfer) -> Self {
        self.policy.access_transfer = v;
        self
    }

    /// Sets the coherence traffic granularity.
    pub fn coherence_transfer(mut self, v: CoherenceTransfer) -> Self {
        self.policy.coherence_transfer = v;
        self
    }

    /// Sets the store reaction to violated object-based requirements.
    pub fn object_outdate(mut self, v: OutdateReaction) -> Self {
        self.policy.object_outdate = v;
        self
    }

    /// Sets the store reaction to violated client-based requirements.
    pub fn client_outdate(mut self, v: OutdateReaction) -> Self {
        self.policy.client_outdate = v;
        self
    }

    /// Validates and returns the policy.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicyError`] for contradictory settings.
    pub fn build(self) -> Result<ReplicationPolicy, PolicyError> {
        self.policy.validate()?;
        Ok(self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for policy in [
            ReplicationPolicy::conference_page(),
            ReplicationPolicy::personal_home_page(),
            ReplicationPolicy::magazine(),
            ReplicationPolicy::whiteboard(),
            ReplicationPolicy::news_forum(),
        ] {
            policy.validate().unwrap();
        }
    }

    #[test]
    fn table2_values_match_paper() {
        let p = ReplicationPolicy::conference_page();
        assert_eq!(p.model, ObjectModel::Pram);
        assert_eq!(p.propagation, Propagation::Update);
        assert_eq!(p.store_scope, StoreScope::All);
        assert_eq!(p.write_set, WriteSet::Single);
        assert_eq!(p.initiative, TransferInitiative::Push);
        assert_eq!(p.instant, TransferInstant::Lazy);
        assert_eq!(p.access_transfer, AccessTransfer::Full);
        assert_eq!(p.coherence_transfer, CoherenceTransfer::Partial);
        assert_eq!(p.object_outdate, OutdateReaction::Wait);
        assert_eq!(p.client_outdate, OutdateReaction::Demand);
    }

    #[test]
    fn builder_validates_lazy_period() {
        let err = ReplicationPolicy::builder(ObjectModel::Pram)
            .lazy(Duration::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, PolicyError::ZeroLazyPeriod);
    }

    #[test]
    fn invalidate_full_state_is_contradictory() {
        let err = ReplicationPolicy::builder(ObjectModel::Pram)
            .propagation(Propagation::Invalidate)
            .coherence_transfer(CoherenceTransfer::Full)
            .build()
            .unwrap_err();
        assert!(matches!(err, PolicyError::Contradiction(_)));
    }

    #[test]
    fn scope_membership() {
        let p = ReplicationPolicy::builder(ObjectModel::Pram)
            .store_scope(StoreScope::PermanentAndObjectInitiated)
            .build()
            .unwrap();
        assert!(p.in_scope(StoreClass::Permanent));
        assert!(p.in_scope(StoreClass::ObjectInitiated));
        assert!(!p.in_scope(StoreClass::ClientInitiated));
    }

    #[test]
    fn wire_roundtrip() {
        let p = ReplicationPolicy::conference_page();
        let b = globe_wire::to_bytes(&p);
        assert_eq!(globe_wire::from_bytes::<ReplicationPolicy>(&b).unwrap(), p);
    }

    #[test]
    fn display_renders_table2_layout() {
        let s = ReplicationPolicy::conference_page().to_string();
        for needle in [
            "Coherence propagation: update",
            "Store:                 all",
            "Write set:             single",
            "Transfer initiative:   push",
            "lazy (periodic",
            "Access transfer type:  full",
            "Coherence transfer:    partial",
            "Object-outdate:        wait",
            "Client-outdate:        demand",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }
}
