//! Self-adaptive replication policies — the paper's future work (§5):
//! "Future research consists of defining self-adaptive policies by which
//! implementation parameters can be changed dynamically."
//!
//! [`AdaptiveController`] watches an object's write rate over a sliding
//! window and switches between two policies at hysteresis thresholds:
//! the §3.3 rule, automated. Drive it from whatever loop owns the
//! runtime (examples, the workload driver, or an operator task).

use std::collections::VecDeque;
use std::time::Duration;

use globe_net::SimTime;

use crate::ReplicationPolicy;

/// Which of the controller's two regimes is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Seldom-modified: immediate propagation ("an immediate coherence
    /// transfer type avoids unnecessary network traffic").
    Cold,
    /// Often-modified: lazy aggregation ("several updates are
    /// aggregated").
    Hot,
}

/// A two-regime adaptive policy with hysteresis.
///
/// # Examples
///
/// ```
/// use globe_core::{AdaptiveController, ReplicationPolicy, Regime};
/// use globe_net::SimTime;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut controller = AdaptiveController::new(
///     ReplicationPolicy::builder(globe_coherence::ObjectModel::Fifo).immediate().build()?,
///     ReplicationPolicy::builder(globe_coherence::ObjectModel::Fifo)
///         .lazy(Duration::from_secs(2)).build()?,
///     1.0, // go hot above 1 write/s
///     0.2, // go cold below 0.2 write/s
///     Duration::from_secs(10),
/// );
/// assert_eq!(controller.regime(), Regime::Cold);
/// // A burst of writes flips it to the lazy (hot) policy.
/// let mut now = SimTime::ZERO;
/// for _ in 0..30 {
///     now = now + Duration::from_millis(200);
///     controller.record_write(now);
/// }
/// assert!(controller.evaluate(now).is_some());
/// assert_eq!(controller.regime(), Regime::Hot);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    cold_policy: ReplicationPolicy,
    hot_policy: ReplicationPolicy,
    go_hot_above: f64,
    go_cold_below: f64,
    window: Duration,
    writes: VecDeque<SimTime>,
    regime: Regime,
}

impl AdaptiveController {
    /// Creates a controller starting in the cold regime.
    ///
    /// `go_hot_above` and `go_cold_below` are write rates (writes per
    /// second over `window`); keeping them apart provides hysteresis so
    /// the policy does not flap.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are not `go_cold_below <= go_hot_above`
    /// or the window is zero.
    pub fn new(
        cold_policy: ReplicationPolicy,
        hot_policy: ReplicationPolicy,
        go_hot_above: f64,
        go_cold_below: f64,
        window: Duration,
    ) -> Self {
        assert!(
            go_cold_below <= go_hot_above,
            "hysteresis thresholds must not cross"
        );
        assert!(!window.is_zero(), "window must be non-zero");
        AdaptiveController {
            cold_policy,
            hot_policy,
            go_hot_above,
            go_cold_below,
            window,
            writes: VecDeque::new(),
            regime: Regime::Cold,
        }
    }

    /// The active regime.
    pub fn regime(&self) -> Regime {
        self.regime
    }

    /// The policy for the active regime.
    pub fn active_policy(&self) -> &ReplicationPolicy {
        match self.regime {
            Regime::Cold => &self.cold_policy,
            Regime::Hot => &self.hot_policy,
        }
    }

    /// Records one write at `now`.
    pub fn record_write(&mut self, now: SimTime) {
        self.writes.push_back(now);
        self.expire(now);
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&front) = self.writes.front() {
            if now.saturating_since(front) > self.window {
                self.writes.pop_front();
            } else {
                break;
            }
        }
    }

    /// The observed write rate over the window ending at `now`.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.expire(now);
        self.writes.len() as f64 / self.window.as_secs_f64()
    }

    /// Re-evaluates the regime. Returns the policy to install when a
    /// switch is warranted, `None` otherwise. The caller applies it with
    /// [`crate::GlobeSim::set_policy`] (or the TCP runtime's equivalent).
    pub fn evaluate(&mut self, now: SimTime) -> Option<ReplicationPolicy> {
        let rate = self.rate(now);
        let next = match self.regime {
            Regime::Cold if rate > self.go_hot_above => Regime::Hot,
            Regime::Hot if rate < self.go_cold_below => Regime::Cold,
            current => current,
        };
        if next != self.regime {
            self.regime = next;
            Some(self.active_policy().clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use globe_coherence::ObjectModel;

    use super::*;

    fn controller() -> AdaptiveController {
        AdaptiveController::new(
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .immediate()
                .build()
                .unwrap(),
            ReplicationPolicy::builder(ObjectModel::Fifo)
                .lazy(Duration::from_secs(2))
                .build()
                .unwrap(),
            1.0,
            0.2,
            Duration::from_secs(10),
        )
    }

    fn t(secs_tenths: u64) -> SimTime {
        SimTime::from_millis(secs_tenths * 100)
    }

    #[test]
    fn starts_cold_and_heats_up_on_bursts() {
        let mut c = controller();
        assert_eq!(c.regime(), Regime::Cold);
        assert_eq!(c.active_policy().instant, crate::TransferInstant::Immediate);
        // 15 writes in 3 seconds: 1.5 w/s > 1.0.
        for i in 0..15 {
            c.record_write(t(i * 2));
        }
        let switched = c.evaluate(t(30));
        assert!(switched.is_some());
        assert_eq!(c.regime(), Regime::Hot);
        assert_eq!(c.active_policy().instant, crate::TransferInstant::Lazy);
    }

    #[test]
    fn cools_down_when_writes_stop() {
        let mut c = controller();
        for i in 0..15 {
            c.record_write(t(i));
        }
        assert!(c.evaluate(t(15)).is_some());
        assert_eq!(c.regime(), Regime::Hot);
        // 60 seconds of silence: far below the 0.2 w/s floor.
        let switched = c.evaluate(t(15) + Duration::from_secs(60));
        assert!(switched.is_some());
        assert_eq!(c.regime(), Regime::Cold);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut c = controller();
        // 0.5 w/s: between the two thresholds — stays cold.
        for i in 0..5 {
            c.record_write(SimTime::from_secs(i * 2));
        }
        assert!(c.evaluate(SimTime::from_secs(10)).is_none());
        assert_eq!(c.regime(), Regime::Cold);
        // Heat up…
        for i in 0..20 {
            c.record_write(SimTime::from_secs(10) + Duration::from_millis(i * 100));
        }
        assert!(c.evaluate(SimTime::from_secs(12)).is_some());
        // …then the same in-between rate keeps it hot (no flap).
        let mut now = SimTime::from_secs(12);
        for _ in 0..5 {
            now += Duration::from_secs(2);
            c.record_write(now);
        }
        assert!(c.evaluate(now).is_none());
        assert_eq!(c.regime(), Regime::Hot);
    }

    #[test]
    fn rate_is_windowed() {
        let mut c = controller();
        for i in 0..10 {
            c.record_write(SimTime::from_secs(i));
        }
        assert!(c.rate(SimTime::from_secs(10)) > 0.9);
        // Everything expires after a long gap.
        assert_eq!(c.rate(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn crossed_thresholds_panic() {
        let _ = AdaptiveController::new(
            ReplicationPolicy::personal_home_page(),
            ReplicationPolicy::magazine(),
            0.1,
            1.0,
            Duration::from_secs(1),
        );
    }
}
