//! Replica lifecycle: membership views, store health, and the events
//! the failure detector and the lifecycle control plane emit.
//!
//! The paper assumes replicas of a Web object can be installed, moved,
//! and recovered per object at run time (§3.1's layered stores, §5's
//! evolutionary flexibility). This module holds the runtime-agnostic
//! vocabulary for that: every backend implements
//! [`crate::GlobeRuntime::add_store`] /
//! [`crate::GlobeRuntime::remove_store`] /
//! [`crate::GlobeRuntime::restart_store`] in terms of the same
//! join/state-transfer control messages, and surfaces the home store's
//! heartbeat-based failure detector through the same
//! [`MembershipView`]. Detector transitions are additionally recorded
//! into the shared [`crate::MetricsStore`] as [`LifecycleEvent`]s, so a
//! workload can audit when a replica joined, left, went suspect, or
//! came back.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::Duration;

use globe_coherence::{StoreClass, StoreId};
use globe_naming::ObjectId;
use globe_net::{NodeId, SimTime};

/// Default number of heartbeat periods of silence the detector tolerates
/// before marking a peer suspect. Tunable per runtime via
/// [`crate::RuntimeConfig::suspect_after_misses`]: fail-over tests want
/// aggressive detection, WAN deployments want slack against jitter.
pub const SUSPECT_AFTER_MISSES: u32 = 3;

/// Default number of *additional* heartbeat periods a store must stay
/// suspect before unattended fail-over treats it as down and runs the
/// election. Tunable via
/// [`crate::RuntimeConfig::failover_confirm_periods`]; the window gives
/// a flapping store time to answer again before a sequencer moves.
pub const CONFIRM_PERIODS: u32 = 2;

/// Default heartbeat period used by
/// [`crate::RuntimeConfig::heartbeat_period`] when callers enable the
/// detector without choosing a period.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(500);

/// The failure detector's tuning, threaded from
/// [`crate::RuntimeConfig`] into every store replica and every node's
/// [`NodeDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Heartbeat period; `None` disables the detector.
    pub period: Option<Duration>,
    /// Consecutive missed periods before a peer is suspected (at
    /// least 1; lower is more aggressive).
    pub suspect_after: u32,
    /// Whether a confirmed-down *home* store triggers an unattended
    /// election (the winner self-promotes without any driver call).
    pub auto_failover: bool,
    /// Additional periods a store must stay suspect before the detector
    /// confirms it down and (with `auto_failover`) triggers the
    /// election.
    pub confirm_after: u32,
}

impl DetectorConfig {
    /// A disabled detector with the default suspicion threshold.
    pub fn disabled() -> Self {
        DetectorConfig {
            period: None,
            suspect_after: SUSPECT_AFTER_MISSES,
            auto_failover: false,
            confirm_after: CONFIRM_PERIODS,
        }
    }

    /// How long a peer may stay silent before it is suspected.
    pub fn grace(&self, period: Duration) -> Duration {
        period * self.suspect_after.max(1)
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig::disabled()
    }
}

/// What one failure-detector round decided, for the address space to
/// act on: whom to ping, and which health transitions to fan out to the
/// local objects.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct DetectorRound {
    /// Every monitored node, pinged once this round (one stream per
    /// node pair, however many objects the pair shares).
    pub ping: Vec<NodeId>,
    /// Nodes that crossed the suspicion threshold this round.
    pub newly_suspect: Vec<NodeId>,
    /// Suspect nodes that stayed silent for the additional confirmation
    /// periods: with auto-fail-over on, their objects elect now.
    pub confirmed_down: Vec<NodeId>,
}

/// The node-level failure detector: one per address space, shared by
/// every object homed or replicated there.
///
/// PR 3/4 ran one detector per *object* (each home store heartbeated
/// its own peers), so co-homed objects multiplied heartbeat traffic:
/// O(objects × peers) pings per round. This detector consolidates them:
/// the address space collects each local store's monitoring interest
/// (a home store watches its peer nodes, a replica watches its home
/// node), dedupes it into a set of *nodes*, and runs one
/// [`CoherenceMsg::NodePing`](crate::CoherenceMsg::NodePing) /
/// [`CoherenceMsg::NodePong`](crate::CoherenceMsg::NodePong) stream per
/// pair — O(peers) per round — fanning each verdict out to every local
/// object that cares. Any node-scoped frame from a peer counts as proof
/// of life, pings included, so a one-way partition still clears
/// suspicion in both directions when it heals.
///
/// All staleness arithmetic goes through
/// [`SimTime::saturating_since`]: a late or reordered event can hand
/// the detector a timestamp past "now", and that must degrade to a zero
/// age, never abort the runtime.
#[derive(Debug)]
pub struct NodeDetector {
    config: DetectorConfig,
    hb_seq: u64,
    last_heard: HashMap<NodeId, SimTime>,
    /// Rounds each suspect has stayed silent past the suspicion
    /// threshold.
    suspects: HashMap<NodeId, u32>,
    /// Suspects already fanned out as confirmed down (one election
    /// trigger per outage, not one per round).
    confirmed: BTreeSet<NodeId>,
}

impl NodeDetector {
    /// A detector with the given tuning (inert until the owning space
    /// arms its heartbeat timer).
    pub fn new(config: DetectorConfig) -> Self {
        NodeDetector {
            config,
            hb_seq: 0,
            last_heard: HashMap::new(),
            suspects: HashMap::new(),
            confirmed: BTreeSet::new(),
        }
    }

    /// The detector's tuning.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The next heartbeat sequence number (monotonic per node).
    pub fn next_seq(&mut self) -> u64 {
        self.hb_seq += 1;
        self.hb_seq
    }

    /// Records proof of life from `node` (a pong, or any node-scoped
    /// frame it sent). Returns `true` when this clears an active
    /// suspicion — the caller then fans the recovery out to the local
    /// objects.
    pub fn observe(&mut self, node: NodeId, now: SimTime) -> bool {
        self.last_heard.insert(node, now);
        self.confirmed.remove(&node);
        self.suspects.remove(&node).is_some()
    }

    /// One detector round over the currently monitored nodes: advance
    /// suspicion/confirmation state and decide whom to ping. Nodes no
    /// longer monitored are forgotten.
    pub fn round(&mut self, monitored: &BTreeSet<NodeId>, now: SimTime) -> DetectorRound {
        let Some(period) = self.config.period else {
            return DetectorRound::default();
        };
        self.last_heard.retain(|node, _| monitored.contains(node));
        self.suspects.retain(|node, _| monitored.contains(node));
        self.confirmed.retain(|node| monitored.contains(node));
        let grace = self.config.grace(period);
        let mut outcome = DetectorRound::default();
        for &node in monitored {
            match self.last_heard.get(&node) {
                // First round for this node: baseline, do not suspect.
                None => {
                    self.last_heard.insert(node, now);
                }
                Some(&heard) => {
                    // `saturating_since`, never `-`: `heard` may be a
                    // timestamp a reordered or late event recorded past
                    // this round's `now`.
                    if now.saturating_since(heard) > grace {
                        match self.suspects.get_mut(&node) {
                            None => {
                                self.suspects.insert(node, 0);
                                outcome.newly_suspect.push(node);
                                if self.config.confirm_after == 0 && self.confirmed.insert(node) {
                                    outcome.confirmed_down.push(node);
                                }
                            }
                            Some(rounds) => {
                                *rounds += 1;
                                if *rounds >= self.config.confirm_after
                                    && self.confirmed.insert(node)
                                {
                                    outcome.confirmed_down.push(node);
                                }
                            }
                        }
                    }
                }
            }
        }
        outcome.ping = monitored.iter().copied().collect();
        outcome
    }

    /// The detector's current opinion of `node`.
    pub fn health(&self, node: NodeId) -> StoreHealth {
        if self.suspects.contains_key(&node) {
            StoreHealth::Suspect
        } else {
            StoreHealth::Alive
        }
    }

    /// When `node` last proved it was alive (`None` before the first
    /// baseline round).
    pub fn last_heard(&self, node: NodeId) -> Option<SimTime> {
        self.last_heard.get(&node).copied()
    }
}

/// The failure detector's opinion of one replica.
///
/// The detector is heartbeat-based and therefore only *suspects*: a
/// suspect store may be dead, partitioned, or merely slow. A suspect
/// store that answers a later heartbeat is moved back to `Alive` (and a
/// [`LifecycleEventKind::Recovered`] event is recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreHealth {
    /// Answering heartbeats (or the detector is disabled / has not yet
    /// completed a round).
    #[default]
    Alive,
    /// Missed [`SUSPECT_AFTER_MISSES`] consecutive heartbeat periods.
    Suspect,
}

impl fmt::Display for StoreHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreHealth::Alive => "alive",
            StoreHealth::Suspect => "suspect",
        })
    }
}

/// One replica as seen by [`crate::GlobeRuntime::membership`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// The node hosting the replica.
    pub node: NodeId,
    /// The replica's store id.
    pub store: StoreId,
    /// The replica's store class.
    pub class: StoreClass,
    /// Whether this is the home (sequencing) store.
    pub is_home: bool,
    /// The failure detector's current opinion.
    pub health: StoreHealth,
    /// When the home store last heard a heartbeat acknowledgement from
    /// this replica (`None` for the home itself, or before the first
    /// detector round).
    pub last_heard: Option<SimTime>,
}

/// A snapshot of one object's replica membership, assembled from the
/// runtime's object record plus the home store's failure detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    /// The object whose membership this is.
    pub object: ObjectId,
    /// Every current replica, home first.
    pub members: Vec<MemberInfo>,
}

impl MembershipView {
    /// The member on `node`, if one exists.
    pub fn member(&self, node: NodeId) -> Option<&MemberInfo> {
        self.members.iter().find(|m| m.node == node)
    }

    /// Nodes currently marked suspect.
    pub fn suspects(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .filter(|m| m.health == StoreHealth::Suspect)
            .map(|m| m.node)
            .collect()
    }

    /// Whether every member is currently believed alive.
    pub fn all_alive(&self) -> bool {
        self.members.iter().all(|m| m.health == StoreHealth::Alive)
    }
}

impl fmt::Display for MembershipView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "membership of {}:", self.object)?;
        for m in &self.members {
            writeln!(
                f,
                "  {} {} {}{}",
                m.node,
                m.class,
                m.health,
                if m.is_home { " (home)" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// What happened to a replica, as recorded into the metrics store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEventKind {
    /// A replica joined (or rejoined) and was shipped a state transfer.
    Joined,
    /// A replica left gracefully; the home store dropped it as a peer.
    Left,
    /// The failure detector marked a replica suspect.
    Suspected,
    /// A suspect replica answered a heartbeat again.
    Recovered,
    /// A surviving permanent store was elected the object's new home
    /// (sequencer) after the previous home was removed or died.
    Elected,
}

impl LifecycleEventKind {
    /// Short stable name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            LifecycleEventKind::Joined => "joined",
            LifecycleEventKind::Left => "left",
            LifecycleEventKind::Suspected => "suspected",
            LifecycleEventKind::Recovered => "recovered",
            LifecycleEventKind::Elected => "elected",
        }
    }
}

/// One lifecycle transition observed by a home store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// When the home store observed it.
    pub at: SimTime,
    /// The object whose membership changed.
    pub object: ObjectId,
    /// The replica the event concerns.
    pub node: NodeId,
    /// What happened.
    pub kind: LifecycleEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(node: u32, health: StoreHealth) -> MemberInfo {
        MemberInfo {
            node: NodeId::new(node),
            store: StoreId::new(node),
            class: StoreClass::ClientInitiated,
            is_home: false,
            health,
            last_heard: None,
        }
    }

    #[test]
    fn view_reports_suspects() {
        let view = MembershipView {
            object: ObjectId::new(1),
            members: vec![
                member(0, StoreHealth::Alive),
                member(1, StoreHealth::Suspect),
            ],
        };
        assert!(!view.all_alive());
        assert_eq!(view.suspects(), vec![NodeId::new(1)]);
        assert_eq!(
            view.member(NodeId::new(1)).unwrap().health,
            StoreHealth::Suspect
        );
    }

    fn detector(suspect_after: u32, confirm_after: u32) -> NodeDetector {
        NodeDetector::new(DetectorConfig {
            period: Some(Duration::from_millis(100)),
            suspect_after,
            auto_failover: true,
            confirm_after,
        })
    }

    #[test]
    fn detector_suspects_then_confirms_after_the_window() {
        let mut d = detector(2, 2);
        let peer = NodeId::new(1);
        let monitored: BTreeSet<NodeId> = [peer].into_iter().collect();
        // Round 1 baselines; silence then crosses suspicion at +300ms
        // (grace = 2 × 100ms), confirmation two rounds later.
        let r = d.round(&monitored, SimTime::from_millis(0));
        assert!(r.newly_suspect.is_empty());
        let r = d.round(&monitored, SimTime::from_millis(400));
        assert_eq!(r.newly_suspect, vec![peer]);
        assert!(r.confirmed_down.is_empty());
        assert_eq!(d.health(peer), StoreHealth::Suspect);
        let r = d.round(&monitored, SimTime::from_millis(500));
        assert!(r.confirmed_down.is_empty());
        let r = d.round(&monitored, SimTime::from_millis(600));
        assert_eq!(r.confirmed_down, vec![peer]);
        // Confirmation fires once per outage, not once per round.
        let r = d.round(&monitored, SimTime::from_millis(700));
        assert!(r.confirmed_down.is_empty());
    }

    #[test]
    fn detector_flap_resets_the_confirmation_window() {
        let mut d = detector(2, 2);
        let peer = NodeId::new(1);
        let monitored: BTreeSet<NodeId> = [peer].into_iter().collect();
        d.round(&monitored, SimTime::from_millis(0));
        let r = d.round(&monitored, SimTime::from_millis(400));
        assert_eq!(r.newly_suspect, vec![peer]);
        // The peer answers inside the confirmation window: suspicion
        // clears, and the next silence starts the whole ladder over.
        assert!(d.observe(peer, SimTime::from_millis(450)));
        assert_eq!(d.health(peer), StoreHealth::Alive);
        let r = d.round(&monitored, SimTime::from_millis(500));
        assert!(r.newly_suspect.is_empty() && r.confirmed_down.is_empty());
        let r = d.round(&monitored, SimTime::from_millis(800));
        assert_eq!(r.newly_suspect, vec![peer]);
        assert!(r.confirmed_down.is_empty(), "confirmation must restart");
    }

    #[test]
    fn stale_timestamp_never_panics_the_detector() {
        // Regression for the SimTime-subtraction audit: a reordered or
        // late event can record a proof-of-life timestamp *past* the
        // round's `now`; staleness arithmetic must degrade to zero age
        // — the node stays alive — instead of aborting the runtime.
        let mut d = detector(1, 0);
        let peer = NodeId::new(1);
        let monitored: BTreeSet<NodeId> = [peer].into_iter().collect();
        d.observe(peer, SimTime::from_secs(10));
        let r = d.round(&monitored, SimTime::from_millis(1));
        assert!(r.newly_suspect.is_empty());
        assert_eq!(d.health(peer), StoreHealth::Alive);
    }

    #[test]
    fn forgotten_nodes_are_dropped_from_detector_state() {
        let mut d = detector(1, 0);
        let peer = NodeId::new(1);
        let monitored: BTreeSet<NodeId> = [peer].into_iter().collect();
        d.round(&monitored, SimTime::from_millis(0));
        let r = d.round(&monitored, SimTime::from_millis(500));
        assert_eq!(r.newly_suspect, vec![peer]);
        // The last object watching the peer leaves: state evaporates.
        let none = BTreeSet::new();
        let r = d.round(&none, SimTime::from_millis(600));
        assert!(r.ping.is_empty());
        assert_eq!(d.health(peer), StoreHealth::Alive);
        assert_eq!(d.last_heard(peer), None);
    }

    #[test]
    fn event_kinds_have_distinct_names() {
        let kinds = [
            LifecycleEventKind::Joined,
            LifecycleEventKind::Left,
            LifecycleEventKind::Suspected,
            LifecycleEventKind::Recovered,
            LifecycleEventKind::Elected,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
