//! Replica lifecycle: membership views, store health, and the events
//! the failure detector and the lifecycle control plane emit.
//!
//! The paper assumes replicas of a Web object can be installed, moved,
//! and recovered per object at run time (§3.1's layered stores, §5's
//! evolutionary flexibility). This module holds the runtime-agnostic
//! vocabulary for that: every backend implements
//! [`crate::GlobeRuntime::add_store`] /
//! [`crate::GlobeRuntime::remove_store`] /
//! [`crate::GlobeRuntime::restart_store`] in terms of the same
//! join/state-transfer control messages, and surfaces the home store's
//! heartbeat-based failure detector through the same
//! [`MembershipView`]. Detector transitions are additionally recorded
//! into the shared [`crate::MetricsStore`] as [`LifecycleEvent`]s, so a
//! workload can audit when a replica joined, left, went suspect, or
//! came back.

use std::fmt;
use std::time::Duration;

use globe_coherence::{StoreClass, StoreId};
use globe_naming::ObjectId;
use globe_net::{NodeId, SimTime};

/// Default number of heartbeat periods of silence the detector tolerates
/// before marking a peer suspect. Tunable per runtime via
/// [`crate::RuntimeConfig::suspect_after_misses`]: fail-over tests want
/// aggressive detection, WAN deployments want slack against jitter.
pub const SUSPECT_AFTER_MISSES: u32 = 3;

/// Default heartbeat period used by
/// [`crate::RuntimeConfig::heartbeat_period`] when callers enable the
/// detector without choosing a period.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(500);

/// The failure detector's tuning, threaded from
/// [`crate::RuntimeConfig`] into every store replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Heartbeat period; `None` disables the detector.
    pub period: Option<Duration>,
    /// Consecutive missed periods before a peer is suspected (at
    /// least 1; lower is more aggressive).
    pub suspect_after: u32,
}

impl DetectorConfig {
    /// A disabled detector with the default suspicion threshold.
    pub fn disabled() -> Self {
        DetectorConfig {
            period: None,
            suspect_after: SUSPECT_AFTER_MISSES,
        }
    }

    /// How long a peer may stay silent before it is suspected.
    pub fn grace(&self, period: Duration) -> Duration {
        period * self.suspect_after.max(1)
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig::disabled()
    }
}

/// The failure detector's opinion of one replica.
///
/// The detector is heartbeat-based and therefore only *suspects*: a
/// suspect store may be dead, partitioned, or merely slow. A suspect
/// store that answers a later heartbeat is moved back to `Alive` (and a
/// [`LifecycleEventKind::Recovered`] event is recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreHealth {
    /// Answering heartbeats (or the detector is disabled / has not yet
    /// completed a round).
    #[default]
    Alive,
    /// Missed [`SUSPECT_AFTER_MISSES`] consecutive heartbeat periods.
    Suspect,
}

impl fmt::Display for StoreHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreHealth::Alive => "alive",
            StoreHealth::Suspect => "suspect",
        })
    }
}

/// One replica as seen by [`crate::GlobeRuntime::membership`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// The node hosting the replica.
    pub node: NodeId,
    /// The replica's store id.
    pub store: StoreId,
    /// The replica's store class.
    pub class: StoreClass,
    /// Whether this is the home (sequencing) store.
    pub is_home: bool,
    /// The failure detector's current opinion.
    pub health: StoreHealth,
    /// When the home store last heard a heartbeat acknowledgement from
    /// this replica (`None` for the home itself, or before the first
    /// detector round).
    pub last_heard: Option<SimTime>,
}

/// A snapshot of one object's replica membership, assembled from the
/// runtime's object record plus the home store's failure detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    /// The object whose membership this is.
    pub object: ObjectId,
    /// Every current replica, home first.
    pub members: Vec<MemberInfo>,
}

impl MembershipView {
    /// The member on `node`, if one exists.
    pub fn member(&self, node: NodeId) -> Option<&MemberInfo> {
        self.members.iter().find(|m| m.node == node)
    }

    /// Nodes currently marked suspect.
    pub fn suspects(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .filter(|m| m.health == StoreHealth::Suspect)
            .map(|m| m.node)
            .collect()
    }

    /// Whether every member is currently believed alive.
    pub fn all_alive(&self) -> bool {
        self.members.iter().all(|m| m.health == StoreHealth::Alive)
    }
}

impl fmt::Display for MembershipView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "membership of {}:", self.object)?;
        for m in &self.members {
            writeln!(
                f,
                "  {} {} {}{}",
                m.node,
                m.class,
                m.health,
                if m.is_home { " (home)" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// What happened to a replica, as recorded into the metrics store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEventKind {
    /// A replica joined (or rejoined) and was shipped a state transfer.
    Joined,
    /// A replica left gracefully; the home store dropped it as a peer.
    Left,
    /// The failure detector marked a replica suspect.
    Suspected,
    /// A suspect replica answered a heartbeat again.
    Recovered,
    /// A surviving permanent store was elected the object's new home
    /// (sequencer) after the previous home was removed or died.
    Elected,
}

impl LifecycleEventKind {
    /// Short stable name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            LifecycleEventKind::Joined => "joined",
            LifecycleEventKind::Left => "left",
            LifecycleEventKind::Suspected => "suspected",
            LifecycleEventKind::Recovered => "recovered",
            LifecycleEventKind::Elected => "elected",
        }
    }
}

/// One lifecycle transition observed by a home store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// When the home store observed it.
    pub at: SimTime,
    /// The object whose membership changed.
    pub object: ObjectId,
    /// The replica the event concerns.
    pub node: NodeId,
    /// What happened.
    pub kind: LifecycleEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(node: u32, health: StoreHealth) -> MemberInfo {
        MemberInfo {
            node: NodeId::new(node),
            store: StoreId::new(node),
            class: StoreClass::ClientInitiated,
            is_home: false,
            health,
            last_heard: None,
        }
    }

    #[test]
    fn view_reports_suspects() {
        let view = MembershipView {
            object: ObjectId::new(1),
            members: vec![
                member(0, StoreHealth::Alive),
                member(1, StoreHealth::Suspect),
            ],
        };
        assert!(!view.all_alive());
        assert_eq!(view.suspects(), vec![NodeId::new(1)]);
        assert_eq!(
            view.member(NodeId::new(1)).unwrap().health,
            StoreHealth::Suspect
        );
    }

    #[test]
    fn event_kinds_have_distinct_names() {
        let kinds = [
            LifecycleEventKind::Joined,
            LifecycleEventKind::Left,
            LifecycleEventKind::Suspected,
            LifecycleEventKind::Recovered,
            LifecycleEventKind::Elected,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
