//! The real-socket Globe runtime.
//!
//! [`GlobeTcp`] hosts the same address spaces, control objects, and
//! replication protocols as [`crate::GlobeSim`], but over the TCP mesh of
//! `globe-net`: every store runs its event loop on its own thread, and
//! client nodes are driven from the caller's thread. Nothing in the
//! protocol stack changes — that is the point of the sans-IO design (and
//! of the paper's claim that the framework sits on ordinary transports).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use globe_coherence::{ClientId, StoreClass, StoreId};
use globe_naming::{ContactRecord, LocationService, NameSpace, ObjectId};
use globe_net::tcp::{TcpEndpoint, TcpMesh};
use globe_net::{NodeId, RegionId};
use parking_lot::Mutex;

use crate::lifecycle::{MembershipView, StoreHealth};
use crate::plan::{self, ObjectRecord};
use crate::{
    shared_history, AddressSpace, BindOptions, CallError, ClientHandle, CoherenceMsg, CommObject,
    GlobeRuntime, InvocationMessage, ObjectSpec, ReplicationPolicy, RequestId, RuntimeConfig,
    RuntimeError, Semantics, SharedHistory, SharedMetrics,
};

/// The error for live operations attempted without a control endpoint
/// (i.e. before [`GlobeTcp::start`] on a node whose endpoint is gone —
/// which cannot normally happen — or after a failed start).
fn no_control_error() -> RuntimeError {
    RuntimeError::Unsupported(
        "the control endpoint exists only after start(); use the caller-driven \
         endpoint before start()"
            .to_string(),
    )
}

/// The Globe middleware over real TCP sockets on loopback.
///
/// Build phase: add nodes, create objects, bind clients. Then call
/// [`GlobeTcp::start`] to spawn the store event loops, and drive client
/// calls with [`GlobeTcp::read`] / [`GlobeTcp::write`] from the caller's
/// thread. Shut down with [`GlobeTcp::shutdown`].
pub struct GlobeTcp {
    mesh: TcpMesh,
    /// Caller-driven endpoints (client nodes, plus every node before
    /// `start()`), shared so the engine port can pump them from N
    /// load-generator threads. Store nodes leave this map at `start()`
    /// when their event loops take ownership.
    endpoints: HashMap<NodeId, Arc<Mutex<TcpEndpoint>>>,
    spaces: HashMap<NodeId, Arc<Mutex<AddressSpace>>>,
    names: NameSpace,
    locations: LocationService,
    objects: HashMap<ObjectId, ObjectRecord>,
    history: SharedHistory,
    metrics: SharedMetrics,
    threads: Vec<JoinHandle<()>>,
    /// A mesh endpoint that never hosts stores or clients, created by
    /// [`GlobeTcp::start`]: the caller's thread uses it to inject
    /// control-plane messages (policy changes, joins, leaves) into a
    /// live deployment whose node endpoints are owned by their event
    /// loops.
    control: Option<TcpEndpoint>,
    next_client: u32,
    next_store: u32,
    started: bool,
    seed: u64,
    call_timeout: Duration,
    detector: crate::lifecycle::DetectorConfig,
    tuning: crate::StoreTuning,
    storage: crate::storage::StorageSpec,
}

impl GlobeTcp {
    /// Creates an empty TCP runtime with the default configuration.
    pub fn new() -> Self {
        GlobeTcp::with_config(RuntimeConfig::new())
    }

    /// Creates a TCP runtime from a [`RuntimeConfig`] — the construction
    /// path symmetric with [`crate::GlobeSim::with_config`]. The seed is
    /// recorded for any future randomized behavior (retry jitter, replica
    /// choice ties) so both runtimes construct identically.
    pub fn with_config(config: RuntimeConfig) -> Self {
        GlobeTcp {
            mesh: TcpMesh::new(),
            endpoints: HashMap::new(),
            spaces: HashMap::new(),
            names: NameSpace::new(),
            locations: LocationService::new(),
            objects: HashMap::new(),
            history: shared_history(),
            metrics: config.build_metrics(),
            threads: Vec::new(),
            control: None,
            next_client: 0,
            next_store: 0,
            started: false,
            seed: config.seed,
            // Wall-clock time is real here, so the default deadline is
            // much tighter than the simulator's virtual-time budget.
            call_timeout: config.call_timeout.unwrap_or(Duration::from_secs(10)),
            detector: config.detector(),
            tuning: config.tuning(),
            storage: config.storage(),
        }
    }

    /// The determinism seed this runtime was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Maximum wall-clock time a synchronous trait-level call may take.
    pub fn set_call_timeout(&mut self, timeout: Duration) {
        self.call_timeout = timeout;
    }

    /// Adds an address space backed by a real socket endpoint.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the endpoint cannot be created.
    pub fn add_node(&mut self) -> Result<NodeId, RuntimeError> {
        let endpoint = self
            .mesh
            .add_node()
            .map_err(|e| RuntimeError::BadName(e.to_string()))?;
        let node = endpoint.node();
        self.endpoints.insert(node, Arc::new(Mutex::new(endpoint)));
        self.spaces.insert(
            node,
            Arc::new(Mutex::new(AddressSpace::with_scope(
                node,
                self.metrics.clone(),
                self.detector,
                0,
            ))),
        );
        Ok(node)
    }

    /// The live `(is_home, epoch)` claim of the replica at `node`
    /// (spaces sit behind locks, so this works on a live deployment).
    fn replica_claim(&self, object: ObjectId, node: NodeId) -> Option<(bool, u64)> {
        let space = self.spaces.get(&node)?;
        let space = space.lock();
        let store = space.control(object)?.store()?;
        Some((store.is_home(), store.home_epoch()))
    }

    /// Refreshes the driver record from the replicas' own view of the
    /// sequencer, so operations planned after an unattended fail-over
    /// target the elected home.
    fn sync_home(&mut self, object: ObjectId) {
        let Some(record) = self.objects.get(&object) else {
            return;
        };
        let home = plan::effective_home(record, |n| self.replica_claim(object, n));
        if let Some(record) = self.objects.get_mut(&object) {
            record.adopt_home(home);
        }
    }

    /// Shared creation routine behind [`ObjectSpec`].
    fn create_object_impl(
        &mut self,
        name: &str,
        policy: ReplicationPolicy,
        semantics_factory: &mut dyn FnMut() -> Box<dyn Semantics>,
        placement: &[(NodeId, StoreClass)],
    ) -> Result<ObjectId, RuntimeError> {
        assert!(!self.started, "create objects before start()");
        let creation = plan::plan_creation(
            name,
            &policy,
            placement,
            &mut self.names,
            |node| self.spaces.contains_key(&node),
            &mut self.next_store,
        )?;
        let object = creation.object;
        creation.register_locations(&mut self.locations, |_| RegionId::new(0));
        let spaces = &self.spaces;
        let endpoints = &self.endpoints;
        creation.build_replicas(
            &policy,
            semantics_factory,
            &self.history,
            &self.metrics,
            self.detector,
            self.tuning,
            &self.storage,
            |node, replica| {
                // Endpoint before space — the declared lock order; every
                // other runtime path nests the same way. Placement is
                // validated by plan_creation, so a missing entry means
                // the node was never added: leave it dark rather than
                // aborting creation.
                let Some(shared) = endpoints.get(&node) else {
                    return;
                };
                let mut endpoint = shared.lock();
                let mut space = spaces[&node].lock();
                plan::install_store(&mut space, object, replica);
                let mut ctx = endpoint.ctx();
                space.start_object(object, &mut ctx);
            },
        );
        self.objects.insert(object, creation.into_record(policy));
        Ok(object)
    }

    /// Binds a client in `node`'s address space, mirroring
    /// [`crate::GlobeSim::bind`]. The node must stay client-driven (do
    /// not list it as a store placement) so the caller's thread can pump
    /// its events.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object/node/replica is unknown.
    pub fn bind(
        &mut self,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<ClientHandle, RuntimeError> {
        self.sync_home(object);
        let record = self
            .objects
            .get(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let session = plan::plan_session(object, record, opts, &self.locations, RegionId::new(0))?;
        let client = ClientId::new(self.next_client);
        self.next_client += 1;
        let session =
            session.into_session(client, object, self.history.clone(), self.metrics.clone());
        let mut space = self
            .spaces
            .get(&node)
            .ok_or(RuntimeError::UnknownNode(node))?
            .lock();
        plan::install_session(&mut space, object, session);
        Ok(ClientHandle {
            object,
            node,
            client,
        })
    }

    /// Spawns the event loop of every node that hosts a store and is not
    /// named in `client_nodes` (those stay caller-driven), plus the
    /// control endpoint the caller's thread uses for live lifecycle and
    /// policy operations.
    pub fn start(&mut self, client_nodes: &[NodeId]) {
        self.started = true;
        if self.control.is_none() {
            // Without a control endpoint every live lifecycle and policy
            // operation is broken; fail loudly here (like the thread
            // spawns below) instead of surfacing a misleading error from
            // a later set_policy/add_store.
            #[allow(clippy::expect_used)]
            let control = self
                .mesh
                .add_node()
                // lint: allow(panic) — deliberate fail-loud at start(): without a control endpoint every later lifecycle call would fail confusingly
                .expect("failed to create the control endpoint");
            self.control = Some(control);
        }
        let to_spawn: Vec<NodeId> = self
            .endpoints
            .keys()
            .copied()
            .filter(|n| !client_nodes.contains(n))
            .collect();
        for node in to_spawn {
            let Some(shared) = self.endpoints.remove(&node) else {
                continue;
            };
            // Nothing else can hold a reference before start(); if an
            // engine port somehow does, the node stays caller-driven.
            let endpoint = match Arc::try_unwrap(shared) {
                Ok(mutex) => mutex.into_inner(),
                Err(shared) => {
                    self.endpoints.insert(node, shared);
                    continue;
                }
            };
            let space = Arc::clone(&self.spaces[&node]);
            // A refused thread leaves the node dark instead of crashing
            // the deployment; the mesh counts it (`fault_stats`) and the
            // failure surfaces through the shared metrics.
            match endpoint.spawn_loop(move |event, ctx| {
                space.lock().handle_event(event, ctx);
            }) {
                Ok(handle) => self.threads.push(handle),
                Err(_) => continue,
            }
        }
    }

    /// Sends one control-plane message from the caller's thread into the
    /// live mesh.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unsupported`] when no control endpoint
    /// exists (i.e. [`GlobeTcp::start`] has not run).
    fn control_send(
        &mut self,
        object: ObjectId,
        to: NodeId,
        msg: &CoherenceMsg,
    ) -> Result<(), RuntimeError> {
        let endpoint = self.control.as_mut().ok_or_else(no_control_error)?;
        let comm = CommObject::new(object, self.metrics.clone());
        let mut ctx = endpoint.ctx();
        comm.send(&mut ctx, to, msg);
        Ok(())
    }

    /// Whether a lifecycle operation targeting `node` has a way to act:
    /// either the node's endpoint is still caller-driven (direct path)
    /// or the control endpoint exists (relay path). Checked *before*
    /// mutating any record, so a refused operation leaves the runtime
    /// untouched.
    fn ensure_lifecycle_path(&self, node: NodeId) -> Result<(), RuntimeError> {
        if self.endpoints.contains_key(&node) || self.control.is_some() {
            Ok(())
        } else {
            Err(no_control_error())
        }
    }

    /// Arms a freshly installed replica and has it join the object:
    /// directly when the node is still caller-driven, or by relaying a
    /// `JoinRequest` through the control endpoint when the node's event
    /// loop owns its endpoint (the home's `StateTransfer` reply then
    /// arms the replica's timers on its own thread).
    fn activate_replica(
        &mut self,
        object: ObjectId,
        node: NodeId,
        store_id: StoreId,
        class: StoreClass,
    ) -> Result<(), RuntimeError> {
        if let Some(endpoint) = self.endpoints.get(&node) {
            let mut endpoint = endpoint.lock();
            let mut ctx = endpoint.ctx();
            let mut space = self.spaces[&node].lock();
            space.start_object(object, &mut ctx);
            if let Some(store) = space.control_mut(object).and_then(|c| c.store_mut()) {
                store.join(&mut ctx);
            }
            Ok(())
        } else {
            let home = self
                .objects
                .get(&object)
                .ok_or(RuntimeError::UnknownObject(object))?
                .home_node;
            // A replica that recovered from its local WAL names its
            // applied vector in the relayed join, so the home ships
            // only the log suffix it missed.
            let version = self
                .spaces
                .get(&node)
                .and_then(|space| {
                    space
                        .lock()
                        .control(object)
                        .and_then(|c| c.store().map(|s| s.applied().clone()))
                })
                .unwrap_or_default();
            self.control_send(
                object,
                home,
                &CoherenceMsg::JoinRequest {
                    node,
                    store: store_id,
                    class,
                    version,
                },
            )
        }
    }

    /// Installs an additional store at run time — including on a live
    /// deployment, where the join is relayed through the control
    /// endpoint and the home store ships the state transfer.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or node is unknown, or
    /// the node already hosts a replica.
    pub fn add_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        class: StoreClass,
        semantics: Box<dyn Semantics>,
    ) -> Result<StoreId, RuntimeError> {
        if !self.spaces.contains_key(&node) {
            return Err(RuntimeError::UnknownNode(node));
        }
        self.ensure_lifecycle_path(node)?;
        self.sync_home(object);
        let (store_id, replica) = plan::plan_add_store(
            self.objects
                .get_mut(&object)
                .ok_or(RuntimeError::UnknownObject(object))?,
            node,
            class,
            &mut self.next_store,
            plan::ReplicaParts {
                object,
                semantics,
                history: &self.history,
                metrics: &self.metrics,
                detector: self.detector,
                tuning: self.tuning,
                storage: self.storage.clone(),
            },
        )?;
        self.locations.register(
            object,
            ContactRecord {
                node,
                class,
                region: RegionId::new(0),
            },
        );
        plan::install_store(&mut self.spaces[&node].lock(), object, replica);
        self.activate_replica(object, node, store_id, class)?;
        Ok(store_id)
    }

    /// Sends one coherence message to `to`, preferring `from`'s own
    /// still-caller-driven endpoint and falling back to the control
    /// endpoint on a live deployment.
    fn send_from_or_control(
        &mut self,
        object: ObjectId,
        from: NodeId,
        to: NodeId,
        msg: &CoherenceMsg,
    ) -> Result<(), RuntimeError> {
        if let Some(endpoint) = self.endpoints.get(&from) {
            let mut endpoint = endpoint.lock();
            let comm = CommObject::new(object, self.metrics.clone());
            let mut ctx = endpoint.ctx();
            comm.send(&mut ctx, to, msg);
            Ok(())
        } else {
            self.control_send(object, to, msg)
        }
    }

    /// Points every bound session of `object` away from a failed home.
    /// Sessions sit behind the space locks, so this works on a live
    /// deployment too.
    fn reroute_sessions(
        &mut self,
        object: ObjectId,
        old_home: NodeId,
        new_home: NodeId,
        new_store: StoreId,
        reroute_reads: bool,
    ) {
        for space in self.spaces.values() {
            if let Some(control) = space.lock().control_mut(object) {
                control.reroute_sessions(old_home, new_home, new_store, reroute_reads);
            }
        }
    }

    /// Removes the replica at `node` gracefully, telling the home store
    /// to stop propagating and heartbeating to it. Removing the *home*
    /// store elects a surviving permanent store as the new sequencer and
    /// hands it the retiring home's write log — on a live deployment the
    /// hand-off travels through the control endpoint.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or replica is unknown,
    /// or the replica is the home store and no surviving permanent store
    /// can take over.
    pub fn remove_store(&mut self, object: ObjectId, node: NodeId) -> Result<(), RuntimeError> {
        self.ensure_lifecycle_path(node)?;
        self.sync_home(object);
        let view = self.membership(object).ok();
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let home = record.home_node;
        let (_, failover) = plan::plan_remove_store(record, node, view.as_ref())?;
        self.locations.unregister(object, node);
        let store = self
            .spaces
            .get(&node)
            .ok_or(RuntimeError::UnknownNode(node))?
            .lock()
            .control_mut(object)
            .and_then(|control| control.take_store());
        match failover {
            None => self.send_from_or_control(object, node, home, &CoherenceMsg::Leave { node }),
            Some(f) => {
                // The store's state sits behind the space lock even on a
                // live deployment, so the retiring home's write log is
                // captured directly and shipped to the winner.
                let msg = f.handoff_msg(store.as_ref());
                self.send_from_or_control(object, node, f.new_home, &msg)?;
                self.reroute_sessions(object, f.old_home, f.new_home, f.new_home_store, true);
                Ok(())
            }
        }
    }

    /// Crash-and-recovers the replica at `node` through the lifecycle
    /// state-transfer protocol — live deployments included. Restarting
    /// the *home* store triggers a fail-over: the elected permanent
    /// store promotes itself from its own write log (`ElectRequest`, via
    /// the control endpoint on a live deployment) and the old home
    /// rejoins as an ordinary replica.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or replica is unknown,
    /// or the replica is the home store and no surviving permanent store
    /// can take over.
    pub fn restart_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        fresh_semantics: Box<dyn Semantics>,
    ) -> Result<(), RuntimeError> {
        self.ensure_lifecycle_path(node)?;
        self.sync_home(object);
        let view = self.membership(object).ok();
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let (replica, failover) = plan::plan_restart_store(
            record,
            node,
            view.as_ref(),
            plan::ReplicaParts {
                object,
                semantics: fresh_semantics,
                history: &self.history,
                metrics: &self.metrics,
                detector: self.detector,
                tuning: self.tuning,
                storage: self.storage.clone(),
            },
        )?;
        let class = replica.class();
        let store_id = replica.store_id();
        self.spaces
            .get(&node)
            .ok_or(RuntimeError::UnknownNode(node))?
            .lock()
            .control_mut(object)
            .ok_or(RuntimeError::NoSuchReplica)?
            .set_store(replica);
        if let Some(f) = &failover {
            // Promote the winner before the fresh replica's join reaches
            // it (both ride the same connection, so ordering holds).
            self.send_from_or_control(object, node, f.new_home, &f.elect_msg())?;
            self.reroute_sessions(object, f.old_home, f.new_home, f.new_home_store, false);
        }
        self.activate_replica(object, node, store_id, class)
    }

    /// A snapshot of the object's membership plus the home store's
    /// failure-detector verdicts (works on a live deployment: the home
    /// replica's state sits behind the space lock, not captive on its
    /// event-loop thread).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object is unknown.
    pub fn membership(&self, object: ObjectId) -> Result<MembershipView, RuntimeError> {
        let record = self
            .objects
            .get(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        // The record may predate an unattended election: follow the
        // replicas' own claim of where the sequencer lives.
        let (home_node, _, _) = plan::effective_home(record, |n| self.replica_claim(object, n));
        let home_space = self.spaces.get(&home_node);
        Ok(plan::membership_view(object, record, home_node, |peer| {
            home_space
                .map(|s| s.lock().node_health(peer))
                .unwrap_or((StoreHealth::Alive, None))
        }))
    }

    /// Fault injection: isolates (or heals) the node's address space —
    /// see [`GlobeRuntime::partition_node`]. Works on a live deployment:
    /// the flag sits behind the space lock the event loop takes for
    /// every event.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the node is unknown.
    pub fn partition_node(&mut self, node: NodeId, isolated: bool) -> Result<(), RuntimeError> {
        self.spaces
            .get(&node)
            .ok_or(RuntimeError::UnknownNode(node))?
            .lock()
            .set_partitioned(isolated);
        Ok(())
    }

    fn pump_client(
        &mut self,
        handle: &ClientHandle,
        req: RequestId,
        timeout: Duration,
    ) -> Result<Bytes, CallError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut space = self.spaces[&handle.node].lock();
                if let Some(result) = space
                    .control_mut(handle.object)
                    .and_then(|c| c.take_result(handle.client, req))
                {
                    return result;
                }
            }
            if Instant::now() > deadline {
                return Err(CallError::TimedOut);
            }
            let endpoint = self
                .endpoints
                .get(&handle.node)
                .ok_or(CallError::NotBound)?;
            let mut endpoint = endpoint.lock();
            if let Some(event) = endpoint.recv_timeout(Duration::from_millis(20)) {
                let mut ctx = endpoint.ctx();
                self.spaces[&handle.node]
                    .lock()
                    .handle_event(event, &mut ctx);
            }
        }
    }

    /// Executes a read over real sockets, blocking up to an explicit
    /// `timeout` (the trait-level [`GlobeRuntime::read`] uses the
    /// configured default instead).
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] on failure or timeout.
    pub fn read_timeout(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
        timeout: Duration,
    ) -> Result<Bytes, CallError> {
        let req = self.issue_call(handle, inv, true)?;
        self.pump_client(handle, req, timeout)
    }

    /// Issues one client call on the caller-driven node, returning its
    /// request id without waiting for the reply.
    fn issue_call(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
        is_read: bool,
    ) -> Result<RequestId, CallError> {
        let endpoint = self
            .endpoints
            .get(&handle.node)
            .ok_or(CallError::NotBound)?;
        let mut endpoint = endpoint.lock();
        let mut ctx = endpoint.ctx();
        let mut space = self.spaces[&handle.node].lock();
        let control = space
            .control_mut(handle.object)
            .ok_or(CallError::NotBound)?;
        if is_read {
            control.client_read(handle.client, inv, &mut ctx)
        } else {
            control.client_write(handle.client, inv, &mut ctx)
        }
    }

    /// Executes a write over real sockets, blocking up to an explicit
    /// `timeout` (the trait-level [`GlobeRuntime::write`] uses the
    /// configured default instead).
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] on failure or timeout.
    pub fn write_timeout(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
        timeout: Duration,
    ) -> Result<Bytes, CallError> {
        let req = self.issue_call(handle, inv, false)?;
        self.pump_client(handle, req, timeout)
    }

    /// Changes an object's replication policy at run time, mirroring
    /// [`crate::GlobeSim::set_policy`]. The home store broadcasts the
    /// new policy to every replica. On a live deployment (after
    /// [`GlobeTcp::start`]) the change rides the control plane: a
    /// `PolicyUpdate` control message is delivered to the home node's
    /// event loop, which adopts and broadcasts it.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for unknown objects or invalid
    /// policies.
    pub fn set_policy(
        &mut self,
        object: ObjectId,
        policy: ReplicationPolicy,
    ) -> Result<(), RuntimeError> {
        policy
            .validate()
            .map_err(|e| RuntimeError::BadPolicy(e.to_string()))?;
        self.sync_home(object);
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let home = record.home_node;
        if let Some(shared) = self.endpoints.get(&home) {
            // Build phase: the home endpoint is still caller-driven, so
            // apply the change directly.
            record.policy = policy.clone();
            let mut endpoint = shared.lock();
            let mut ctx = endpoint.ctx();
            if let Some(store) = self.spaces[&home]
                .lock()
                .control_mut(object)
                .and_then(|c| c.store_mut())
            {
                store.set_policy(policy, &mut ctx);
            }
            Ok(())
        } else if self.control.is_some() {
            // Commit only once the delivery path is known good, so a
            // refused change leaves the record untouched.
            record.policy = policy.clone();
            self.control_send(object, home, &CoherenceMsg::PolicyUpdate { policy })
        } else {
            Err(no_control_error())
        }
    }

    /// The shared execution history.
    pub fn history(&self) -> SharedHistory {
        self.history.clone()
    }

    /// The shared metrics. Transport faults counted by the mesh on its
    /// own threads (failed sends, peer disconnects) are mirrored into
    /// the store here, so deployments observe them alongside the
    /// malformed frames dropped on the receive path.
    pub fn metrics(&self) -> SharedMetrics {
        let faults = self.mesh.fault_stats();
        self.metrics.lock().sync_transport(
            faults.send_errors,
            faults.disconnects,
            faults.rejected_frames,
            faults.spawn_failures,
        );
        self.metrics.clone()
    }

    /// Stops the mesh; store threads exit on their next poll.
    pub fn shutdown(&mut self) {
        self.mesh.shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// The TCP runtime's [`crate::EnginePort`]: each caller-driven client
/// endpoint sits behind its own mutex, so engine threads driving
/// *different* client nodes issue and pump fully in parallel — the
/// lock order (endpoint, then space) matches every trait-level path.
struct TcpPort {
    endpoints: HashMap<NodeId, Arc<Mutex<TcpEndpoint>>>,
    spaces: HashMap<NodeId, Arc<Mutex<AddressSpace>>>,
}

impl crate::EnginePort for TcpPort {
    fn issue(
        &self,
        handle: &ClientHandle,
        inv: InvocationMessage,
        is_read: bool,
    ) -> Result<RequestId, CallError> {
        let endpoint = self
            .endpoints
            .get(&handle.node)
            .ok_or(CallError::NotBound)?;
        let mut endpoint = endpoint.lock();
        let mut ctx = endpoint.ctx();
        let mut space = self
            .spaces
            .get(&handle.node)
            .ok_or(CallError::NotBound)?
            .lock();
        let control = space
            .control_mut(handle.object)
            .ok_or(CallError::NotBound)?;
        if is_read {
            control.client_read(handle.client, inv, &mut ctx)
        } else {
            control.client_write(handle.client, inv, &mut ctx)
        }
    }

    fn try_result(
        &self,
        handle: &ClientHandle,
        req: RequestId,
    ) -> Option<Result<Bytes, CallError>> {
        // Client nodes are caller-driven: progress requires draining any
        // events the mesh has delivered to this node's endpoint.
        let endpoint = self.endpoints.get(&handle.node)?;
        let mut endpoint = endpoint.lock();
        while let Some(event) = endpoint.recv_timeout(Duration::ZERO) {
            let mut ctx = endpoint.ctx();
            self.spaces
                .get(&handle.node)?
                .lock()
                .handle_event(event, &mut ctx);
        }
        drop(endpoint);
        let mut space = self.spaces.get(&handle.node)?.lock();
        space
            .control_mut(handle.object)?
            .take_result(handle.client, req)
    }
}

impl GlobeRuntime for GlobeTcp {
    fn add_node(&mut self) -> Result<NodeId, RuntimeError> {
        GlobeTcp::add_node(self)
    }

    fn create_object(&mut self, spec: ObjectSpec) -> Result<ObjectId, RuntimeError> {
        let (path, policy, mut factory, placement) = spec.into_parts();
        self.create_object_impl(&path, policy, &mut *factory, &placement)
    }

    fn bind(
        &mut self,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<ClientHandle, RuntimeError> {
        GlobeTcp::bind(self, object, node, opts)
    }

    fn issue_read(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError> {
        self.issue_call(handle, inv, true)
    }

    fn issue_write(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError> {
        self.issue_call(handle, inv, false)
    }

    fn result(
        &mut self,
        handle: &ClientHandle,
        req: RequestId,
    ) -> Option<Result<Bytes, CallError>> {
        // Pump any already-arrived events for the caller-driven node
        // before checking, so polling makes progress.
        if let Some(endpoint) = self.endpoints.get(&handle.node) {
            let mut endpoint = endpoint.lock();
            while let Some(event) = endpoint.recv_timeout(Duration::ZERO) {
                let mut ctx = endpoint.ctx();
                self.spaces[&handle.node]
                    .lock()
                    .handle_event(event, &mut ctx);
            }
        }
        let mut space = self.spaces.get(&handle.node)?.lock();
        space
            .control_mut(handle.object)?
            .take_result(handle.client, req)
    }

    fn read(&mut self, handle: &ClientHandle, inv: InvocationMessage) -> Result<Bytes, CallError> {
        self.read_timeout(handle, inv, self.call_timeout)
    }

    fn write(&mut self, handle: &ClientHandle, inv: InvocationMessage) -> Result<Bytes, CallError> {
        self.write_timeout(handle, inv, self.call_timeout)
    }

    fn set_policy(
        &mut self,
        object: ObjectId,
        policy: ReplicationPolicy,
    ) -> Result<(), RuntimeError> {
        GlobeTcp::set_policy(self, object, policy)
    }

    fn add_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        class: StoreClass,
        semantics: Box<dyn Semantics>,
    ) -> Result<StoreId, RuntimeError> {
        GlobeTcp::add_store(self, object, node, class, semantics)
    }

    fn remove_store(&mut self, object: ObjectId, node: NodeId) -> Result<(), RuntimeError> {
        GlobeTcp::remove_store(self, object, node)
    }

    fn restart_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        fresh_semantics: Box<dyn Semantics>,
    ) -> Result<(), RuntimeError> {
        GlobeTcp::restart_store(self, object, node, fresh_semantics)
    }

    fn partition_node(&mut self, node: NodeId, isolated: bool) -> Result<(), RuntimeError> {
        GlobeTcp::partition_node(self, node, isolated)
    }

    fn membership(&self, object: ObjectId) -> Result<MembershipView, RuntimeError> {
        GlobeTcp::membership(self, object)
    }

    fn history(&self) -> SharedHistory {
        GlobeTcp::history(self)
    }

    fn metrics(&self) -> SharedMetrics {
        GlobeTcp::metrics(self)
    }

    fn start(&mut self, client_nodes: &[NodeId]) {
        GlobeTcp::start(self, client_nodes);
    }

    fn shutdown(&mut self) {
        GlobeTcp::shutdown(self);
    }

    fn settle(&mut self, d: Duration) {
        // Store threads run in real time; pump the caller-driven client
        // nodes while the wall clock advances.
        let deadline = Instant::now() + d;
        let nodes: Vec<NodeId> = self.endpoints.keys().copied().collect();
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let mut handled = false;
            for &node in &nodes {
                let Some(shared) = self.endpoints.get(&node) else {
                    continue;
                };
                let mut endpoint = shared.lock();
                if let Some(event) = endpoint.recv_timeout(Duration::ZERO) {
                    let mut ctx = endpoint.ctx();
                    self.spaces[&node].lock().handle_event(event, &mut ctx);
                    handled = true;
                }
            }
            if !handled {
                std::thread::sleep(
                    deadline
                        .saturating_duration_since(now)
                        .min(Duration::from_millis(5)),
                );
            }
        }
    }

    fn engine_port(&mut self) -> Option<Arc<dyn crate::EnginePort>> {
        // Only caller-driven endpoints remain in the map after start();
        // those are exactly the client nodes the engine may drive. The
        // store event loops (the source of progress) must already be
        // running for the port to be useful.
        Some(Arc::new(TcpPort {
            endpoints: self.endpoints.clone(),
            spaces: self.spaces.clone(),
        }))
    }
}

impl Default for GlobeTcp {
    fn default() -> Self {
        GlobeTcp::new()
    }
}

impl Drop for GlobeTcp {
    fn drop(&mut self) {
        self.mesh.shutdown();
    }
}

impl std::fmt::Debug for GlobeTcp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobeTcp")
            .field("nodes", &self.spaces.len())
            .field("objects", &self.objects.len())
            .field("started", &self.started)
            .finish()
    }
}
