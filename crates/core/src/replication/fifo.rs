//! The FIFO replication object.
//!
//! "The FIFO coherence model is an optimization of the PRAM model. In
//! this case, a write request from a client is honored if it is more
//! recent than the latest write from that same client. Otherwise, the
//! request is simply ignored. This model will prove better performance
//! when clients overwrite a Web object instead of performing incremental
//! updates" (§3.2.1).

use globe_coherence::ObjectModel;

use super::{Readiness, RecordMode, ReplicaView, ReplicationObject};
use crate::LoggedWrite;

/// FIFO (overwrite) coherence: only the newest write per client matters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoReplication;

impl ReplicationObject for FifoReplication {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn model(&self) -> ObjectModel {
        ObjectModel::Fifo
    }

    fn readiness(&self, view: &ReplicaView<'_>, write: &LoggedWrite) -> Readiness {
        if write.wid.seq <= view.applied.get(write.wid.client) {
            // Outrun by a more recent write from the same client: ignore.
            return Readiness::Stale;
        }
        if !view.applied.dominates(&write.deps) {
            return Readiness::Buffer;
        }
        Readiness::Ready
    }

    fn record_mode(&self) -> RecordMode {
        // Jumping from seq 1 to seq 5 is the whole point: 2–4 were
        // overwritten and will be ignored if they ever arrive.
        RecordMode::Advance
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use globe_coherence::{ClientId, VersionVector, WriteId};

    use super::super::testutil::{view, write};
    use super::*;

    #[test]
    fn newer_write_skips_gaps() {
        let repl = FifoReplication;
        let applied = VersionVector::new();
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 5)),
            Readiness::Ready,
            "fifo jumps straight to the newest write"
        );
    }

    #[test]
    fn older_write_is_ignored() {
        let repl = FifoReplication;
        let mut applied = VersionVector::new();
        applied.advance_to(WriteId::new(ClientId::new(1), 5));
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 3)),
            Readiness::Stale,
            "late write 3 arrives after 5 was applied: simply ignored"
        );
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 6)),
            Readiness::Ready
        );
    }

    #[test]
    fn record_mode_advances() {
        assert_eq!(FifoReplication.record_mode(), RecordMode::Advance);
    }
}
