//! Replication sub-objects: one pluggable implementation per coherence
//! model.
//!
//! "It is important to note that the replication objects all have the
//! same interface. This means that the flow of control within the local
//! object is more or less the same everywhere. However, the internals of
//! the replication objects differ as each implements its own part of a
//! coherence protocol" (§4.2). The shared interface is
//! [`ReplicationObject`]; the internals are the five implementations in
//! this module. The store engine ([`crate::StoreReplica`]) drives them
//! and handles the mechanics that Table 1 parameterizes (push/pull,
//! immediate/lazy, update/invalidate, partial/full).

mod causal;
mod eventual;
mod fifo;
mod pram;
mod sequential;

pub use causal::CausalReplication;
pub use eventual::EventualReplication;
pub use fifo::FifoReplication;
pub use pram::PramReplication;
pub use sequential::SequentialReplication;

use std::collections::BTreeSet;

use globe_coherence::{ObjectModel, VersionVector, WriteId};

use crate::LoggedWrite;

/// Verdict on whether a replica may apply an incoming write now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// Apply immediately.
    Ready,
    /// Hold until prerequisites arrive ("the update request is buffered
    /// and the store waits until the next one", §4.2).
    Buffer,
    /// Already seen or superseded; drop ("the request is simply
    /// ignored", §3.2.1 on FIFO).
    Stale,
}

/// How applied writes are folded into the replica's version vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordMode {
    /// Exact bookkeeping: contiguous prefix plus an explicit set of
    /// out-of-band writes (PRAM, causal, sequential, eventual).
    Exact,
    /// Jump-ahead bookkeeping: skipped writes count as seen because they
    /// were overwritten (FIFO).
    Advance,
}

/// A replica's ordering state, as visible to a replication object when it
/// judges an incoming write.
#[derive(Debug)]
pub struct ReplicaView<'a> {
    /// Contiguous-prefix version vector of applied writes.
    pub applied: &'a VersionVector,
    /// Writes applied out of contiguous order (eventual model).
    pub extra_seen: &'a BTreeSet<WriteId>,
    /// Next sequencer order number expected (sequential model).
    pub next_order: u64,
}

impl ReplicaView<'_> {
    /// Whether the replica has already incorporated `wid`.
    pub fn has_seen(&self, wid: WriteId) -> bool {
        self.applied.covers(wid) || self.extra_seen.contains(&wid)
    }
}

/// The uniform interface of every replication sub-object.
///
/// Implementations are deliberately *stateless*: all ordering state lives
/// in the store engine, so strategies can be swapped at run time without
/// state migration ("the standardized interfaces offered by our model
/// allow us to dynamically update strategies", §3.2.2).
pub trait ReplicationObject: Send {
    /// Short protocol name for diagnostics.
    fn name(&self) -> &'static str;

    /// The coherence model this object implements.
    fn model(&self) -> ObjectModel;

    /// Judges an incoming write against the replica's current state.
    fn readiness(&self, view: &ReplicaView<'_>, write: &LoggedWrite) -> Readiness;

    /// How the store engine should record applied writes.
    fn record_mode(&self) -> RecordMode {
        RecordMode::Exact
    }

    /// Whether the value of `new` should reach the semantics object given
    /// the page's current last writer (eventual consistency resolves
    /// concurrent writes by last-writer-wins; ordering models apply in
    /// arrival order).
    fn should_dispatch(&self, current: Option<WriteId>, new: WriteId) -> bool {
        let _ = (current, new);
        true
    }

    /// Whether the home store assigns a global total order to writes.
    fn orders_writes(&self) -> bool {
        false
    }

    /// Whether a non-home store may accept client writes locally and
    /// relay them to the home store asynchronously. This is the §3.2.1
    /// efficiency claim: PRAM-family models need no global coordination,
    /// so a nearby replica can acknowledge a write immediately; the
    /// sequential model must take the sequencer round-trip.
    fn accepts_local_writes(&self) -> bool {
        !self.orders_writes()
    }

    /// Whether replicas should run periodic anti-entropy pulls regardless
    /// of the configured transfer initiative.
    fn wants_anti_entropy(&self) -> bool {
        false
    }
}

/// Instantiates the replication object for a coherence model.
///
/// # Examples
///
/// ```
/// use globe_coherence::ObjectModel;
/// use globe_core::replication::replication_for;
///
/// let repl = replication_for(ObjectModel::Pram);
/// assert_eq!(repl.name(), "pram");
/// ```
pub fn replication_for(model: ObjectModel) -> Box<dyn ReplicationObject> {
    match model {
        ObjectModel::Sequential => Box::new(SequentialReplication),
        ObjectModel::Pram => Box::new(PramReplication),
        ObjectModel::Fifo => Box::new(FifoReplication),
        ObjectModel::Causal => Box::new(CausalReplication),
        ObjectModel::Eventual => Box::new(EventualReplication),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use bytes::Bytes;
    use globe_coherence::ClientId;

    use crate::{InvocationMessage, MethodId};

    use super::*;

    pub fn write(client: u32, seq: u64) -> LoggedWrite {
        LoggedWrite {
            wid: WriteId::new(ClientId::new(client), seq),
            inv: InvocationMessage::new(MethodId::new(1), Bytes::new()),
            deps: VersionVector::new(),
            page: Some("p".to_string()),
            order: None,
        }
    }

    pub fn write_with_deps(client: u32, seq: u64, deps: &[(u32, u64)]) -> LoggedWrite {
        let mut w = write(client, seq);
        w.deps = deps.iter().map(|&(c, s)| (ClientId::new(c), s)).collect();
        w
    }

    pub fn view<'a>(
        applied: &'a VersionVector,
        extra: &'a BTreeSet<WriteId>,
        next_order: u64,
    ) -> ReplicaView<'a> {
        ReplicaView {
            applied,
            extra_seen: extra,
            next_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_matches_models() {
        for &model in ObjectModel::ALL {
            let repl = replication_for(model);
            assert_eq!(repl.model(), model);
            assert!(!repl.name().is_empty());
        }
    }

    #[test]
    fn only_sequential_orders_writes() {
        for &model in ObjectModel::ALL {
            let repl = replication_for(model);
            assert_eq!(repl.orders_writes(), model == ObjectModel::Sequential);
        }
    }

    #[test]
    fn only_eventual_wants_anti_entropy() {
        for &model in ObjectModel::ALL {
            let repl = replication_for(model);
            assert_eq!(repl.wants_anti_entropy(), model == ObjectModel::Eventual);
        }
    }
}
