//! The causal replication object.
//!
//! "The ordering of operations must be guaranteed only between causally
//! related operations. For example, such a coherence model could be
//! applied to a Web forum, like a newsgroup, where a participant's
//! reaction makes sense only if the audience has received the message
//! that triggered the reaction. This ordering must be ensured at every
//! store" (§3.2.1).
//!
//! Writes carry a dependency vector assembled by the writer's proxy (its
//! observed version merged over every reply it has seen, plus its own
//! previous write). A store applies a write only once its applied vector
//! dominates those dependencies, buffering otherwise — vector-clock
//! causal delivery.

use globe_coherence::ObjectModel;

use super::{Readiness, ReplicaView, ReplicationObject};
use crate::LoggedWrite;

/// Causal coherence via dependency-vector delivery.
#[derive(Debug, Clone, Copy, Default)]
pub struct CausalReplication;

impl ReplicationObject for CausalReplication {
    fn name(&self) -> &'static str {
        "causal"
    }

    fn model(&self) -> ObjectModel {
        ObjectModel::Causal
    }

    fn readiness(&self, view: &ReplicaView<'_>, write: &LoggedWrite) -> Readiness {
        if view.has_seen(write.wid) {
            return Readiness::Stale;
        }
        if view.applied.dominates(&write.deps) {
            Readiness::Ready
        } else {
            Readiness::Buffer
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use globe_coherence::{ClientId, VersionVector, WriteId};

    use super::super::testutil::{view, write_with_deps};
    use super::*;

    #[test]
    fn reaction_waits_for_article() {
        let repl = CausalReplication;
        let applied = VersionVector::new();
        let extra = BTreeSet::new();
        // Client 2's reaction depends on client 1's article.
        let reaction = write_with_deps(2, 1, &[(1, 1)]);
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &reaction),
            Readiness::Buffer
        );
        let mut applied = applied;
        applied.record(WriteId::new(ClientId::new(1), 1));
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &reaction),
            Readiness::Ready
        );
    }

    #[test]
    fn concurrent_writes_apply_in_any_order() {
        let repl = CausalReplication;
        let applied = VersionVector::new();
        let extra = BTreeSet::new();
        let a = write_with_deps(1, 1, &[]);
        let b = write_with_deps(2, 1, &[]);
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &a),
            Readiness::Ready
        );
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &b),
            Readiness::Ready
        );
    }

    #[test]
    fn own_program_order_rides_on_deps() {
        let repl = CausalReplication;
        let applied = VersionVector::new();
        let extra = BTreeSet::new();
        // Second write of client 1 carries a dep on its first.
        let second = write_with_deps(1, 2, &[(1, 1)]);
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &second),
            Readiness::Buffer
        );
    }

    #[test]
    fn duplicates_are_stale() {
        let repl = CausalReplication;
        let mut applied = VersionVector::new();
        applied.record(WriteId::new(ClientId::new(1), 1));
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write_with_deps(1, 1, &[])),
            Readiness::Stale
        );
    }
}
