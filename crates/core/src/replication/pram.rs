//! The PRAM replication object (§4.2 of the paper).
//!
//! "Upon receipt of an update … the sequence number of the incoming
//! update's WiD is compared to the client's version number
//! (`expected_write[client]`). If they are equal, then all previous
//! updates have been performed and the new update is performed as well.
//! Otherwise, the update request is buffered and the store waits until
//! the next one."

use globe_coherence::ObjectModel;

use super::{Readiness, ReplicaView, ReplicationObject};
use crate::LoggedWrite;

/// Pipelined-RAM coherence: per-client issue order at every store.
#[derive(Debug, Clone, Copy, Default)]
pub struct PramReplication;

impl ReplicationObject for PramReplication {
    fn name(&self) -> &'static str {
        "pram"
    }

    fn model(&self) -> ObjectModel {
        ObjectModel::Pram
    }

    fn readiness(&self, view: &ReplicaView<'_>, write: &LoggedWrite) -> Readiness {
        if view.has_seen(write.wid) {
            return Readiness::Stale;
        }
        if !view.applied.dominates(&write.deps) {
            // Session-guard dependencies (e.g. Writes-Follow-Reads) ride
            // on the same mechanism.
            return Readiness::Buffer;
        }
        if view.applied.is_next(write.wid) {
            Readiness::Ready
        } else {
            Readiness::Buffer
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use globe_coherence::{ClientId, VersionVector, WriteId};

    use super::super::testutil::{view, write, write_with_deps};
    use super::*;

    #[test]
    fn applies_in_sequence_buffers_gaps() {
        let repl = PramReplication;
        let mut applied = VersionVector::new();
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 1)),
            Readiness::Ready
        );
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 2)),
            Readiness::Buffer,
            "gap: write 1 not applied yet"
        );
        applied.record(WriteId::new(ClientId::new(1), 1));
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 2)),
            Readiness::Ready
        );
    }

    #[test]
    fn duplicates_are_stale() {
        let repl = PramReplication;
        let mut applied = VersionVector::new();
        applied.record(WriteId::new(ClientId::new(1), 1));
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 1)),
            Readiness::Stale
        );
    }

    #[test]
    fn clients_are_independent() {
        let repl = PramReplication;
        let applied = VersionVector::new();
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 1)),
            Readiness::Ready
        );
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(2, 1)),
            Readiness::Ready
        );
    }

    #[test]
    fn guard_dependencies_buffer() {
        let repl = PramReplication;
        let applied = VersionVector::new();
        let extra = BTreeSet::new();
        // First write of client 2, but it depends on client 1's write 1
        // (a Writes-Follow-Reads guard).
        let w = write_with_deps(2, 1, &[(1, 1)]);
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &w),
            Readiness::Buffer
        );
        let mut applied = applied;
        applied.record(WriteId::new(ClientId::new(1), 1));
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &w),
            Readiness::Ready
        );
    }
}
