//! The sequential replication object.
//!
//! "The sequential coherence model requires a global ordering of
//! operations on an object. Although such a coherence model is hard to
//! implement efficiently, many applications will actually need it"
//! (§3.2.1, citing Lamport).
//!
//! Implementation: the home (permanent) store is the sequencer. Writes
//! are forwarded to it, applied in arrival order (respecting per-client
//! issue order), stamped with a global order number, and propagated;
//! replicas apply strictly in order-number sequence.

use globe_coherence::ObjectModel;

use super::{Readiness, ReplicaView, ReplicationObject};
use crate::LoggedWrite;

/// Sequential coherence via a home-store sequencer.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialReplication;

impl ReplicationObject for SequentialReplication {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn model(&self) -> ObjectModel {
        ObjectModel::Sequential
    }

    fn readiness(&self, view: &ReplicaView<'_>, write: &LoggedWrite) -> Readiness {
        match write.order {
            // Already sequenced: replicas follow the total order exactly.
            Some(order) => {
                if order < view.next_order {
                    Readiness::Stale
                } else if order == view.next_order && view.applied.dominates(&write.deps) {
                    Readiness::Ready
                } else {
                    Readiness::Buffer
                }
            }
            // Not yet sequenced: the home store admits writes in
            // per-client issue order (PRAM rule) before stamping them.
            None => {
                if view.has_seen(write.wid) {
                    Readiness::Stale
                } else if view.applied.is_next(write.wid) && view.applied.dominates(&write.deps) {
                    Readiness::Ready
                } else {
                    Readiness::Buffer
                }
            }
        }
    }

    fn orders_writes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use globe_coherence::{ClientId, VersionVector, WriteId};

    use super::super::testutil::{view, write};
    use super::*;

    fn ordered(client: u32, seq: u64, order: u64) -> LoggedWrite {
        let mut w = write(client, seq);
        w.order = Some(order);
        w
    }

    #[test]
    fn replicas_follow_the_total_order() {
        let repl = SequentialReplication;
        let applied = VersionVector::new();
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &ordered(1, 1, 0)),
            Readiness::Ready
        );
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &ordered(2, 1, 1)),
            Readiness::Buffer,
            "order 1 must wait for order 0"
        );
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 2), &ordered(2, 1, 1)),
            Readiness::Stale,
            "order already passed"
        );
    }

    #[test]
    fn home_admits_writes_in_client_order() {
        let repl = SequentialReplication;
        let mut applied = VersionVector::new();
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 2)),
            Readiness::Buffer,
            "client's first write missing"
        );
        applied.record(WriteId::new(ClientId::new(1), 1));
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 2)),
            Readiness::Ready
        );
    }

    #[test]
    fn orders_writes_flag() {
        assert!(SequentialReplication.orders_writes());
    }
}
