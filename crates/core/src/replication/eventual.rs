//! The eventual replication object.
//!
//! "The eventual coherence model is the weakest form of coherence since
//! it ensures that eventually updates are propagated but without any
//! ordering constraints" (§3.2.1).
//!
//! Writes apply in arrival order with no buffering; concurrent writes to
//! the same page are resolved deterministically by last-writer-wins on
//! the write identifier, so replicas converge no matter the delivery
//! order. Periodic anti-entropy pulls repair losses.
//!
//! **Convergence requires overwrite-style (LWW-able) operations**: a
//! write's value must replace the page, as `put_page` does. Incremental
//! operations like `patch_page` are not commutative, and no ordering-free
//! model can converge them — that is precisely the gap CRDTs later
//! filled. Use PRAM (single writer) or sequential coherence for
//! incremental updates, as the paper's conference example does.

use globe_coherence::{ObjectModel, WriteId};

use super::{Readiness, ReplicaView, ReplicationObject};
use crate::LoggedWrite;

/// Eventual coherence with LWW convergence and anti-entropy.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventualReplication;

impl ReplicationObject for EventualReplication {
    fn name(&self) -> &'static str {
        "eventual"
    }

    fn model(&self) -> ObjectModel {
        ObjectModel::Eventual
    }

    fn readiness(&self, view: &ReplicaView<'_>, write: &LoggedWrite) -> Readiness {
        if view.has_seen(write.wid) {
            return Readiness::Stale;
        }
        if !view.applied.dominates(&write.deps) {
            // Session guards may still impose ordering on the weakest
            // model; anti-entropy guarantees progress.
            return Readiness::Buffer;
        }
        Readiness::Ready
    }

    fn should_dispatch(&self, current: Option<WriteId>, new: WriteId) -> bool {
        match current {
            None => true,
            // Deterministic last-writer-wins: higher sequence number
            // wins; ties (across clients) break by client id.
            Some(cur) => (new.seq, new.client) >= (cur.seq, cur.client),
        }
    }

    fn wants_anti_entropy(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use globe_coherence::{ClientId, VersionVector};

    use super::super::testutil::{view, write};
    use super::*;

    #[test]
    fn applies_out_of_order_without_buffering() {
        let repl = EventualReplication;
        let applied = VersionVector::new();
        let extra = BTreeSet::new();
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 5)),
            Readiness::Ready
        );
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 2)),
            Readiness::Ready
        );
    }

    #[test]
    fn exact_dedup_via_extras() {
        let repl = EventualReplication;
        let applied = VersionVector::new();
        let mut extra = BTreeSet::new();
        extra.insert(WriteId::new(ClientId::new(1), 5));
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 5)),
            Readiness::Stale,
            "already incorporated, even though the prefix is empty"
        );
        assert_eq!(
            repl.readiness(&view(&applied, &extra, 0), &write(1, 2)),
            Readiness::Ready,
            "the hole below an extra is still applicable"
        );
    }

    #[test]
    fn lww_resolution_is_total_and_deterministic() {
        let repl = EventualReplication;
        let w_a = WriteId::new(ClientId::new(1), 3);
        let w_b = WriteId::new(ClientId::new(2), 3);
        let w_c = WriteId::new(ClientId::new(1), 4);
        assert!(repl.should_dispatch(None, w_a));
        // Higher seq always wins.
        assert!(repl.should_dispatch(Some(w_a), w_c));
        assert!(!repl.should_dispatch(Some(w_c), w_a));
        // Equal seq: client id breaks the tie the same way everywhere.
        assert!(repl.should_dispatch(Some(w_a), w_b));
        assert!(!repl.should_dispatch(Some(w_b), w_a));
    }
}
