//! Coherence protocol messages exchanged between local objects.
//!
//! Everything a replication object says to a peer is one of these
//! variants, marshalled with `globe-wire` and wrapped in a [`NetMsg`]
//! envelope naming the distributed object it belongs to. Communication
//! objects move these around without interpreting them (§2).

use bytes::{Buf, BufMut, Bytes};
use globe_coherence::{ClientId, PageKey, StoreClass, StoreId, VersionVector, WriteId};
use globe_naming::ObjectId;
use globe_net::NodeId;
use globe_wire::{WireDecode, WireEncode, WireError};

use crate::{InvocationMessage, ReplicationPolicy, RequestId};

/// One replica in a wire-carried membership list: the hosting node, the
/// replica's store id (the election key), and its store class (the
/// eligibility criterion — only permanent stores can be elected home).
pub type WireMember = (NodeId, StoreId, StoreClass);

/// One write travelling through the system: the marshalled invocation
/// plus the coherence metadata every store needs to order it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedWrite {
    /// The write identifier (paper's WiD).
    pub wid: WriteId,
    /// The marshalled write invocation.
    pub inv: InvocationMessage,
    /// Writes this one must follow (empty unless the causal model or a
    /// session guard added dependencies).
    pub deps: VersionVector,
    /// The page the write touches, filled in by the home store's
    /// semantics object (clients do not implement semantics, §4.2).
    pub page: Option<PageKey>,
    /// Total-order number assigned by the sequencer (sequential model
    /// only).
    pub order: Option<u64>,
}

impl LoggedWrite {
    /// A write as a client proxy submits it: no page, no order yet.
    pub fn from_client(wid: WriteId, inv: InvocationMessage, deps: VersionVector) -> Self {
        LoggedWrite {
            wid,
            inv,
            deps,
            page: None,
            order: None,
        }
    }
}

impl WireEncode for LoggedWrite {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.wid.encode(buf);
        self.inv.encode(buf);
        self.deps.encode(buf);
        self.page.encode(buf);
        self.order.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.wid.encoded_len()
            + self.inv.encoded_len()
            + self.deps.encoded_len()
            + self.page.encoded_len()
            + self.order.encoded_len()
    }
}

impl WireDecode for LoggedWrite {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(LoggedWrite {
            wid: WriteId::decode(buf)?,
            inv: InvocationMessage::decode(buf)?,
            deps: VersionVector::decode(buf)?,
            page: Option::<PageKey>::decode(buf)?,
            order: Option::<u64>::decode(buf)?,
        })
    }
}

/// Outcome of a client call, as shipped in a [`CoherenceMsg::Reply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallOutcome {
    /// The invocation executed; marshalled result attached.
    Ok(Bytes),
    /// The semantics object rejected the invocation.
    Err(String),
}

impl WireEncode for CallOutcome {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            CallOutcome::Ok(bytes) => {
                buf.put_u8(0);
                bytes.encode(buf);
            }
            CallOutcome::Err(msg) => {
                buf.put_u8(1);
                msg.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            CallOutcome::Ok(bytes) => bytes.encoded_len(),
            CallOutcome::Err(msg) => msg.encoded_len(),
        }
    }
}

impl WireDecode for CallOutcome {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated {
                needed: 1,
                remaining: 0,
            });
        }
        match buf.get_u8() {
            0 => Ok(CallOutcome::Ok(Bytes::decode(buf)?)),
            1 => Ok(CallOutcome::Err(String::decode(buf)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "CallOutcome",
                tag,
            }),
        }
    }
}

/// A coherence protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum CoherenceMsg {
    /// Client proxy → store: execute a read.
    ReadReq {
        /// Correlation id.
        req: RequestId,
        /// The reading client.
        client: ClientId,
        /// The marshalled read invocation.
        inv: InvocationMessage,
        /// Writes the serving store must have applied first (session
        /// guard requirements; empty when no guard is active).
        min_version: VersionVector,
    },
    /// Client proxy → home store: perform a write.
    WriteReq {
        /// Correlation id.
        req: RequestId,
        /// The writing client.
        client: ClientId,
        /// The write with its coherence metadata.
        write: LoggedWrite,
    },
    /// Store → client proxy: a call finished.
    Reply {
        /// Correlation id of the completed call.
        req: RequestId,
        /// Result of the invocation.
        outcome: CallOutcome,
        /// The serving store's applied vector (drives session guards).
        version: VersionVector,
        /// The write whose value a read returned, if page-granular.
        sees: Option<WriteId>,
        /// Full document snapshot, when the access transfer type is
        /// `full` (Table 1).
        full_state: Option<Bytes>,
    },
    /// Store → store: one write (partial coherence transfer).
    Update {
        /// The propagated write.
        write: LoggedWrite,
    },
    /// Store → store: several writes aggregated by a lazy transfer, or a
    /// pull response.
    UpdateBatch {
        /// The propagated writes, in sender order.
        writes: Vec<LoggedWrite>,
        /// The sender's applied vector after these writes.
        version: VersionVector,
    },
    /// Store → store: complete state (full coherence transfer).
    FullState {
        /// The sender's applied vector.
        version: VersionVector,
        /// Snapshot of the semantics object.
        state: Bytes,
        /// Last writer per page, so the receiver can keep serving `sees`
        /// metadata.
        writers: Vec<(PageKey, WriteId)>,
        /// Sequencer order height (sequential model).
        order_high: Option<u64>,
    },
    /// Store → store: the named pages changed (invalidation propagation).
    Invalidate {
        /// Invalidated pages; `None` marks the whole document.
        pages: Vec<Option<PageKey>>,
        /// The sender's applied vector after the invalidating writes.
        version: VersionVector,
    },
    /// Store → store: something changed, no data attached (the
    /// `notification` coherence transfer type).
    Notify {
        /// The sender's applied vector.
        version: VersionVector,
    },
    /// Store → store: send me what I am missing (pull initiative, demand
    /// outdate reaction, anti-entropy).
    DemandUpdate {
        /// The requester's applied vector.
        since: VersionVector,
        /// The requester's sequencer height (sequential model).
        order_since: Option<u64>,
    },
    /// Home store → client proxy: resend writes lost in transit (the
    /// §4.2 reliability-from-coherence mechanism).
    DemandResend {
        /// Whose writes are missing.
        client: ClientId,
        /// First missing sequence number.
        from_seq: u64,
    },
    /// Home store → stores: the object's replication policy changed at
    /// run time (§5 future work: dynamically adaptable parameters).
    PolicyUpdate {
        /// The new policy.
        policy: ReplicationPolicy,
    },
    /// Joining or recovering replica → home store: announce membership
    /// and request a full state transfer (the replica lifecycle control
    /// plane). May be relayed by a runtime's control endpoint, so the
    /// reply target is carried explicitly rather than taken from the
    /// transport's `from`.
    JoinRequest {
        /// The node hosting the joining replica (the reply target).
        node: NodeId,
        /// The joining replica's store id, so the home can record a
        /// complete membership entry (elections key on store ids).
        store: StoreId,
        /// The joining replica's store class.
        class: StoreClass,
        /// The joiner's applied vector — empty for a fresh replica,
        /// non-empty when the replica recovered state from a local
        /// durable log. The home uses it to ship an incremental
        /// [`CoherenceMsg::StateDelta`] (only the log suffix past this
        /// vector) instead of a full [`CoherenceMsg::StateTransfer`].
        version: VersionVector,
    },
    /// Home store → joining replica: the object's complete state — the
    /// semantics snapshot, the applied version vector, the per-page
    /// writers, the sequencer height, and the coherence write log — so
    /// reads after recovery are indistinguishable from reads before the
    /// failure.
    StateTransfer {
        /// The home store's applied vector.
        version: VersionVector,
        /// Snapshot of the semantics object.
        state: Bytes,
        /// Last writer per page, so `sees` metadata survives recovery.
        writers: Vec<(PageKey, WriteId)>,
        /// Sequencer order height (sequential model).
        order_high: Option<u64>,
        /// The coherence write log, so the recovered replica carries the
        /// object's full history rather than a bare snapshot.
        log: Vec<LoggedWrite>,
        /// The object's full replica membership (sender and receiver
        /// included), so the joining replica can run a future
        /// unattended election from its own copy of the view.
        peers: Vec<WireMember>,
    },
    /// Departing replica (or control endpoint) → home store: the named
    /// node's replica is leaving; stop propagating and heartbeating
    /// to it.
    Leave {
        /// The node whose replica is being removed.
        node: NodeId,
    },
    /// Node → node: node-level failure-detector heartbeat. Unlike every
    /// other variant these are *node-scoped*: they travel under the
    /// reserved node-scope envelope id, one stream per node pair, and
    /// are answered by the receiving address space's [`crate::lifecycle::NodeDetector`]
    /// — not by any object's store.
    NodePing {
        /// Monotonic heartbeat round, echoed by the matching
        /// [`CoherenceMsg::NodePong`].
        seq: u64,
    },
    /// Node → node: node-level heartbeat acknowledgement (node-scoped,
    /// like [`CoherenceMsg::NodePing`]).
    NodePong {
        /// The round being acknowledged.
        seq: u64,
    },
    /// Control plane → elected store: the home store died; you are the
    /// deterministically elected successor (lowest-id surviving
    /// permanent store). Promote yourself to sequencer from your own
    /// replica of the write log and announce the takeover with a
    /// [`CoherenceMsg::SequencerHandoff`].
    ElectRequest {
        /// The object's full replica membership (failed home included —
        /// it rejoins as an ordinary replica).
        peers: Vec<WireMember>,
        /// The election epoch: each sequencer move increments it, and
        /// stale elections/announcements are rejected, so a detector
        /// flap cannot yield two accepting sequencers for one epoch.
        epoch: u64,
    },
    /// The sequencer moved. Sent (a) by a gracefully retiring home store
    /// to the elected successor, carrying the authoritative coherence
    /// write log and version vector, and (b) by the promoted home to
    /// every peer *and every known client node* as the takeover
    /// announcement: peer stores install the state like a lifecycle
    /// transfer and reroute demands/pulls to `new_home`; client
    /// sessions reroute their pending and future writes.
    SequencerHandoff {
        /// The node the sequencer moved away from (sessions bound to it
        /// for writes reroute to `new_home`).
        old_home: NodeId,
        /// The node of the newly elected home store.
        new_home: NodeId,
        /// The elected store's id: the election key (lowest id wins
        /// equal-epoch conflicts) and the rerouted sessions' new write
        /// store.
        new_home_store: StoreId,
        /// The election epoch this takeover belongs to; receivers
        /// reject stale announcements (see
        /// [`CoherenceMsg::ElectRequest`]).
        epoch: u64,
        /// The sender's applied vector.
        version: VersionVector,
        /// Snapshot of the semantics object.
        state: Bytes,
        /// Last writer per page, so `sees` metadata survives fail-over.
        writers: Vec<(PageKey, WriteId)>,
        /// Sequencer order height (sequential model), so the new home
        /// continues the total order where the old one stopped.
        order_high: Option<u64>,
        /// The coherence write log — the object's authoritative history.
        log: Vec<LoggedWrite>,
        /// The object's full replica membership; each receiver derives
        /// its own peer set by dropping itself.
        peers: Vec<WireMember>,
    },
    /// Home store → replicas: the object's membership changed (a
    /// replica joined or left). Every replica keeps a full copy of the
    /// membership so it can run the unattended election locally; this
    /// frame keeps those copies current without shipping state.
    Membership {
        /// The object's full replica membership (sender included).
        peers: Vec<WireMember>,
    },
    /// Sequencer → stores: one group-committed batch. The home
    /// accumulated the writes under `RuntimeConfig::batch_max` /
    /// `batch_window`, made one ordering decision for the whole run, and
    /// fans it out as one frame; receivers apply the writes atomically
    /// within one handler invocation, in order.
    WriteBatch {
        /// Sequence number of the first write: the batch covers the
        /// contiguous run `first_order .. first_order + writes.len()`.
        first_order: u64,
        /// The batched writes, in sequencer order.
        writes: Vec<LoggedWrite>,
        /// The sequencer's applied vector after the batch.
        version: VersionVector,
    },
    /// Replica → home store: grant (or renew) a read lease so reads can
    /// be served locally without a round trip to the sequencer.
    LeaseRequest {
        /// The node hosting the requesting replica (the reply target —
        /// the frame may be relayed).
        node: NodeId,
        /// The requesting replica's store id.
        store: StoreId,
    },
    /// Home store → replica: an epoch-stamped read lease. Valid until
    /// `duration` elapses at the grantee, as long as the epoch still
    /// matches (a fail-over invalidates every outstanding lease) and the
    /// grantee's applied vector covers `version` (the grant point).
    LeaseGrant {
        /// The sequencer epoch the lease is pinned to.
        epoch: u64,
        /// The grant point: the home's applied vector at grant time.
        version: VersionVector,
        /// How long the lease is valid, measured at the grantee.
        duration: std::time::Duration,
    },
    /// Home store → replica: drop your lease now (policy change or
    /// explicit invalidation); reads go back through the sequencer until
    /// a new lease is granted.
    LeaseRevoke {
        /// The epoch the revoked lease belonged to.
        epoch: u64,
    },
    /// Home store → recovering replica: an incremental state transfer —
    /// only the write-log suffix the joiner is missing, chunked so one
    /// recovery does not monopolize the wire (the group state-transfer
    /// batching). The joiner buffers chunks and installs the delta once
    /// `chunk == chunks - 1` frames have all arrived.
    StateDelta {
        /// Zero-based index of this chunk.
        chunk: u64,
        /// Total number of chunks in this delta (always ≥ 1; an
        /// up-to-date joiner still gets one empty chunk so it learns
        /// membership and leaves bootstrap).
        chunks: u64,
        /// The writes in this chunk, in home-log order.
        writes: Vec<LoggedWrite>,
        /// The home's applied vector after the complete delta.
        version: VersionVector,
        /// Sequencer order height (sequential model).
        order_high: Option<u64>,
        /// The object's full replica membership (sender and receiver
        /// included), as in [`CoherenceMsg::StateTransfer`].
        peers: Vec<WireMember>,
    },
    /// Home store → replicas: the home took a checkpoint at `version`.
    /// Each replica checkpoints its own backend once its applied vector
    /// dominates the announced one, then answers with a
    /// [`CoherenceMsg::CheckpointAck`].
    CheckpointAnnounce {
        /// The home's applied vector at the checkpoint.
        version: VersionVector,
    },
    /// Replica → home store: my local checkpoint at `version` is
    /// installed; you may compact the log below it once every peer says
    /// the same.
    CheckpointAck {
        /// The acknowledging replica's node (the frame may be relayed).
        node: NodeId,
        /// The checkpoint vector being acknowledged.
        version: VersionVector,
    },
    /// Home store → replicas: every peer acknowledged the checkpoint at
    /// `version`; truncate your log prefix below it.
    CompactBelow {
        /// The all-peers-acked checkpoint vector.
        version: VersionVector,
    },
}

impl CoherenceMsg {
    /// Short name of the variant, for traffic accounting.
    pub fn kind_name(&self) -> &'static str {
        match self {
            CoherenceMsg::ReadReq { .. } => "ReadReq",
            CoherenceMsg::WriteReq { .. } => "WriteReq",
            CoherenceMsg::Reply { .. } => "Reply",
            CoherenceMsg::Update { .. } => "Update",
            CoherenceMsg::UpdateBatch { .. } => "UpdateBatch",
            CoherenceMsg::FullState { .. } => "FullState",
            CoherenceMsg::Invalidate { .. } => "Invalidate",
            CoherenceMsg::Notify { .. } => "Notify",
            CoherenceMsg::DemandUpdate { .. } => "DemandUpdate",
            CoherenceMsg::DemandResend { .. } => "DemandResend",
            CoherenceMsg::PolicyUpdate { .. } => "PolicyUpdate",
            CoherenceMsg::JoinRequest { .. } => "JoinRequest",
            CoherenceMsg::StateTransfer { .. } => "StateTransfer",
            CoherenceMsg::Leave { .. } => "Leave",
            CoherenceMsg::NodePing { .. } => "NodePing",
            CoherenceMsg::NodePong { .. } => "NodePong",
            CoherenceMsg::ElectRequest { .. } => "ElectRequest",
            CoherenceMsg::SequencerHandoff { .. } => "SequencerHandoff",
            CoherenceMsg::Membership { .. } => "Membership",
            CoherenceMsg::WriteBatch { .. } => "WriteBatch",
            CoherenceMsg::LeaseRequest { .. } => "LeaseRequest",
            CoherenceMsg::LeaseGrant { .. } => "LeaseGrant",
            CoherenceMsg::LeaseRevoke { .. } => "LeaseRevoke",
            CoherenceMsg::StateDelta { .. } => "StateDelta",
            CoherenceMsg::CheckpointAnnounce { .. } => "CheckpointAnnounce",
            CoherenceMsg::CheckpointAck { .. } => "CheckpointAck",
            CoherenceMsg::CompactBelow { .. } => "CompactBelow",
        }
    }
}

impl WireEncode for CoherenceMsg {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            CoherenceMsg::ReadReq {
                req,
                client,
                inv,
                min_version,
            } => {
                buf.put_u8(0);
                req.encode(buf);
                client.encode(buf);
                inv.encode(buf);
                min_version.encode(buf);
            }
            CoherenceMsg::WriteReq { req, client, write } => {
                buf.put_u8(1);
                req.encode(buf);
                client.encode(buf);
                write.encode(buf);
            }
            CoherenceMsg::Reply {
                req,
                outcome,
                version,
                sees,
                full_state,
            } => {
                buf.put_u8(2);
                req.encode(buf);
                outcome.encode(buf);
                version.encode(buf);
                sees.encode(buf);
                full_state.encode(buf);
            }
            CoherenceMsg::Update { write } => {
                buf.put_u8(3);
                write.encode(buf);
            }
            CoherenceMsg::UpdateBatch { writes, version } => {
                buf.put_u8(4);
                writes.encode(buf);
                version.encode(buf);
            }
            CoherenceMsg::FullState {
                version,
                state,
                writers,
                order_high,
            } => {
                buf.put_u8(5);
                version.encode(buf);
                state.encode(buf);
                writers.encode(buf);
                order_high.encode(buf);
            }
            CoherenceMsg::Invalidate { pages, version } => {
                buf.put_u8(6);
                pages.encode(buf);
                version.encode(buf);
            }
            CoherenceMsg::Notify { version } => {
                buf.put_u8(7);
                version.encode(buf);
            }
            CoherenceMsg::DemandUpdate { since, order_since } => {
                buf.put_u8(8);
                since.encode(buf);
                order_since.encode(buf);
            }
            CoherenceMsg::DemandResend { client, from_seq } => {
                buf.put_u8(9);
                client.encode(buf);
                from_seq.encode(buf);
            }
            CoherenceMsg::PolicyUpdate { policy } => {
                buf.put_u8(10);
                policy.encode(buf);
            }
            CoherenceMsg::JoinRequest {
                node,
                store,
                class,
                version,
            } => {
                buf.put_u8(11);
                node.encode(buf);
                store.encode(buf);
                class.encode(buf);
                version.encode(buf);
            }
            CoherenceMsg::StateTransfer {
                version,
                state,
                writers,
                order_high,
                log,
                peers,
            } => {
                buf.put_u8(12);
                version.encode(buf);
                state.encode(buf);
                writers.encode(buf);
                order_high.encode(buf);
                log.encode(buf);
                peers.encode(buf);
            }
            CoherenceMsg::Leave { node } => {
                buf.put_u8(13);
                node.encode(buf);
            }
            CoherenceMsg::NodePing { seq } => {
                buf.put_u8(14);
                seq.encode(buf);
            }
            CoherenceMsg::NodePong { seq } => {
                buf.put_u8(15);
                seq.encode(buf);
            }
            CoherenceMsg::ElectRequest { peers, epoch } => {
                buf.put_u8(16);
                peers.encode(buf);
                epoch.encode(buf);
            }
            CoherenceMsg::SequencerHandoff {
                old_home,
                new_home,
                new_home_store,
                epoch,
                version,
                state,
                writers,
                order_high,
                log,
                peers,
            } => {
                buf.put_u8(17);
                old_home.encode(buf);
                new_home.encode(buf);
                new_home_store.encode(buf);
                epoch.encode(buf);
                version.encode(buf);
                state.encode(buf);
                writers.encode(buf);
                order_high.encode(buf);
                log.encode(buf);
                peers.encode(buf);
            }
            CoherenceMsg::Membership { peers } => {
                buf.put_u8(18);
                peers.encode(buf);
            }
            CoherenceMsg::WriteBatch {
                first_order,
                writes,
                version,
            } => {
                buf.put_u8(19);
                first_order.encode(buf);
                writes.encode(buf);
                version.encode(buf);
            }
            CoherenceMsg::LeaseRequest { node, store } => {
                buf.put_u8(20);
                node.encode(buf);
                store.encode(buf);
            }
            CoherenceMsg::LeaseGrant {
                epoch,
                version,
                duration,
            } => {
                buf.put_u8(21);
                epoch.encode(buf);
                version.encode(buf);
                duration.encode(buf);
            }
            CoherenceMsg::LeaseRevoke { epoch } => {
                buf.put_u8(22);
                epoch.encode(buf);
            }
            CoherenceMsg::StateDelta {
                chunk,
                chunks,
                writes,
                version,
                order_high,
                peers,
            } => {
                buf.put_u8(23);
                chunk.encode(buf);
                chunks.encode(buf);
                writes.encode(buf);
                version.encode(buf);
                order_high.encode(buf);
                peers.encode(buf);
            }
            CoherenceMsg::CheckpointAnnounce { version } => {
                buf.put_u8(24);
                version.encode(buf);
            }
            CoherenceMsg::CheckpointAck { node, version } => {
                buf.put_u8(25);
                node.encode(buf);
                version.encode(buf);
            }
            CoherenceMsg::CompactBelow { version } => {
                buf.put_u8(26);
                version.encode(buf);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            CoherenceMsg::ReadReq {
                req,
                client,
                inv,
                min_version,
            } => {
                req.encoded_len()
                    + client.encoded_len()
                    + inv.encoded_len()
                    + min_version.encoded_len()
            }
            CoherenceMsg::WriteReq { req, client, write } => {
                req.encoded_len() + client.encoded_len() + write.encoded_len()
            }
            CoherenceMsg::Reply {
                req,
                outcome,
                version,
                sees,
                full_state,
            } => {
                req.encoded_len()
                    + outcome.encoded_len()
                    + version.encoded_len()
                    + sees.encoded_len()
                    + full_state.encoded_len()
            }
            CoherenceMsg::Update { write } => write.encoded_len(),
            CoherenceMsg::UpdateBatch { writes, version } => {
                writes.encoded_len() + version.encoded_len()
            }
            CoherenceMsg::FullState {
                version,
                state,
                writers,
                order_high,
            } => {
                version.encoded_len()
                    + state.encoded_len()
                    + writers.encoded_len()
                    + order_high.encoded_len()
            }
            CoherenceMsg::Invalidate { pages, version } => {
                pages.encoded_len() + version.encoded_len()
            }
            CoherenceMsg::Notify { version } => version.encoded_len(),
            CoherenceMsg::DemandUpdate { since, order_since } => {
                since.encoded_len() + order_since.encoded_len()
            }
            CoherenceMsg::DemandResend { client, from_seq } => {
                client.encoded_len() + from_seq.encoded_len()
            }
            CoherenceMsg::PolicyUpdate { policy } => policy.encoded_len(),
            CoherenceMsg::JoinRequest {
                node,
                store,
                class,
                version,
            } => {
                node.encoded_len()
                    + store.encoded_len()
                    + class.encoded_len()
                    + version.encoded_len()
            }
            CoherenceMsg::StateTransfer {
                version,
                state,
                writers,
                order_high,
                log,
                peers,
            } => {
                version.encoded_len()
                    + state.encoded_len()
                    + writers.encoded_len()
                    + order_high.encoded_len()
                    + log.encoded_len()
                    + peers.encoded_len()
            }
            CoherenceMsg::Leave { node } => node.encoded_len(),
            CoherenceMsg::NodePing { seq } => seq.encoded_len(),
            CoherenceMsg::NodePong { seq } => seq.encoded_len(),
            CoherenceMsg::ElectRequest { peers, epoch } => {
                peers.encoded_len() + epoch.encoded_len()
            }
            CoherenceMsg::SequencerHandoff {
                old_home,
                new_home,
                new_home_store,
                epoch,
                version,
                state,
                writers,
                order_high,
                log,
                peers,
            } => {
                old_home.encoded_len()
                    + new_home.encoded_len()
                    + new_home_store.encoded_len()
                    + epoch.encoded_len()
                    + version.encoded_len()
                    + state.encoded_len()
                    + writers.encoded_len()
                    + order_high.encoded_len()
                    + log.encoded_len()
                    + peers.encoded_len()
            }
            CoherenceMsg::Membership { peers } => peers.encoded_len(),
            CoherenceMsg::WriteBatch {
                first_order,
                writes,
                version,
            } => first_order.encoded_len() + writes.encoded_len() + version.encoded_len(),
            CoherenceMsg::LeaseRequest { node, store } => node.encoded_len() + store.encoded_len(),
            CoherenceMsg::LeaseGrant {
                epoch,
                version,
                duration,
            } => epoch.encoded_len() + version.encoded_len() + duration.encoded_len(),
            CoherenceMsg::LeaseRevoke { epoch } => epoch.encoded_len(),
            CoherenceMsg::StateDelta {
                chunk,
                chunks,
                writes,
                version,
                order_high,
                peers,
            } => {
                chunk.encoded_len()
                    + chunks.encoded_len()
                    + writes.encoded_len()
                    + version.encoded_len()
                    + order_high.encoded_len()
                    + peers.encoded_len()
            }
            CoherenceMsg::CheckpointAnnounce { version } => version.encoded_len(),
            CoherenceMsg::CheckpointAck { node, version } => {
                node.encoded_len() + version.encoded_len()
            }
            CoherenceMsg::CompactBelow { version } => version.encoded_len(),
        }
    }
}

impl WireDecode for CoherenceMsg {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated {
                needed: 1,
                remaining: 0,
            });
        }
        match buf.get_u8() {
            0 => Ok(CoherenceMsg::ReadReq {
                req: RequestId::decode(buf)?,
                client: ClientId::decode(buf)?,
                inv: InvocationMessage::decode(buf)?,
                min_version: VersionVector::decode(buf)?,
            }),
            1 => Ok(CoherenceMsg::WriteReq {
                req: RequestId::decode(buf)?,
                client: ClientId::decode(buf)?,
                write: LoggedWrite::decode(buf)?,
            }),
            2 => Ok(CoherenceMsg::Reply {
                req: RequestId::decode(buf)?,
                outcome: CallOutcome::decode(buf)?,
                version: VersionVector::decode(buf)?,
                sees: Option::<WriteId>::decode(buf)?,
                full_state: Option::<Bytes>::decode(buf)?,
            }),
            3 => Ok(CoherenceMsg::Update {
                write: LoggedWrite::decode(buf)?,
            }),
            4 => Ok(CoherenceMsg::UpdateBatch {
                writes: Vec::<LoggedWrite>::decode(buf)?,
                version: VersionVector::decode(buf)?,
            }),
            5 => Ok(CoherenceMsg::FullState {
                version: VersionVector::decode(buf)?,
                state: Bytes::decode(buf)?,
                writers: Vec::<(PageKey, WriteId)>::decode(buf)?,
                order_high: Option::<u64>::decode(buf)?,
            }),
            6 => Ok(CoherenceMsg::Invalidate {
                pages: Vec::<Option<PageKey>>::decode(buf)?,
                version: VersionVector::decode(buf)?,
            }),
            7 => Ok(CoherenceMsg::Notify {
                version: VersionVector::decode(buf)?,
            }),
            8 => Ok(CoherenceMsg::DemandUpdate {
                since: VersionVector::decode(buf)?,
                order_since: Option::<u64>::decode(buf)?,
            }),
            9 => Ok(CoherenceMsg::DemandResend {
                client: ClientId::decode(buf)?,
                from_seq: u64::decode(buf)?,
            }),
            10 => Ok(CoherenceMsg::PolicyUpdate {
                policy: ReplicationPolicy::decode(buf)?,
            }),
            11 => Ok(CoherenceMsg::JoinRequest {
                node: NodeId::decode(buf)?,
                store: StoreId::decode(buf)?,
                class: StoreClass::decode(buf)?,
                version: VersionVector::decode(buf)?,
            }),
            12 => Ok(CoherenceMsg::StateTransfer {
                version: VersionVector::decode(buf)?,
                state: Bytes::decode(buf)?,
                writers: Vec::<(PageKey, WriteId)>::decode(buf)?,
                order_high: Option::<u64>::decode(buf)?,
                log: Vec::<LoggedWrite>::decode(buf)?,
                peers: Vec::<WireMember>::decode(buf)?,
            }),
            13 => Ok(CoherenceMsg::Leave {
                node: NodeId::decode(buf)?,
            }),
            14 => Ok(CoherenceMsg::NodePing {
                seq: u64::decode(buf)?,
            }),
            15 => Ok(CoherenceMsg::NodePong {
                seq: u64::decode(buf)?,
            }),
            16 => Ok(CoherenceMsg::ElectRequest {
                peers: Vec::<WireMember>::decode(buf)?,
                epoch: u64::decode(buf)?,
            }),
            17 => Ok(CoherenceMsg::SequencerHandoff {
                old_home: NodeId::decode(buf)?,
                new_home: NodeId::decode(buf)?,
                new_home_store: StoreId::decode(buf)?,
                epoch: u64::decode(buf)?,
                version: VersionVector::decode(buf)?,
                state: Bytes::decode(buf)?,
                writers: Vec::<(PageKey, WriteId)>::decode(buf)?,
                order_high: Option::<u64>::decode(buf)?,
                log: Vec::<LoggedWrite>::decode(buf)?,
                peers: Vec::<WireMember>::decode(buf)?,
            }),
            18 => Ok(CoherenceMsg::Membership {
                peers: Vec::<WireMember>::decode(buf)?,
            }),
            19 => Ok(CoherenceMsg::WriteBatch {
                first_order: u64::decode(buf)?,
                writes: Vec::<LoggedWrite>::decode(buf)?,
                version: VersionVector::decode(buf)?,
            }),
            20 => Ok(CoherenceMsg::LeaseRequest {
                node: NodeId::decode(buf)?,
                store: StoreId::decode(buf)?,
            }),
            21 => Ok(CoherenceMsg::LeaseGrant {
                epoch: u64::decode(buf)?,
                version: VersionVector::decode(buf)?,
                duration: std::time::Duration::decode(buf)?,
            }),
            22 => Ok(CoherenceMsg::LeaseRevoke {
                epoch: u64::decode(buf)?,
            }),
            23 => Ok(CoherenceMsg::StateDelta {
                chunk: u64::decode(buf)?,
                chunks: u64::decode(buf)?,
                writes: Vec::<LoggedWrite>::decode(buf)?,
                version: VersionVector::decode(buf)?,
                order_high: Option::<u64>::decode(buf)?,
                peers: Vec::<WireMember>::decode(buf)?,
            }),
            24 => Ok(CoherenceMsg::CheckpointAnnounce {
                version: VersionVector::decode(buf)?,
            }),
            25 => Ok(CoherenceMsg::CheckpointAck {
                node: NodeId::decode(buf)?,
                version: VersionVector::decode(buf)?,
            }),
            26 => Ok(CoherenceMsg::CompactBelow {
                version: VersionVector::decode(buf)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "CoherenceMsg",
                tag,
            }),
        }
    }
}

/// The network envelope: which distributed object a message belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct NetMsg {
    /// The target distributed object.
    pub object: ObjectId,
    /// The protocol message.
    pub msg: CoherenceMsg,
}

impl WireEncode for NetMsg {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.object.encode(buf);
        self.msg.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.object.encoded_len() + self.msg.encoded_len()
    }
}

impl WireDecode for NetMsg {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(NetMsg {
            object: ObjectId::decode(buf)?,
            msg: CoherenceMsg::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MethodId;

    fn sample_write() -> LoggedWrite {
        LoggedWrite {
            wid: WriteId::new(ClientId::new(1), 3),
            inv: InvocationMessage::new(MethodId::new(1), Bytes::from_static(b"args")),
            deps: [(ClientId::new(2), 1u64)].into_iter().collect(),
            page: Some("index.html".to_string()),
            order: Some(17),
        }
    }

    fn roundtrip(msg: CoherenceMsg) {
        let env = NetMsg {
            object: ObjectId::new(5),
            msg,
        };
        let bytes = globe_wire::to_bytes(&env);
        assert_eq!(bytes.len(), env.encoded_len());
        let back: NetMsg = globe_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(CoherenceMsg::ReadReq {
            req: RequestId::new(1),
            client: ClientId::new(2),
            inv: InvocationMessage::new(MethodId::new(0), Bytes::from_static(b"p")),
            min_version: [(ClientId::new(2), 4u64)].into_iter().collect(),
        });
        roundtrip(CoherenceMsg::WriteReq {
            req: RequestId::new(2),
            client: ClientId::new(1),
            write: sample_write(),
        });
        roundtrip(CoherenceMsg::Reply {
            req: RequestId::new(3),
            outcome: CallOutcome::Ok(Bytes::from_static(b"result")),
            version: [(ClientId::new(1), 3u64)].into_iter().collect(),
            sees: Some(WriteId::new(ClientId::new(1), 3)),
            full_state: Some(Bytes::from_static(b"snapshot")),
        });
        roundtrip(CoherenceMsg::Reply {
            req: RequestId::new(4),
            outcome: CallOutcome::Err("page missing".into()),
            version: VersionVector::new(),
            sees: None,
            full_state: None,
        });
        roundtrip(CoherenceMsg::Update {
            write: sample_write(),
        });
        roundtrip(CoherenceMsg::UpdateBatch {
            writes: vec![sample_write(), sample_write()],
            version: VersionVector::new(),
        });
        roundtrip(CoherenceMsg::FullState {
            version: [(ClientId::new(1), 9u64)].into_iter().collect(),
            state: Bytes::from_static(b"state"),
            writers: vec![("a".to_string(), WriteId::new(ClientId::new(1), 9))],
            order_high: Some(12),
        });
        roundtrip(CoherenceMsg::Invalidate {
            pages: vec![Some("a".to_string()), None],
            version: VersionVector::new(),
        });
        roundtrip(CoherenceMsg::Notify {
            version: [(ClientId::new(3), 1u64)].into_iter().collect(),
        });
        roundtrip(CoherenceMsg::DemandUpdate {
            since: VersionVector::new(),
            order_since: None,
        });
        roundtrip(CoherenceMsg::DemandResend {
            client: ClientId::new(1),
            from_seq: 4,
        });
        roundtrip(CoherenceMsg::PolicyUpdate {
            policy: ReplicationPolicy::conference_page(),
        });
        roundtrip(CoherenceMsg::JoinRequest {
            node: globe_net::NodeId::new(3),
            store: StoreId::new(7),
            class: StoreClass::ClientInitiated,
            version: [(ClientId::new(1), 2u64)].into_iter().collect(),
        });
        roundtrip(CoherenceMsg::StateTransfer {
            version: [(ClientId::new(1), 5u64)].into_iter().collect(),
            state: Bytes::from_static(b"snapshot"),
            writers: vec![("a".to_string(), WriteId::new(ClientId::new(1), 5))],
            order_high: Some(6),
            log: vec![sample_write(), sample_write()],
            peers: vec![(
                globe_net::NodeId::new(2),
                StoreId::new(1),
                StoreClass::Permanent,
            )],
        });
        roundtrip(CoherenceMsg::Leave {
            node: globe_net::NodeId::new(9),
        });
        roundtrip(CoherenceMsg::NodePing { seq: 12 });
        roundtrip(CoherenceMsg::NodePong { seq: 12 });
        roundtrip(CoherenceMsg::ElectRequest {
            peers: vec![
                (
                    globe_net::NodeId::new(2),
                    StoreId::new(0),
                    StoreClass::Permanent,
                ),
                (
                    globe_net::NodeId::new(4),
                    StoreId::new(2),
                    StoreClass::ObjectInitiated,
                ),
            ],
            epoch: 3,
        });
        roundtrip(CoherenceMsg::SequencerHandoff {
            old_home: globe_net::NodeId::new(0),
            new_home: globe_net::NodeId::new(1),
            new_home_store: StoreId::new(1),
            epoch: 2,
            version: [(ClientId::new(1), 5u64)].into_iter().collect(),
            state: Bytes::from_static(b"snapshot"),
            writers: vec![("a".to_string(), WriteId::new(ClientId::new(1), 5))],
            order_high: Some(6),
            log: vec![sample_write()],
            peers: vec![(
                globe_net::NodeId::new(3),
                StoreId::new(2),
                StoreClass::ClientInitiated,
            )],
        });
        roundtrip(CoherenceMsg::Membership {
            peers: vec![
                (
                    globe_net::NodeId::new(0),
                    StoreId::new(0),
                    StoreClass::Permanent,
                ),
                (
                    globe_net::NodeId::new(5),
                    StoreId::new(3),
                    StoreClass::ObjectInitiated,
                ),
            ],
        });
        roundtrip(CoherenceMsg::WriteBatch {
            first_order: 17,
            writes: vec![sample_write(), sample_write()],
            version: [(ClientId::new(1), 4u64)].into_iter().collect(),
        });
        roundtrip(CoherenceMsg::LeaseRequest {
            node: globe_net::NodeId::new(4),
            store: StoreId::new(2),
        });
        roundtrip(CoherenceMsg::LeaseGrant {
            epoch: 3,
            version: [(ClientId::new(2), 7u64)].into_iter().collect(),
            duration: std::time::Duration::from_millis(1500),
        });
        roundtrip(CoherenceMsg::LeaseRevoke { epoch: 3 });
        roundtrip(CoherenceMsg::StateDelta {
            chunk: 1,
            chunks: 3,
            writes: vec![sample_write(), sample_write()],
            version: [(ClientId::new(1), 8u64)].into_iter().collect(),
            order_high: Some(21),
            peers: vec![(
                globe_net::NodeId::new(2),
                StoreId::new(1),
                StoreClass::Permanent,
            )],
        });
        roundtrip(CoherenceMsg::StateDelta {
            chunk: 0,
            chunks: 1,
            writes: Vec::new(),
            version: VersionVector::new(),
            order_high: None,
            peers: Vec::new(),
        });
        roundtrip(CoherenceMsg::CheckpointAnnounce {
            version: [(ClientId::new(2), 6u64)].into_iter().collect(),
        });
        roundtrip(CoherenceMsg::CheckpointAck {
            node: globe_net::NodeId::new(4),
            version: [(ClientId::new(2), 6u64)].into_iter().collect(),
        });
        roundtrip(CoherenceMsg::CompactBelow {
            version: [(ClientId::new(2), 6u64)].into_iter().collect(),
        });
    }

    #[test]
    fn kind_names_are_distinct() {
        let msgs = [
            CoherenceMsg::Notify {
                version: VersionVector::new(),
            },
            CoherenceMsg::DemandUpdate {
                since: VersionVector::new(),
                order_since: None,
            },
        ];
        assert_ne!(msgs[0].kind_name(), msgs[1].kind_name());
    }

    #[test]
    fn bogus_tag_rejected() {
        assert!(matches!(
            globe_wire::from_bytes::<CoherenceMsg>(&[99]),
            Err(WireError::InvalidTag { .. })
        ));
    }
}
