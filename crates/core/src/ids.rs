//! Identifiers local to the object framework.

use std::fmt;

use bytes::{Buf, BufMut};
use globe_wire::{WireDecode, WireEncode, WireError};

/// Identifies one method of an object's interface.
///
/// Replication and communication sub-objects see only method identifiers
/// and marshalled parameters, never the semantics behind them (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodId(u16);

impl MethodId {
    /// Creates a method id from its raw value.
    pub const fn new(raw: u16) -> Self {
        MethodId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl WireEncode for MethodId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.0);
    }
    fn encoded_len(&self) -> usize {
        2
    }
}

impl WireDecode for MethodId {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(MethodId(u16::decode(buf)?))
    }
}

/// Correlates a client request with its eventual reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from its raw value.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

impl WireEncode for RequestId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl WireDecode for RequestId {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(RequestId(u64::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_display() {
        let m = MethodId::new(3);
        assert_eq!(
            globe_wire::from_bytes::<MethodId>(&globe_wire::to_bytes(&m)).unwrap(),
            m
        );
        assert_eq!(m.to_string(), "m3");
        let r = RequestId::new(9);
        assert_eq!(
            globe_wire::from_bytes::<RequestId>(&globe_wire::to_bytes(&r)).unwrap(),
            r
        );
        assert_eq!(r.to_string(), "req9");
    }
}
