//! The simulated Globe runtime: address spaces, support services, and a
//! synchronous client API over the deterministic network.
//!
//! [`GlobeSim`] is the top-level entry point used by the examples, tests,
//! and benchmarks: create nodes, create distributed Web objects with
//! their per-object replication policies, bind clients, and run.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use globe_coherence::{ClientId, ClientModel, StoreClass, StoreId, VersionVector};
use globe_naming::{ContactRecord, LocationService, NameSpace, ObjectId};
use globe_net::{NetStats, NodeId, RegionId, SimNet, SimTime, Topology};

use crate::lifecycle::{MembershipView, StoreHealth};
use crate::plan::{self, ObjectRecord};
use crate::{
    shared_history, AddressSpace, CallError, CoherenceMsg, CommObject, GlobeRuntime,
    InvocationMessage, ObjectSpec, ReplicationPolicy, RequestId, RuntimeConfig, Semantics,
    SharedHistory, SharedMetrics,
};

/// Error creating or binding an object in the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The object name is already registered.
    NameTaken(String),
    /// Object placement listed no permanent store.
    NoPermanentStore,
    /// The referenced node does not exist in the runtime.
    UnknownNode(NodeId),
    /// The referenced object does not exist.
    UnknownObject(ObjectId),
    /// The object name failed to parse.
    BadName(String),
    /// The requested store to bind to does not hold a replica.
    NoSuchReplica,
    /// The replication policy failed validation.
    BadPolicy(String),
    /// The runtime cannot perform the operation in its current state.
    Unsupported(String),
    /// Removing or crash-restarting the home store requires a surviving
    /// permanent store to elect as the new sequencer, and none exists.
    NoFailoverCandidate,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NameTaken(name) => write!(f, "object name {name} is already taken"),
            RuntimeError::NoPermanentStore => {
                write!(f, "object placement must include a permanent store")
            }
            RuntimeError::UnknownNode(node) => write!(f, "node {node} does not exist"),
            RuntimeError::UnknownObject(object) => write!(f, "object {object} does not exist"),
            RuntimeError::BadName(why) => write!(f, "bad object name: {why}"),
            RuntimeError::NoSuchReplica => write!(f, "no replica matches the binding request"),
            RuntimeError::BadPolicy(why) => write!(f, "bad replication policy: {why}"),
            RuntimeError::Unsupported(why) => write!(f, "unsupported operation: {why}"),
            RuntimeError::NoFailoverCandidate => write!(
                f,
                "no surviving permanent store can be elected as the new home"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A client's handle to a bound distributed object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientHandle {
    /// The bound object.
    pub object: ObjectId,
    /// The node (address space) the client runs in.
    pub node: NodeId,
    /// The client's identity.
    pub client: ClientId,
}

/// Which replica a client's reads should bind to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadChoice {
    /// The nearest replica of the deepest layer (what a browser does).
    #[default]
    Nearest,
    /// The nearest replica of a specific store class.
    Class(StoreClass),
    /// The replica hosted on a specific node.
    Node(NodeId),
}

/// Which store accepts a client's writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteChoice {
    /// The home (primary permanent) store — the paper's Fig. 3 shape,
    /// where "the Web master writes directly to the Web server".
    #[default]
    Home,
    /// The client's bound read store, when the object's coherence model
    /// permits local write ingress (all models except sequential). This
    /// realizes the §3.2.1 claim that PRAM-family models need no global
    /// coordination on the write path.
    Bound,
}

/// Options for [`GlobeSim::bind`].
#[derive(Debug, Clone, Default)]
pub struct BindOptions {
    /// Which replica serves this client's reads.
    pub read_from: ReadChoice,
    /// Which store accepts this client's writes.
    pub write_via: WriteChoice,
    /// Client-based coherence models to enforce for this client.
    pub guards: Vec<ClientModel>,
}

impl BindOptions {
    /// Default binding: nearest replica, no session guards.
    pub fn new() -> Self {
        BindOptions::default()
    }

    /// Binds reads to the replica on `node`.
    pub fn read_node(mut self, node: NodeId) -> Self {
        self.read_from = ReadChoice::Node(node);
        self
    }

    /// Binds reads to the nearest replica of `class`.
    pub fn read_class(mut self, class: StoreClass) -> Self {
        self.read_from = ReadChoice::Class(class);
        self
    }

    /// Routes writes through the bound read store when the coherence
    /// model allows it (falls back to the home store otherwise).
    pub fn write_local(mut self) -> Self {
        self.write_via = WriteChoice::Bound;
        self
    }

    /// Adds a client-based coherence model.
    pub fn guard(mut self, model: ClientModel) -> Self {
        if !self.guards.contains(&model) {
            self.guards.push(model);
        }
        self
    }
}

/// The simulated Globe middleware runtime.
///
/// # Examples
///
/// ```
/// use globe_core::{registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec,
///                  RegisterDoc, ReplicationPolicy};
/// use globe_coherence::StoreClass;
/// use globe_net::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = GlobeSim::new(Topology::lan(), 42);
/// let server = sim.add_node();
/// let browser = sim.add_node();
/// let obj = ObjectSpec::new("/home/alice")
///     .policy(ReplicationPolicy::personal_home_page())
///     .semantics(RegisterDoc::new)
///     .store(server, StoreClass::Permanent)
///     .create(&mut sim)?;
/// let alice = sim.bind(obj, browser, BindOptions::new())?;
/// sim.handle(alice).write(registers::put("index.html", b"<h1>hi</h1>"))?;
/// let page = sim.handle(alice).read(registers::get("index.html"))?;
/// assert_eq!(&page[..], b"<h1>hi</h1>");
/// # Ok(())
/// # }
/// ```
pub struct GlobeSim {
    net: SimNet,
    spaces: HashMap<NodeId, Rc<RefCell<AddressSpace>>>,
    names: NameSpace,
    locations: LocationService,
    objects: HashMap<ObjectId, ObjectRecord>,
    history: SharedHistory,
    metrics: SharedMetrics,
    next_client: u32,
    next_store: u32,
    call_timeout: Duration,
    detector: crate::lifecycle::DetectorConfig,
    tuning: crate::StoreTuning,
    storage: crate::storage::StorageSpec,
}

impl GlobeSim {
    /// Creates a runtime over `topology` with a deterministic seed.
    pub fn new(topology: Topology, seed: u64) -> Self {
        GlobeSim::with_config(topology, RuntimeConfig::new().seed(seed))
    }

    /// Creates a runtime over `topology` from a [`RuntimeConfig`] — the
    /// construction path symmetric with [`crate::GlobeTcp::with_config`].
    pub fn with_config(topology: Topology, config: RuntimeConfig) -> Self {
        GlobeSim {
            net: SimNet::new(topology, config.seed),
            spaces: HashMap::new(),
            names: NameSpace::new(),
            locations: LocationService::new(),
            objects: HashMap::new(),
            history: shared_history(),
            metrics: config.build_metrics(),
            next_client: 0,
            next_store: 0,
            // Virtual time is free, so the default deadline is generous.
            call_timeout: config.call_timeout.unwrap_or(Duration::from_secs(300)),
            detector: config.detector(),
            tuning: config.tuning(),
            storage: config.storage(),
        }
    }

    /// Adds an address space in region 0.
    pub fn add_node(&mut self) -> NodeId {
        self.add_node_in(RegionId::new(0))
    }

    /// Adds an address space in `region`.
    pub fn add_node_in(&mut self, region: RegionId) -> NodeId {
        let node = self.net.add_node_in(region);
        let space = Rc::new(RefCell::new(AddressSpace::with_scope(
            node,
            self.metrics.clone(),
            self.detector,
            0,
        )));
        let handler_space = Rc::clone(&space);
        self.net.set_handler(node, move |event, ctx| {
            handler_space.borrow_mut().handle_event(event, ctx);
        });
        self.spaces.insert(node, space);
        node
    }

    /// Maximum virtual time a synchronous call may take before
    /// [`CallError::TimedOut`].
    pub fn set_call_timeout(&mut self, timeout: Duration) {
        self.call_timeout = timeout;
    }

    /// Shared creation routine behind [`ObjectSpec`]. `placement` lists
    /// the stores holding replicas; the first `Permanent` entry becomes
    /// the home (sequencing) store; each store gets a fresh semantics
    /// instance from the factory.
    fn create_object_impl(
        &mut self,
        name: &str,
        policy: ReplicationPolicy,
        semantics_factory: &mut dyn FnMut() -> Box<dyn Semantics>,
        placement: &[(NodeId, StoreClass)],
    ) -> Result<ObjectId, RuntimeError> {
        let creation = plan::plan_creation(
            name,
            &policy,
            placement,
            &mut self.names,
            |node| self.spaces.contains_key(&node),
            &mut self.next_store,
        )?;
        let object = creation.object;
        creation.register_locations(&mut self.locations, |node| {
            self.net.topology().region_of(node)
        });
        let spaces = &self.spaces;
        let net = &mut self.net;
        creation.build_replicas(
            &policy,
            semantics_factory,
            &self.history,
            &self.metrics,
            self.detector,
            self.tuning,
            &self.storage,
            |node, replica| {
                let space = Rc::clone(&spaces[&node]);
                plan::install_store(&mut space.borrow_mut(), object, replica);
                net.with_ctx(node, |ctx| {
                    space.borrow_mut().start_object(object, ctx);
                });
            },
        );
        self.objects.insert(object, creation.into_record(policy));
        Ok(object)
    }

    /// The live `(is_home, epoch)` claim of the replica at `node`, if
    /// one is installed — the probe [`plan::effective_home`] uses to see
    /// past a driver record an unattended election has outdated.
    fn replica_claim(&self, object: ObjectId, node: NodeId) -> Option<(bool, u64)> {
        let space = self.spaces.get(&node)?;
        let space = space.borrow();
        let store = space.control(object)?.store()?;
        Some((store.is_home(), store.home_epoch()))
    }

    /// Refreshes the driver record from the replicas' own view of the
    /// sequencer, so lifecycle operations and bindings planned after an
    /// unattended fail-over target the elected home.
    fn sync_home(&mut self, object: ObjectId) {
        let Some(record) = self.objects.get(&object) else {
            return;
        };
        let home = plan::effective_home(record, |n| self.replica_claim(object, n));
        if let Some(record) = self.objects.get_mut(&object) {
            record.adopt_home(home);
        }
    }

    /// Installs an additional store (mirror or cache) at run time. The
    /// new replica announces itself to the home store with a
    /// `JoinRequest`; the home registers the peer and ships back a
    /// state transfer carrying the current state, version vector, and
    /// coherence write log.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or node is unknown, or
    /// the node already hosts a replica.
    pub fn add_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        class: StoreClass,
        semantics: Box<dyn Semantics>,
    ) -> Result<StoreId, RuntimeError> {
        if !self.spaces.contains_key(&node) {
            return Err(RuntimeError::UnknownNode(node));
        }
        self.sync_home(object);
        let (store_id, replica) = plan::plan_add_store(
            self.objects
                .get_mut(&object)
                .ok_or(RuntimeError::UnknownObject(object))?,
            node,
            class,
            &mut self.next_store,
            plan::ReplicaParts {
                object,
                semantics,
                history: &self.history,
                metrics: &self.metrics,
                detector: self.detector,
                tuning: self.tuning,
                storage: self.storage.clone(),
            },
        )?;
        self.locations.register(
            object,
            ContactRecord {
                node,
                class,
                region: self.net.topology().region_of(node),
            },
        );
        let space = Rc::clone(&self.spaces[&node]);
        plan::install_store(&mut space.borrow_mut(), object, replica);
        self.net.with_ctx(node, |ctx| {
            let mut space = space.borrow_mut();
            space.start_object(object, ctx);
            if let Some(store) = space.control_mut(object).and_then(|c| c.store_mut()) {
                store.join(ctx);
            }
        });
        Ok(store_id)
    }

    /// Removes the replica at `node` gracefully: the store is dropped,
    /// the location service forgets it, and the home store is told to
    /// stop propagating and heartbeating to it. Removing the *home*
    /// store elects a surviving permanent store as the new sequencer:
    /// the retiring home hands its coherence write log and version
    /// vector to the winner (`SequencerHandoff`), and every client
    /// session is rerouted to the new home.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or replica is unknown,
    /// or the replica is the home store and no surviving permanent store
    /// can take over.
    pub fn remove_store(&mut self, object: ObjectId, node: NodeId) -> Result<(), RuntimeError> {
        // An unattended election may have moved the sequencer since the
        // record was written; plan against the live view. The
        // detector's verdicts arbitrate the election; read them before
        // the record changes.
        self.sync_home(object);
        let view = self.membership(object).ok();
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let home = record.home_node;
        let (_, failover) = plan::plan_remove_store(record, node, view.as_ref())?;
        self.locations.unregister(object, node);
        let space = Rc::clone(&self.spaces[&node]);
        let comm = CommObject::new(object, self.metrics.clone());
        match failover {
            None => {
                self.net.with_ctx(node, |ctx| {
                    if let Some(control) = space.borrow_mut().control_mut(object) {
                        control.take_store();
                    }
                    comm.send(ctx, home, &CoherenceMsg::Leave { node });
                });
            }
            Some(f) => {
                // Capture the retiring home's authoritative write log
                // before its store is dropped, then ship it to the
                // elected successor (or, if the store is already gone,
                // tell the winner to promote from its own log).
                let msg = f.handoff_msg(
                    space
                        .borrow_mut()
                        .control_mut(object)
                        .and_then(|c| c.take_store())
                        .as_ref(),
                );
                self.net
                    .with_ctx(node, |ctx| comm.send(ctx, f.new_home, &msg));
                self.reroute_sessions(object, f.old_home, f.new_home, f.new_home_store, true);
            }
        }
        Ok(())
    }

    /// Points every bound session of `object` away from a failed home:
    /// pending retransmissions and future invocations then target the
    /// elected successor.
    fn reroute_sessions(
        &mut self,
        object: ObjectId,
        old_home: NodeId,
        new_home: NodeId,
        new_store: StoreId,
        reroute_reads: bool,
    ) {
        for space in self.spaces.values() {
            if let Some(control) = space.borrow_mut().control_mut(object) {
                control.reroute_sessions(old_home, new_home, new_store, reroute_reads);
            }
        }
    }

    /// Binds a client in `node`'s address space to `object`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object/node is unknown or the
    /// requested replica does not exist.
    pub fn bind(
        &mut self,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<ClientHandle, RuntimeError> {
        if !self.spaces.contains_key(&node) {
            return Err(RuntimeError::UnknownNode(node));
        }
        self.sync_home(object);
        let record = self
            .objects
            .get(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let region = self.net.topology().region_of(node);
        let session = plan::plan_session(object, record, opts, &self.locations, region)?;
        let client = ClientId::new(self.next_client);
        self.next_client += 1;
        let session =
            session.into_session(client, object, self.history.clone(), self.metrics.clone());
        let space = Rc::clone(&self.spaces[&node]);
        plan::install_session(&mut space.borrow_mut(), object, session);
        Ok(ClientHandle {
            object,
            node,
            client,
        })
    }

    /// Adds a client-based coherence model to an existing binding at run
    /// time — "when a client binds to a store and requests support for
    /// some client-based coherence model, the replication subobject of
    /// the store is easily augmented to integrate the implementation of
    /// the new coherence model" (§3.2.2). Guards the object model already
    /// subsumes are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the handle is unknown.
    pub fn add_guard(
        &mut self,
        handle: &ClientHandle,
        guard: ClientModel,
    ) -> Result<(), RuntimeError> {
        let space = Rc::clone(
            self.spaces
                .get(&handle.node)
                .ok_or(RuntimeError::UnknownNode(handle.node))?,
        );
        let mut space = space.borrow_mut();
        let session = space
            .control_mut(handle.object)
            .and_then(|c| c.session_mut(handle.client))
            .ok_or(RuntimeError::NoSuchReplica)?;
        session.add_guard(guard);
        Ok(())
    }

    /// Simulates a crash-and-restart of the replica at `node`: its
    /// in-memory state is discarded and it recovers through the
    /// lifecycle state-transfer protocol — the home store ships the
    /// current state together with the coherence history and version
    /// vector, the way a store recovers by re-binding to the object's
    /// permanent stores (§3.1: permanent stores implement persistence).
    ///
    /// Crash-restarting the *home* store triggers a fail-over: the
    /// lowest-id surviving permanent store is elected the new sequencer
    /// and promotes itself from its own replica of the write log
    /// (`ElectRequest`), client sessions are rerouted to it, and the old
    /// home rejoins its own object as an ordinary permanent replica.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or replica is unknown,
    /// or the replica is the home store and no surviving permanent store
    /// can take over.
    pub fn restart_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        fresh_semantics: Box<dyn Semantics>,
    ) -> Result<(), RuntimeError> {
        self.sync_home(object);
        let view = self.membership(object).ok();
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let (replica, failover) = plan::plan_restart_store(
            record,
            node,
            view.as_ref(),
            plan::ReplicaParts {
                object,
                semantics: fresh_semantics,
                history: &self.history,
                metrics: &self.metrics,
                detector: self.detector,
                tuning: self.tuning,
                storage: self.storage.clone(),
            },
        )?;
        let space = Rc::clone(&self.spaces[&node]);
        {
            let mut space = space.borrow_mut();
            let control = space
                .control_mut(object)
                .ok_or(RuntimeError::NoSuchReplica)?;
            control.set_store(replica);
        }
        if let Some(f) = &failover {
            // Tell the winner to promote from its own copy of the write
            // log before the fresh replica's join reaches it (same
            // source, same destination: FIFO delivery).
            let comm = CommObject::new(object, self.metrics.clone());
            let msg = f.elect_msg();
            self.net
                .with_ctx(node, |ctx| comm.send(ctx, f.new_home, &msg));
            self.reroute_sessions(object, f.old_home, f.new_home, f.new_home_store, false);
        }
        self.net.with_ctx(node, |ctx| {
            let mut space = space.borrow_mut();
            space.start_object(object, ctx);
            if let Some(store) = space.control_mut(object).and_then(|c| c.store_mut()) {
                store.join(ctx);
            }
        });
        Ok(())
    }

    /// Fault injection: isolates (or heals) the node's address space —
    /// see [`GlobeRuntime::partition_node`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the node is unknown.
    pub fn partition_node(&mut self, node: NodeId, isolated: bool) -> Result<(), RuntimeError> {
        self.spaces
            .get(&node)
            .ok_or(RuntimeError::UnknownNode(node))?
            .borrow_mut()
            .set_partitioned(isolated);
        Ok(())
    }

    /// A snapshot of the object's membership: every current store plus
    /// the home store's failure-detector verdicts.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object is unknown.
    pub fn membership(&self, object: ObjectId) -> Result<MembershipView, RuntimeError> {
        let record = self
            .objects
            .get(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        // The record may predate an unattended election: follow the
        // replicas' own claim of where the sequencer lives.
        let (home_node, _, _) = plan::effective_home(record, |n| self.replica_claim(object, n));
        let home_space = self.spaces.get(&home_node);
        Ok(plan::membership_view(object, record, home_node, |peer| {
            home_space
                .map(|s| s.borrow().node_health(peer))
                .unwrap_or((StoreHealth::Alive, None))
        }))
    }

    /// Rebinds a client's reads to the replica on `store_node` (clients
    /// may switch replicas; monotonic-reads guards make that safe).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if that node holds no replica.
    pub fn rebind_reads(
        &mut self,
        handle: &ClientHandle,
        store_node: NodeId,
    ) -> Result<(), RuntimeError> {
        let record = self
            .objects
            .get(&handle.object)
            .ok_or(RuntimeError::UnknownObject(handle.object))?;
        let store_id = record
            .stores
            .iter()
            .find(|(n, _, _)| *n == store_node)
            .map(|(_, id, _)| *id)
            .ok_or(RuntimeError::NoSuchReplica)?;
        let space = Rc::clone(&self.spaces[&handle.node]);
        let mut space = space.borrow_mut();
        let session = space
            .control_mut(handle.object)
            .and_then(|c| c.session_mut(handle.client))
            .ok_or(RuntimeError::NoSuchReplica)?;
        session.rebind_reads(store_node, store_id);
        Ok(())
    }

    /// Issues an asynchronous read; poll with [`GlobeSim::result`].
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] for an unknown handle.
    pub fn issue_read(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError> {
        let space = Rc::clone(self.spaces.get(&handle.node).ok_or(CallError::NotBound)?);
        self.net.with_ctx(handle.node, |ctx| {
            space
                .borrow_mut()
                .control_mut(handle.object)
                .ok_or(CallError::NotBound)?
                .client_read(handle.client, inv, ctx)
        })
    }

    /// Issues an asynchronous write; poll with [`GlobeSim::result`].
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] for an unknown handle.
    pub fn issue_write(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError> {
        let space = Rc::clone(self.spaces.get(&handle.node).ok_or(CallError::NotBound)?);
        self.net.with_ctx(handle.node, |ctx| {
            space
                .borrow_mut()
                .control_mut(handle.object)
                .ok_or(CallError::NotBound)?
                .client_write(handle.client, inv, ctx)
        })
    }

    /// Takes the result of an asynchronous call, if it completed.
    pub fn result(
        &mut self,
        handle: &ClientHandle,
        req: RequestId,
    ) -> Option<Result<Bytes, CallError>> {
        let space = self.spaces.get(&handle.node)?;
        let mut space = space.borrow_mut();
        space
            .control_mut(handle.object)?
            .take_result(handle.client, req)
    }

    fn pump(&mut self, handle: &ClientHandle, req: RequestId) -> Result<Bytes, CallError> {
        let deadline = self.net.now() + self.call_timeout;
        loop {
            if let Some(result) = self.result(handle, req) {
                return result;
            }
            if self.net.now() > deadline {
                return Err(CallError::TimedOut);
            }
            if !self.net.step() {
                return Err(CallError::Stalled);
            }
        }
    }

    fn read_impl(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<Bytes, CallError> {
        let req = self.issue_read(handle, inv)?;
        self.pump(handle, req)
    }

    fn write_impl(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<Bytes, CallError> {
        let req = self.issue_write(handle, inv)?;
        self.pump(handle, req)
    }

    /// Changes an object's replication policy at run time; the home store
    /// broadcasts the new policy to every replica (§5 future work).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for unknown objects or invalid policies.
    pub fn set_policy(
        &mut self,
        object: ObjectId,
        policy: ReplicationPolicy,
    ) -> Result<(), RuntimeError> {
        policy
            .validate()
            .map_err(|e| RuntimeError::BadPolicy(e.to_string()))?;
        self.sync_home(object);
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        record.policy = policy.clone();
        let home = record.home_node;
        let space = Rc::clone(&self.spaces[&home]);
        self.net.with_ctx(home, |ctx| {
            if let Some(store) = space
                .borrow_mut()
                .control_mut(object)
                .and_then(|c| c.store_mut())
            {
                store.set_policy(policy, ctx);
            }
        });
        Ok(())
    }

    /// Runs the simulation for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        self.net.run_for(d);
    }

    /// Runs until no events remain (beware periodic timers).
    pub fn run_until_quiescent(&mut self) -> usize {
        self.net.run_until_quiescent()
    }

    /// Processes at most `max_events` events.
    pub fn run_budget(&mut self, max_events: usize) -> usize {
        self.net.run_budget(max_events)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Network statistics.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// The shared execution history (for coherence checking).
    pub fn history(&self) -> SharedHistory {
        self.history.clone()
    }

    /// The shared metrics store.
    pub fn metrics(&self) -> SharedMetrics {
        self.metrics.clone()
    }

    /// The topology, for partitions and link changes mid-run.
    pub fn topology_mut(&mut self) -> &mut Topology {
        self.net.topology_mut()
    }

    /// Direct access to the underlying network (benchmarks).
    pub fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    /// Records every store's final state digest into the history, for
    /// convergence checking at the end of a run.
    pub fn finalize_digests(&mut self) {
        for (object, record) in &self.objects {
            for (node, _, _) in &record.stores {
                if let Some(space) = self.spaces.get(node) {
                    if let Some(store) = space.borrow().control(*object).and_then(|c| c.store()) {
                        store.record_final_digest();
                    }
                }
            }
        }
    }

    /// The state digest of the replica at `node`, if one exists.
    pub fn store_digest(&self, object: ObjectId, node: NodeId) -> Option<u64> {
        let space = self.spaces.get(&node)?;
        let space = space.borrow();
        let store = space.control(object)?.store()?;
        Some(store.final_digest())
    }

    /// The applied-version vector of the replica at `node`.
    pub fn store_version(&self, object: ObjectId, node: NodeId) -> Option<VersionVector> {
        let space = self.spaces.get(&node)?;
        let space = space.borrow();
        let store = space.control(object)?.store()?;
        Some(store.applied().clone())
    }

    /// The peer nodes the replica at `node` currently knows about — its
    /// copy of the object's membership, minus itself. Tests use this to
    /// assert membership refreshes actually reached a replica.
    pub fn store_peers(&self, object: ObjectId, node: NodeId) -> Option<Vec<NodeId>> {
        let space = self.spaces.get(&node)?;
        let space = space.borrow();
        let store = space.control(object)?.store()?;
        Some(store.peers().iter().map(|p| p.node).collect())
    }

    /// All stores of an object, as `(node, store id, class)` triples.
    pub fn stores_of(&self, object: ObjectId) -> Vec<(NodeId, StoreId, StoreClass)> {
        self.objects
            .get(&object)
            .map(|r| r.stores.clone())
            .unwrap_or_default()
    }

    /// The home (primary permanent) store's node, as the live replicas
    /// see it (an unattended election moves it without any driver call).
    pub fn home_of(&self, object: ObjectId) -> Option<NodeId> {
        self.objects
            .get(&object)
            .map(|r| plan::effective_home(r, |n| self.replica_claim(object, n)).0)
    }
}

impl GlobeRuntime for GlobeSim {
    fn add_node(&mut self) -> Result<NodeId, RuntimeError> {
        Ok(GlobeSim::add_node(self))
    }

    fn create_object(&mut self, spec: ObjectSpec) -> Result<ObjectId, RuntimeError> {
        let (path, policy, mut factory, placement) = spec.into_parts();
        self.create_object_impl(&path, policy, &mut *factory, &placement)
    }

    fn bind(
        &mut self,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<ClientHandle, RuntimeError> {
        GlobeSim::bind(self, object, node, opts)
    }

    fn issue_read(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError> {
        GlobeSim::issue_read(self, handle, inv)
    }

    fn issue_write(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError> {
        GlobeSim::issue_write(self, handle, inv)
    }

    fn result(
        &mut self,
        handle: &ClientHandle,
        req: RequestId,
    ) -> Option<Result<Bytes, CallError>> {
        if let Some(result) = GlobeSim::result(self, handle, req) {
            return Some(result);
        }
        // The trait contract promises that polling makes progress; step
        // the simulation once so a generic issue/poll loop terminates
        // here just as it does over real sockets.
        self.net.step();
        GlobeSim::result(self, handle, req)
    }

    fn read(&mut self, handle: &ClientHandle, inv: InvocationMessage) -> Result<Bytes, CallError> {
        self.read_impl(handle, inv)
    }

    fn write(&mut self, handle: &ClientHandle, inv: InvocationMessage) -> Result<Bytes, CallError> {
        self.write_impl(handle, inv)
    }

    fn set_policy(
        &mut self,
        object: ObjectId,
        policy: ReplicationPolicy,
    ) -> Result<(), RuntimeError> {
        GlobeSim::set_policy(self, object, policy)
    }

    fn add_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        class: StoreClass,
        semantics: Box<dyn Semantics>,
    ) -> Result<StoreId, RuntimeError> {
        GlobeSim::add_store(self, object, node, class, semantics)
    }

    fn remove_store(&mut self, object: ObjectId, node: NodeId) -> Result<(), RuntimeError> {
        GlobeSim::remove_store(self, object, node)
    }

    fn restart_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        fresh_semantics: Box<dyn Semantics>,
    ) -> Result<(), RuntimeError> {
        GlobeSim::restart_store(self, object, node, fresh_semantics)
    }

    fn partition_node(&mut self, node: NodeId, isolated: bool) -> Result<(), RuntimeError> {
        GlobeSim::partition_node(self, node, isolated)
    }

    fn membership(&self, object: ObjectId) -> Result<MembershipView, RuntimeError> {
        GlobeSim::membership(self, object)
    }

    fn history(&self) -> SharedHistory {
        GlobeSim::history(self)
    }

    fn metrics(&self) -> SharedMetrics {
        GlobeSim::metrics(self)
    }

    fn settle(&mut self, d: Duration) {
        self.run_for(d);
    }
}

impl fmt::Debug for GlobeSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobeSim")
            .field("nodes", &self.spaces.len())
            .field("objects", &self.objects.len())
            .field("now", &self.net.now())
            .finish()
    }
}
