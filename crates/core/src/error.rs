//! Errors surfaced by the object framework.

use std::fmt;

use crate::MethodId;

/// Error raised by a semantics object while dispatching an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemanticsError {
    /// The method id is not part of the object's interface.
    UnknownMethod(MethodId),
    /// The marshalled arguments could not be decoded.
    BadArguments(String),
    /// A snapshot could not be restored.
    BadState(String),
    /// A domain-level failure (e.g. page not found).
    Application(String),
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::UnknownMethod(m) => write!(f, "unknown method {m}"),
            SemanticsError::BadArguments(why) => write!(f, "bad arguments: {why}"),
            SemanticsError::BadState(why) => write!(f, "bad state: {why}"),
            SemanticsError::Application(why) => write!(f, "application error: {why}"),
        }
    }
}

impl std::error::Error for SemanticsError {}

/// Error completing a client call on a bound object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// The semantics object rejected the invocation.
    Semantics(String),
    /// The simulation stalled before a reply arrived (e.g. a `wait`
    /// outdate reaction with nothing left scheduled to unblock it).
    Stalled,
    /// The virtual-time deadline passed before a reply arrived.
    TimedOut,
    /// The handle has an operation outstanding; clients are sequential.
    Busy,
    /// The object is not bound in this address space.
    NotBound,
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Semantics(why) => write!(f, "semantics error: {why}"),
            CallError::Stalled => write!(f, "call stalled: nothing scheduled can complete it"),
            CallError::TimedOut => write!(f, "call timed out"),
            CallError::Busy => write!(f, "client already has an outstanding operation"),
            CallError::NotBound => write!(f, "object is not bound in this address space"),
        }
    }
}

impl std::error::Error for CallError {}

/// Error constructing or validating a replication policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// Lazy transfer requires a non-zero period.
    ZeroLazyPeriod,
    /// The combination of parameters is contradictory.
    Contradiction(&'static str),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::ZeroLazyPeriod => {
                write!(f, "lazy transfer instant requires a non-zero period")
            }
            PolicyError::Contradiction(why) => write!(f, "contradictory policy: {why}"),
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_meaningful() {
        assert!(SemanticsError::UnknownMethod(MethodId::new(9))
            .to_string()
            .contains("m9"));
        assert!(CallError::Stalled.to_string().contains("stalled"));
        assert!(PolicyError::ZeroLazyPeriod.to_string().contains("period"));
    }
}
