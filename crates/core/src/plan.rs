//! Backend-independent planning for object creation and client binding.
//!
//! All three runtimes (`GlobeSim`, `GlobeTcp`, `GlobeShard`) implement
//! the same creation and binding semantics: validate the policy and
//! name, pick the home store, allocate store ids, wire the home store's
//! peer list, resolve a client's read replica through the location
//! service, route its writes, and filter subsumed session guards. This
//! module holds that shared logic once, so a change to the semantics
//! cannot land in one backend and silently diverge the others (the
//! scenario matrix would catch it, but it should not have to). Each
//! runtime supplies only the backend-specific steps: where replicas are
//! installed and how their protocol machinery is started.

use globe_coherence::{ClientId, ClientModel, ObjectModel, StoreClass, StoreId};
use globe_naming::{ContactRecord, LocationService, NameSpace, ObjectId, ObjectName};
use globe_net::{NodeId, RegionId, SimTime};

use crate::lifecycle::{DetectorConfig, MembershipView, StoreHealth};
use crate::storage::StorageSpec;
use crate::{
    AddressSpace, BindOptions, ControlObject, PeerStore, ReplicationPolicy, RuntimeError,
    Semantics, Session, SessionConfig, SharedHistory, SharedMetrics, StoreConfig, StoreReplica,
    StoreTuning, WireMember, WriteChoice,
};

/// What every backend records about one created object.
pub(crate) struct ObjectRecord {
    pub(crate) policy: ReplicationPolicy,
    pub(crate) home_node: NodeId,
    pub(crate) home_store: StoreId,
    /// The election epoch of the recorded home: bumped by every
    /// driver-planned fail-over, and refreshed from the live replicas
    /// (see [`sync_record`]) so driver decisions made after an
    /// *unattended* election build on it instead of racing it.
    pub(crate) epoch: u64,
    pub(crate) stores: Vec<(NodeId, StoreId, StoreClass)>,
}

impl ObjectRecord {
    /// The object's full membership in the wire form every election and
    /// state-transfer message carries.
    pub(crate) fn membership(&self) -> Vec<WireMember> {
        self.stores.clone()
    }

    /// Adopts an [`effective_home`] probe result into the record.
    pub(crate) fn adopt_home(&mut self, home: (NodeId, StoreId, u64)) {
        let (node, store, epoch) = home;
        self.home_node = node;
        self.home_store = store;
        self.epoch = epoch;
    }
}

/// The live home of an object as the replicas themselves see it: driver
/// records go stale when an unattended election moves the sequencer, so
/// backends re-derive the home by probing each recorded replica for its
/// `(is_home, epoch)` claim and following the highest epoch (ties to
/// the lowest store id — the election rule).
pub(crate) fn effective_home(
    record: &ObjectRecord,
    probe: impl Fn(NodeId) -> Option<(bool, u64)>,
) -> (NodeId, StoreId, u64) {
    let mut best = (record.home_node, record.home_store, record.epoch);
    let mut best_claim: Option<(u64, StoreId)> = None;
    for &(node, store, _) in &record.stores {
        if let Some((true, epoch)) = probe(node) {
            let claim = (epoch, store);
            let wins = match best_claim {
                None => true,
                Some((e, s)) => epoch > e || (epoch == e && store < s),
            };
            if wins && epoch >= record.epoch {
                best_claim = Some(claim);
                best = (node, store, epoch);
            }
        }
    }
    best
}

/// The validated, id-allocated shape of one object about to be created.
pub(crate) struct CreationPlan {
    pub(crate) object: ObjectId,
    home_index: usize,
    pub(crate) home_node: NodeId,
    home_store: StoreId,
    stores: Vec<(NodeId, StoreId, StoreClass)>,
}

/// Validates `name`, `policy`, and `placement`, registers the name, and
/// allocates store ids. The first `Permanent` entry becomes the home
/// (sequencing) store, as in the paper's Fig. 3.
pub(crate) fn plan_creation(
    name: &str,
    policy: &ReplicationPolicy,
    placement: &[(NodeId, StoreClass)],
    names: &mut NameSpace,
    node_exists: impl Fn(NodeId) -> bool,
    next_store: &mut u32,
) -> Result<CreationPlan, RuntimeError> {
    policy
        .validate()
        .map_err(|e| RuntimeError::BadPolicy(e.to_string()))?;
    let parsed: ObjectName = name
        .parse()
        .map_err(|e: globe_naming::ParseNameError| RuntimeError::BadName(e.to_string()))?;
    for (node, _) in placement {
        if !node_exists(*node) {
            return Err(RuntimeError::UnknownNode(*node));
        }
    }
    let home_index = placement
        .iter()
        .position(|(_, class)| *class == StoreClass::Permanent)
        .ok_or(RuntimeError::NoPermanentStore)?;
    let object = names
        .register(parsed)
        .map_err(|_| RuntimeError::NameTaken(name.to_string()))?;
    let mut stores = Vec::with_capacity(placement.len());
    for (node, class) in placement {
        let store_id = StoreId::new(*next_store);
        *next_store += 1;
        stores.push((*node, store_id, *class));
    }
    Ok(CreationPlan {
        object,
        home_index,
        home_node: placement[home_index].0,
        home_store: stores[home_index].1,
        stores,
    })
}

impl CreationPlan {
    /// Registers every replica's contact record, with the backend
    /// deciding each node's region (region 0 everywhere except the
    /// simulator's topology).
    pub(crate) fn register_locations(
        &self,
        locations: &mut LocationService,
        region_of: impl Fn(NodeId) -> RegionId,
    ) {
        for (node, _, class) in &self.stores {
            locations.register(
                self.object,
                ContactRecord {
                    node: *node,
                    class: *class,
                    region: region_of(*node),
                },
            );
        }
    }

    /// Builds one [`StoreReplica`] per planned store — every replica
    /// carrying the full peer list, so any surviving permanent store
    /// can run the unattended election from its own copy of the
    /// membership — and hands each to `install` for backend-specific
    /// placement and protocol start-up.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_replicas(
        &self,
        policy: &ReplicationPolicy,
        semantics_factory: &mut dyn FnMut() -> Box<dyn Semantics>,
        history: &SharedHistory,
        metrics: &SharedMetrics,
        detector: DetectorConfig,
        tuning: StoreTuning,
        storage: &StorageSpec,
        mut install: impl FnMut(NodeId, StoreReplica),
    ) {
        for (index, (node, store_id, class)) in self.stores.iter().enumerate() {
            let is_home = index == self.home_index;
            let peers = self
                .stores
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != index)
                .map(|(_, (n, s, c))| PeerStore {
                    node: *n,
                    store: *s,
                    class: *c,
                })
                .collect();
            install(
                *node,
                StoreReplica::new(StoreConfig {
                    object: self.object,
                    store_id: *store_id,
                    class: *class,
                    policy: policy.clone(),
                    home_node: self.home_node,
                    home_store: self.home_store,
                    is_home,
                    peers,
                    semantics: semantics_factory(),
                    history: history.clone(),
                    metrics: metrics.clone(),
                    detector,
                    tuning,
                    storage: storage.clone(),
                }),
            );
        }
    }

    /// The record the runtime keeps once every replica is installed.
    pub(crate) fn into_record(self, policy: ReplicationPolicy) -> ObjectRecord {
        ObjectRecord {
            policy,
            home_node: self.home_node,
            home_store: self.home_store,
            epoch: 0,
            stores: self.stores,
        }
    }
}

/// Everything shared handles need to build a non-home replica outside
/// the creation path (dynamic add and crash-restart).
pub(crate) struct ReplicaParts<'a> {
    pub(crate) object: ObjectId,
    pub(crate) semantics: Box<dyn Semantics>,
    pub(crate) history: &'a SharedHistory,
    pub(crate) metrics: &'a SharedMetrics,
    pub(crate) detector: DetectorConfig,
    pub(crate) tuning: StoreTuning,
    pub(crate) storage: StorageSpec,
}

/// The resolved shape of a home-store fail-over: which surviving
/// permanent store was elected the new sequencer, the election epoch,
/// and the full membership it must adopt. Produced by
/// [`plan_remove_store`] / [`plan_restart_store`] when the store being
/// removed or crash-restarted is the home; the backend then moves the
/// write log (a graceful `SequencerHandoff` from the retiring home, or
/// an `ElectRequest` telling the winner to promote from its own replica
/// of the log) and reroutes client sessions.
pub(crate) struct FailoverPlan {
    pub(crate) old_home: NodeId,
    pub(crate) new_home: NodeId,
    pub(crate) new_home_store: StoreId,
    /// The election epoch of this fail-over (stale elections are
    /// rejected by the stores).
    pub(crate) epoch: u64,
    /// The object's full membership after the fail-over (for a
    /// crash-restart this includes the failed home itself, which rejoins
    /// as an ordinary permanent replica).
    pub(crate) members: Vec<WireMember>,
}

impl FailoverPlan {
    /// The message that moves the sequencer to the winner: the retiring
    /// home's full hand-off when its store is still reachable, or an
    /// election request telling the winner to promote from its own
    /// replica of the write log. One decision point for every backend,
    /// so the protocol cannot diverge per runtime.
    pub(crate) fn handoff_msg(&self, retiring: Option<&StoreReplica>) -> crate::CoherenceMsg {
        match retiring {
            Some(store) => store.sequencer_handoff_msg(
                self.old_home,
                self.new_home,
                self.new_home_store,
                self.epoch,
                self.members.clone(),
            ),
            None => self.elect_msg(),
        }
    }

    /// The crash-path election request: the winner promotes itself from
    /// its own copy of the write log.
    pub(crate) fn elect_msg(&self) -> crate::CoherenceMsg {
        crate::CoherenceMsg::ElectRequest {
            peers: self.members.clone(),
            epoch: self.epoch,
        }
    }
}

/// The deterministic election rule: among the surviving permanent
/// stores, the lowest store id wins. The membership view (the failing
/// home's failure detector, when reachable) arbitrates: suspects are
/// passed over unless no candidate is believed alive.
fn elect_new_home(
    record: &ObjectRecord,
    failed: NodeId,
    view: Option<&MembershipView>,
) -> Result<(NodeId, StoreId), RuntimeError> {
    let candidates: Vec<(NodeId, StoreId)> = record
        .stores
        .iter()
        .filter(|(node, _, class)| *node != failed && *class == StoreClass::Permanent)
        .map(|(node, store, _)| (*node, *store))
        .collect();
    let alive: Vec<(NodeId, StoreId)> = candidates
        .iter()
        .filter(|(node, _)| {
            view.and_then(|v| v.member(*node))
                .map(|m| m.health == StoreHealth::Alive)
                .unwrap_or(true)
        })
        .copied()
        .collect();
    let pool = if alive.is_empty() {
        &candidates
    } else {
        &alive
    };
    pool.iter()
        .min_by_key(|(_, store)| *store)
        .copied()
        .ok_or(RuntimeError::NoFailoverCandidate)
}

/// Elects a new home for a failing one and rewrites the record so every
/// later plan (bindings, membership) sees the successor as the
/// sequencer. `drop_failed` removes the failed node from the membership
/// entirely (graceful removal); otherwise it stays and rejoins as an
/// ordinary permanent replica (crash-restart).
fn plan_failover(
    record: &mut ObjectRecord,
    failed: NodeId,
    view: Option<&MembershipView>,
    drop_failed: bool,
) -> Result<FailoverPlan, RuntimeError> {
    let (new_home, new_home_store) = elect_new_home(record, failed, view)?;
    if drop_failed {
        record.stores.retain(|(node, _, _)| *node != failed);
    }
    record.home_node = new_home;
    record.home_store = new_home_store;
    record.epoch += 1;
    Ok(FailoverPlan {
        old_home: failed,
        new_home,
        new_home_store,
        epoch: record.epoch,
        members: record.membership(),
    })
}

/// Validates a dynamic store installation against the object record,
/// allocates its store id, records it, and builds the replica. The
/// backend still installs it, starts its timers, and has it `join`.
pub(crate) fn plan_add_store(
    record: &mut ObjectRecord,
    node: NodeId,
    class: StoreClass,
    next_store: &mut u32,
    parts: ReplicaParts<'_>,
) -> Result<(StoreId, StoreReplica), RuntimeError> {
    if record.stores.iter().any(|(n, _, _)| *n == node) {
        return Err(RuntimeError::BadPolicy(format!(
            "node {node} already hosts a replica of this object"
        )));
    }
    let store_id = StoreId::new(*next_store);
    *next_store += 1;
    record.stores.push((node, store_id, class));
    let replica = replica_for(record, store_id, class, parts);
    Ok((store_id, replica))
}

/// Validates a crash-restart against the object record and builds the
/// fresh replica (same store id, empty state). The backend swaps it in,
/// starts its timers, and has it `join` to receive the state transfer.
///
/// Crash-restarting the *home* store triggers a fail-over: a surviving
/// permanent store is elected the new sequencer (returned as the
/// [`FailoverPlan`]), the record is rewritten, and the fresh replica is
/// built as an ordinary peer of the successor — the old home rejoins its
/// own object as a mirror of the new sequencer.
pub(crate) fn plan_restart_store(
    record: &mut ObjectRecord,
    node: NodeId,
    view: Option<&MembershipView>,
    parts: ReplicaParts<'_>,
) -> Result<(StoreReplica, Option<FailoverPlan>), RuntimeError> {
    let (_, store_id, class) = *record
        .stores
        .iter()
        .find(|(n, _, _)| *n == node)
        .ok_or(RuntimeError::NoSuchReplica)?;
    let failover = if node == record.home_node {
        Some(plan_failover(record, node, view, false)?)
    } else {
        None
    };
    Ok((replica_for(record, store_id, class, parts), failover))
}

/// Validates a graceful removal and drops the replica from the record.
/// The backend still uninstalls it and tells the home store to forget
/// the peer (a `Leave` control message).
///
/// Removing the *home* store triggers a fail-over (returned as the
/// [`FailoverPlan`]): a surviving permanent store is elected the new
/// sequencer and the backend hands it the retiring home's write log.
pub(crate) fn plan_remove_store(
    record: &mut ObjectRecord,
    node: NodeId,
    view: Option<&MembershipView>,
) -> Result<(StoreId, Option<FailoverPlan>), RuntimeError> {
    let (_, store_id, _) = *record
        .stores
        .iter()
        .find(|(n, _, _)| *n == node)
        .ok_or(RuntimeError::NoSuchReplica)?;
    if node == record.home_node {
        let failover = plan_failover(record, node, view, true)?;
        return Ok((store_id, Some(failover)));
    }
    record.stores.retain(|(n, _, _)| *n != node);
    Ok((store_id, None))
}

fn replica_for(
    record: &ObjectRecord,
    store_id: StoreId,
    class: StoreClass,
    parts: ReplicaParts<'_>,
) -> StoreReplica {
    let peers = record
        .stores
        .iter()
        .filter(|(_, id, _)| *id != store_id)
        .map(|&(node, store, class)| PeerStore { node, store, class })
        .collect();
    let mut replica = StoreReplica::new(StoreConfig {
        object: parts.object,
        store_id,
        class,
        policy: record.policy.clone(),
        home_node: record.home_node,
        home_store: record.home_store,
        is_home: false,
        peers,
        semantics: parts.semantics,
        history: parts.history.clone(),
        metrics: parts.metrics.clone(),
        detector: parts.detector,
        tuning: parts.tuning,
        storage: parts.storage,
    });
    // Born empty outside the creation path: the first state transfer
    // must land even if a newer write races ahead of it.
    replica.mark_needs_bootstrap();
    replica
}

/// Assembles a [`crate::lifecycle::MembershipView`] from the object
/// record, the effective home, and the home node's node-level failure
/// detector (queried through `health`; backends pass a closure over the
/// home space's [`crate::AddressSpace::node_health`], or one returning
/// `Alive` when the home space is unreachable).
pub(crate) fn membership_view(
    object: ObjectId,
    record: &ObjectRecord,
    home_node: NodeId,
    health: impl Fn(NodeId) -> (StoreHealth, Option<SimTime>),
) -> crate::lifecycle::MembershipView {
    use crate::lifecycle::MemberInfo;
    let mut members: Vec<MemberInfo> = record
        .stores
        .iter()
        .map(|(node, store_id, class)| {
            let is_home = *node == home_node;
            let (health, last_heard) = if is_home {
                (StoreHealth::Alive, None)
            } else {
                health(*node)
            };
            MemberInfo {
                node: *node,
                store: *store_id,
                class: *class,
                is_home,
                health,
                last_heard,
            }
        })
        .collect();
    members.sort_by_key(|m| !m.is_home);
    MembershipView { object, members }
}

/// The resolved shape of one client binding: where reads and writes go
/// and which session guards remain after subsumption filtering.
pub(crate) struct SessionPlan {
    model: ObjectModel,
    guards: Vec<ClientModel>,
    read_node: NodeId,
    read_store: StoreId,
    write_node: NodeId,
    write_store: StoreId,
}

/// Resolves a bind request against an object's record: the read replica
/// via the location service (nearest, by class, or pinned), the write
/// store (the bound replica when the coherence model accepts local
/// writes and the client asked for it, the home store otherwise), and
/// the surviving guards.
pub(crate) fn plan_session(
    object: ObjectId,
    record: &ObjectRecord,
    opts: BindOptions,
    locations: &LocationService,
    region: RegionId,
) -> Result<SessionPlan, RuntimeError> {
    let read_node = match opts.read_from {
        crate::ReadChoice::Nearest => {
            locations
                .nearest_any_layer(object, region)
                .map_err(|_| RuntimeError::NoSuchReplica)?
                .node
        }
        crate::ReadChoice::Class(class) => {
            locations
                .nearest(object, region, Some(class))
                .map_err(|_| RuntimeError::NoSuchReplica)?
                .node
        }
        crate::ReadChoice::Node(n) => n,
    };
    let read_store = record
        .stores
        .iter()
        .find(|(n, _, _)| *n == read_node)
        .map(|(_, id, _)| *id)
        .ok_or(RuntimeError::NoSuchReplica)?;
    let local_ok = crate::replication::replication_for(record.policy.model).accepts_local_writes();
    let (write_node, write_store) = match opts.write_via {
        WriteChoice::Bound if local_ok => (read_node, read_store),
        _ => (record.home_node, record.home_store),
    };
    let guards = opts
        .guards
        .into_iter()
        .filter(|g| !record.policy.model.subsumes(*g))
        .collect();
    Ok(SessionPlan {
        model: record.policy.model,
        guards,
        read_node,
        read_store,
        write_node,
        write_store,
    })
}

impl SessionPlan {
    /// Materializes the session once the runtime has allocated the
    /// client id.
    pub(crate) fn into_session(
        self,
        client: ClientId,
        object: ObjectId,
        history: SharedHistory,
        metrics: SharedMetrics,
    ) -> Session {
        Session::new(SessionConfig {
            client,
            object,
            model: self.model,
            guards: self.guards,
            read_node: self.read_node,
            read_store: self.read_store,
            write_node: self.write_node,
            write_store: self.write_store,
            history,
            metrics,
        })
    }
}

/// Installs a store replica into a space, reusing the object's control
/// object if one is already present (e.g. a proxy from an earlier bind).
pub(crate) fn install_store(space: &mut AddressSpace, object: ObjectId, replica: StoreReplica) {
    match space.control_mut(object) {
        Some(control) => control.set_store(replica),
        None => space.install(ControlObject::with_store(object, replica)),
    }
}

/// Installs a client session into a space, creating a proxy-only control
/// object if the node hosts no replica.
pub(crate) fn install_session(space: &mut AddressSpace, object: ObjectId, session: Session) {
    match space.control_mut(object) {
        Some(control) => control.add_session(session),
        None => {
            let mut control = ControlObject::proxy_only(object);
            control.add_session(session);
            space.install(control);
        }
    }
}
