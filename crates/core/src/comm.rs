//! The communication sub-object.
//!
//! "This is generally a system-provided local object. It is responsible
//! for handling communication between parts of the distributed object
//! that reside in different address spaces … a communication object may
//! offer primitives for point-to-point communication, multicast
//! facilities, or both" (§2).

use globe_naming::ObjectId;
use globe_net::{NetCtx, NodeId};

use crate::{CoherenceMsg, NetMsg, SharedMetrics};

/// Point-to-point and multicast messaging scoped to one distributed
/// object, with per-kind traffic accounting.
#[derive(Debug, Clone)]
pub struct CommObject {
    object: ObjectId,
    metrics: SharedMetrics,
}

impl CommObject {
    /// Creates a communication object for `object`.
    pub fn new(object: ObjectId, metrics: SharedMetrics) -> Self {
        CommObject { object, metrics }
    }

    /// The distributed object this comm object serves.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// Sends one coherence message to a peer node.
    pub fn send(&self, ctx: &mut dyn NetCtx, to: NodeId, msg: &CoherenceMsg) {
        let env = NetMsg {
            object: self.object,
            msg: msg.clone(),
        };
        let payload = globe_wire::to_bytes(&env);
        self.metrics
            .lock()
            .record_msg(msg.kind_name(), payload.len());
        ctx.send(to, payload);
    }

    /// Sends the same coherence message to many peers (the multicast
    /// facility of the paper's Web-server communication object).
    pub fn multicast<I>(&self, ctx: &mut dyn NetCtx, to: I, msg: &CoherenceMsg)
    where
        I: IntoIterator<Item = NodeId>,
    {
        for node in to {
            self.send(ctx, node, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use bytes::Bytes;
    use globe_coherence::VersionVector;
    use globe_net::{Event, SimNet, Topology};

    use crate::shared_metrics;

    use super::*;

    #[test]
    fn send_and_multicast_account_traffic() {
        let mut net = SimNet::new(Topology::lan(), 0);
        let a = net.add_node();
        let b = net.add_node();
        let c = net.add_node();
        let metrics = shared_metrics();
        let comm = CommObject::new(ObjectId::new(1), metrics.clone());
        let msg = CoherenceMsg::Notify {
            version: VersionVector::new(),
        };

        let received = std::rc::Rc::new(std::cell::Cell::new(0u32));
        for node in [b, c] {
            let received = received.clone();
            net.set_handler(node, move |event, _ctx| {
                if let Event::Message { payload, .. } = event {
                    let env: NetMsg = globe_wire::from_bytes(&payload).unwrap();
                    assert_eq!(env.object, ObjectId::new(1));
                    assert_eq!(env.msg.kind_name(), "Notify");
                    received.set(received.get() + 1);
                }
            });
        }
        net.with_ctx(a, |ctx| {
            comm.send(ctx, b, &msg);
            comm.multicast(ctx, [b, c], &msg);
        });
        net.run_until_quiescent();
        assert_eq!(received.get(), 3);
        let m = metrics.lock();
        assert_eq!(m.traffic["Notify"].count, 3);
        assert!(m.traffic["Notify"].bytes > 0);
        drop(m);
        // Silence unused warning for Bytes import in some cfgs.
        let _ = Bytes::new();
    }
}
