//! Marshalled invocation messages.

use std::fmt;

use bytes::{Buf, BufMut, Bytes};
use globe_wire::{WireDecode, WireEncode, WireError};

use crate::MethodId;

/// Whether a method only observes state or also modifies it.
///
/// The control object needs this classification to route an invocation
/// through the replication object correctly; it is the *only* semantic
/// knowledge the framework requires about a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Observes state; may execute at any replica.
    Read,
    /// Modifies state; subject to the object's coherence model.
    Write,
}

impl fmt::Display for MethodKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MethodKind::Read => "read",
            MethodKind::Write => "write",
        })
    }
}

/// A marshalled method invocation: "invocation messages in which method
/// identifiers and parameters have been encoded" (§2).
///
/// Replication and communication objects forward, buffer, log, and replay
/// these without ever interpreting `args`.
///
/// # Examples
///
/// ```
/// use globe_core::{InvocationMessage, MethodId};
///
/// let inv = InvocationMessage::new(MethodId::new(1), bytes::Bytes::from_static(b"index.html"));
/// assert_eq!(inv.method, MethodId::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationMessage {
    /// The invoked method.
    pub method: MethodId,
    /// Marshalled parameters, opaque to the framework.
    pub args: Bytes,
}

impl InvocationMessage {
    /// Creates an invocation message.
    pub fn new(method: MethodId, args: Bytes) -> Self {
        InvocationMessage { method, args }
    }
}

impl WireEncode for InvocationMessage {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.method.encode(buf);
        self.args.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.method.encoded_len() + self.args.encoded_len()
    }
}

impl WireDecode for InvocationMessage {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(InvocationMessage {
            method: MethodId::decode(buf)?,
            args: Bytes::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let inv = InvocationMessage::new(MethodId::new(7), Bytes::from_static(b"\x01page"));
        let b = globe_wire::to_bytes(&inv);
        assert_eq!(
            globe_wire::from_bytes::<InvocationMessage>(&b).unwrap(),
            inv
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(MethodKind::Read.to_string(), "read");
        assert_eq!(MethodKind::Write.to_string(), "write");
    }
}
