//! The protocol flight recorder: a typed, bounded event journal.
//!
//! Every protocol-significant step — staging, flushing, ordering,
//! fan-out, application, acknowledgement, lease traffic, suspicion and
//! takeover — can be captured as a [`ProtocolEvent`], stamped with the
//! emitting node/store/object and the backend's notion of *now*
//! (virtual [`SimTime`] on the simulator, wall-epoch nanoseconds on the
//! TCP and shard backends), and recorded into a bounded per-node ring
//! ([`TraceLog`]). Capture is off by default
//! (`RuntimeConfig::trace_capacity(0)`): the hot path pays exactly one
//! branch. A [`TraceSnapshot`] merges the rings into one time-ordered
//! journal, derives structured views (per-write latency breakdown,
//! flush-reason histogram, fail-over timeline), and feeds the
//! [`TraceChecker`], which asserts protocol invariants directly from
//! the journal.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use globe_coherence::{StoreId, VersionVector, WriteId};
use globe_naming::ObjectId;
use globe_net::{NodeId, SimTime};

/// Why a sequencer's staged batch flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlushReason {
    /// The batch reached `batch_max` staged writes.
    Max,
    /// The `batch_window` timer expired on a partial batch.
    Window,
    /// A read arrived; the batch flushed so the read sees staged writes.
    Read,
    /// A peer demanded an update; staged writes must be ordered first.
    Demand,
    /// A policy change; staged writes commit under the outgoing policy.
    Policy,
}

impl FlushReason {
    /// All reasons, in histogram order.
    pub const ALL: [FlushReason; 5] = [
        FlushReason::Max,
        FlushReason::Window,
        FlushReason::Read,
        FlushReason::Demand,
        FlushReason::Policy,
    ];

    /// Stable label (JSON field names, histograms).
    pub const fn name(self) -> &'static str {
        match self {
            FlushReason::Max => "max",
            FlushReason::Window => "window",
            FlushReason::Read => "read",
            FlushReason::Demand => "demand",
            FlushReason::Policy => "policy",
        }
    }
}

/// Which path served a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReadSource {
    /// The home (sequencing) store answered.
    Home,
    /// A permanent replica answered locally under a valid read lease.
    Lease,
    /// A replica answered locally because its policy allows local reads
    /// (leases not in play).
    LocalPolicy,
}

impl ReadSource {
    /// Stable label (JSON field names, histograms).
    pub const fn name(self) -> &'static str {
        match self {
            ReadSource::Home => "home",
            ReadSource::Lease => "lease",
            ReadSource::LocalPolicy => "local_policy",
        }
    }
}

/// One protocol-significant step, as the emitting replica saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A group-committing sequencer staged a write.
    WriteStaged {
        /// The staged write.
        write: WriteId,
    },
    /// The staged batch flushed: `size` writes admitted in one pass.
    BatchFlushed {
        /// What forced the flush.
        reason: FlushReason,
        /// Writes in the flushed batch.
        size: usize,
    },
    /// The sequencer assigned `seq` in the total order, under its
    /// election `epoch`.
    WriteOrdered {
        /// The ordered write.
        write: WriteId,
        /// The assigned total-order slot.
        seq: u64,
        /// The sequencer's election epoch at assignment.
        epoch: u64,
    },
    /// The home fanned pending writes out to `peers` in-scope peers.
    FanoutSent {
        /// Peers that received a transfer frame in this pass.
        peers: usize,
    },
    /// The write was applied to this replica's semantics state.
    WriteApplied {
        /// The applied write.
        write: WriteId,
    },
    /// This replica sent the client-facing acknowledgement.
    WriteAcked {
        /// The acknowledged write.
        write: WriteId,
    },
    /// A read was answered here, by the named path.
    ReadServed {
        /// Which path served it.
        source: ReadSource,
    },
    /// This replica installed a fresh read lease.
    LeaseGranted {
        /// The granting sequencer's epoch.
        epoch: u64,
    },
    /// This replica refreshed a lease it already held.
    LeaseRenewed {
        /// The granting sequencer's epoch.
        epoch: u64,
    },
    /// This replica's lease was dropped (revocation frame, suspicion,
    /// epoch change, demotion).
    LeaseRevoked {
        /// The epoch this replica followed when the lease died.
        epoch: u64,
    },
    /// This replica noticed its lease had lapsed (validity window or
    /// grant-point staleness) when a read tried to use it.
    LeaseExpired {
        /// The epoch this replica followed at the refusal.
        epoch: u64,
    },
    /// The failure detector reported `peer` as suspect to this replica.
    SuspicionRaised {
        /// The suspect node.
        peer: NodeId,
    },
    /// This replica decided to run for sequencer at `epoch`.
    ElectionStarted {
        /// The epoch the election targets.
        epoch: u64,
    },
    /// This replica announced its takeover at `epoch`.
    TakeoverAnnounced {
        /// The epoch of the takeover.
        epoch: u64,
    },
    /// The home shipped a full state transfer to a joiner at `to`.
    StateTransferSent {
        /// The joiner's node.
        to: NodeId,
        /// Write-log entries carried by the transfer.
        entries: usize,
    },
    /// This replica installed a lifecycle state transfer.
    StateTransferInstalled,
    /// This replica checkpointed its storage backend (snapshot at the
    /// current applied vector; durable backends persist it).
    CheckpointTaken {
        /// Logical log length at the checkpoint.
        log_len: usize,
    },
    /// The home recorded a peer's ack of the pending checkpoint (the
    /// receive side of [`CheckpointTaken`]'s announce/ack round; when
    /// the last ack lands the covered log prefix becomes compactable).
    CheckpointAcked {
        /// The acking peer.
        from: NodeId,
        /// Peers whose ack is still outstanding after this one.
        outstanding: usize,
    },
    /// This replica dropped a fully-acknowledged log prefix.
    LogCompacted {
        /// Entries truncated in this pass.
        truncated: usize,
    },
    /// The home shipped an incremental (suffix-only) state transfer.
    DeltaTransferSent {
        /// The recovering joiner's node.
        to: NodeId,
        /// Write-log entries carried by the delta (across all chunks).
        entries: usize,
        /// Chunks the delta was split into.
        chunks: usize,
    },
    /// This replica assembled and applied an incremental transfer.
    DeltaTransferInstalled {
        /// Writes applied from the delta.
        entries: usize,
    },
    /// This replica restored a checkpoint from local durable storage at
    /// start-up; nothing below `version` may be applied again.
    CheckpointInstalled {
        /// The restored checkpoint's applied vector.
        version: VersionVector,
    },
}

impl ProtocolEvent {
    /// Stable event-kind label (JSON, histograms).
    pub const fn kind(&self) -> &'static str {
        match self {
            ProtocolEvent::WriteStaged { .. } => "write_staged",
            ProtocolEvent::BatchFlushed { .. } => "batch_flushed",
            ProtocolEvent::WriteOrdered { .. } => "write_ordered",
            ProtocolEvent::FanoutSent { .. } => "fanout_sent",
            ProtocolEvent::WriteApplied { .. } => "write_applied",
            ProtocolEvent::WriteAcked { .. } => "write_acked",
            ProtocolEvent::ReadServed { .. } => "read_served",
            ProtocolEvent::LeaseGranted { .. } => "lease_granted",
            ProtocolEvent::LeaseRenewed { .. } => "lease_renewed",
            ProtocolEvent::LeaseRevoked { .. } => "lease_revoked",
            ProtocolEvent::LeaseExpired { .. } => "lease_expired",
            ProtocolEvent::SuspicionRaised { .. } => "suspicion_raised",
            ProtocolEvent::ElectionStarted { .. } => "election_started",
            ProtocolEvent::TakeoverAnnounced { .. } => "takeover_announced",
            ProtocolEvent::StateTransferSent { .. } => "state_transfer_sent",
            ProtocolEvent::StateTransferInstalled => "state_transfer_installed",
            ProtocolEvent::CheckpointTaken { .. } => "checkpoint_taken",
            ProtocolEvent::CheckpointAcked { .. } => "checkpoint_acked",
            ProtocolEvent::LogCompacted { .. } => "log_compacted",
            ProtocolEvent::DeltaTransferSent { .. } => "delta_transfer_sent",
            ProtocolEvent::DeltaTransferInstalled { .. } => "delta_transfer_installed",
            ProtocolEvent::CheckpointInstalled { .. } => "checkpoint_installed",
        }
    }
}

/// One journal entry: an event plus where and when it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Backend-appropriate instant: virtual time on sim, wall-epoch
    /// nanoseconds on TCP/shard.
    pub at: SimTime,
    /// The node that emitted the event.
    pub node: NodeId,
    /// The distributed object the event belongs to.
    pub object: ObjectId,
    /// The emitting replica's store id.
    pub store: StoreId,
    /// What happened.
    pub event: ProtocolEvent,
}

/// Bounded per-node ring buffers holding the captured journal.
///
/// Capacity is per node; when a ring is full the oldest entry is
/// evicted (and counted in `dropped`), so each surviving per-node
/// suffix stays contiguous and time-ordered. Capacity `0` disables
/// capture entirely.
#[derive(Debug, Default)]
pub struct TraceLog {
    capacity: usize,
    rings: BTreeMap<NodeId, VecDeque<TraceEvent>>,
    dropped: u64,
}

impl TraceLog {
    /// The per-node ring capacity (`0` = capture off).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets the per-node ring capacity. Shrinking evicts oldest-first.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        for ring in self.rings.values_mut() {
            while ring.len() > capacity {
                ring.pop_front();
                self.dropped += 1;
            }
        }
    }

    /// Whether capture is on.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Events evicted by ring overflow since the start of the run.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records an event into the emitter's ring (no-op when off).
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let ring = self.rings.entry(event.node).or_default();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped += 1;
        }
        ring.push_back(event);
    }

    /// Merges the rings into one snapshot. The merge concatenates the
    /// per-node rings and stable-sorts by instant, so each node's
    /// events keep their emission order even at equal timestamps.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .rings
            .values()
            .flat_map(|ring| ring.iter().cloned())
            .collect();
        events.sort_by_key(|e| e.at);
        events
    }
}

/// Always-on protocol counters, cheap enough to live outside the trace
/// ring: flush reasons, batch occupancy, and the lease read mix. All
/// zero when group commit and read leases are off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// Flushes forced by a full batch.
    pub flush_max: u64,
    /// Flushes forced by the batch-window timer.
    pub flush_window: u64,
    /// Flushes forced by an incoming read.
    pub flush_read: u64,
    /// Flushes forced by a peer's demand.
    pub flush_demand: u64,
    /// Flushes forced by a policy change.
    pub flush_policy: u64,
    /// Total writes that went through a batch flush.
    pub batch_writes: u64,
    /// Largest batch flushed so far.
    pub batch_max_size: u64,
    /// Reads served locally under a valid lease.
    pub lease_served: u64,
    /// Reads forwarded to the home because no lease was held.
    pub lease_forwarded: u64,
    /// Reads refused by a held-but-invalid lease (then forwarded).
    pub lease_refused: u64,
    /// Write-log entries truncated by checkpoint compaction.
    pub log_truncated: u64,
}

impl ProtocolCounters {
    /// Counts one batch flush under its reason.
    pub fn record_flush(&mut self, reason: FlushReason, size: usize) {
        match reason {
            FlushReason::Max => self.flush_max += 1,
            FlushReason::Window => self.flush_window += 1,
            FlushReason::Read => self.flush_read += 1,
            FlushReason::Demand => self.flush_demand += 1,
            FlushReason::Policy => self.flush_policy += 1,
        }
        self.batch_writes += size as u64;
        self.batch_max_size = self.batch_max_size.max(size as u64);
    }

    /// The count recorded under one flush reason.
    pub fn flush_count(&self, reason: FlushReason) -> u64 {
        match reason {
            FlushReason::Max => self.flush_max,
            FlushReason::Window => self.flush_window,
            FlushReason::Read => self.flush_read,
            FlushReason::Demand => self.flush_demand,
            FlushReason::Policy => self.flush_policy,
        }
    }

    /// Total batch flushes across all reasons.
    pub fn flushes(&self) -> u64 {
        FlushReason::ALL.iter().map(|&r| self.flush_count(r)).sum()
    }

    /// Mean writes per flushed batch (0 when nothing flushed).
    pub fn mean_batch_occupancy(&self) -> f64 {
        let flushes = self.flushes();
        if flushes == 0 {
            0.0
        } else {
            self.batch_writes as f64 / flushes as f64
        }
    }

    /// Lease-path reads at non-home replicas, all outcomes.
    pub fn lease_reads(&self) -> u64 {
        self.lease_served + self.lease_forwarded + self.lease_refused
    }

    /// Fraction of lease-path reads served locally (0 when none).
    pub fn lease_hit_ratio(&self) -> f64 {
        let total = self.lease_reads();
        if total == 0 {
            0.0
        } else {
            self.lease_served as f64 / total as f64
        }
    }
}

/// A point-in-time copy of the journal plus the always-on counters.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// The per-node ring capacity the journal ran with.
    pub capacity: usize,
    /// Events lost to ring eviction before the snapshot.
    pub dropped: u64,
    /// The merged journal, time-ordered (per-node order preserved at
    /// equal instants).
    pub events: Vec<TraceEvent>,
    /// The always-on protocol counters at snapshot time.
    pub counters: ProtocolCounters,
}

/// The per-write latency breakdown joined from the journal: the first
/// instant each stage was observed for one write id on one node.
#[derive(Debug, Clone, Copy)]
pub struct WriteBreakdown {
    /// The write.
    pub write: WriteId,
    /// Staged at the sequencer (group commit only).
    pub staged: Option<SimTime>,
    /// Assigned a slot in the total order.
    pub ordered: Option<SimTime>,
    /// Applied to semantics state.
    pub applied: Option<SimTime>,
    /// Fanned out to peers (first fan-out at/after application).
    pub fanout: Option<SimTime>,
    /// Acknowledged toward the client.
    pub acked: Option<SimTime>,
}

impl WriteBreakdown {
    /// Staging → ordering wait (group-commit queueing delay).
    pub fn stage_wait(&self) -> Option<Duration> {
        Some(self.ordered?.saturating_since(self.staged?))
    }

    /// Ordering → application.
    pub fn apply_delay(&self) -> Option<Duration> {
        Some(self.applied?.saturating_since(self.ordered?))
    }

    /// Application → acknowledgement.
    pub fn ack_delay(&self) -> Option<Duration> {
        Some(self.acked?.saturating_since(self.applied?))
    }

    /// Staging → acknowledgement, the full sequencer-side residence.
    pub fn total(&self) -> Option<Duration> {
        Some(self.acked?.saturating_since(self.staged?))
    }
}

/// The fail-over phases as the journal recorded them: first suspicion,
/// first election decision, first takeover announcement, and the first
/// write applied at or after the takeover.
#[derive(Debug, Clone, Copy, Default)]
pub struct FailoverTimeline {
    /// First `SuspicionRaised`.
    pub suspected: Option<SimTime>,
    /// First `ElectionStarted`.
    pub election: Option<SimTime>,
    /// First `TakeoverAnnounced`.
    pub takeover: Option<SimTime>,
    /// First `WriteApplied` at or after the takeover.
    pub first_write_after: Option<SimTime>,
}

impl FailoverTimeline {
    /// Suspicion → takeover announcement.
    pub fn detection_to_takeover(&self) -> Option<Duration> {
        Some(self.takeover?.saturating_since(self.suspected?))
    }

    /// Takeover announcement → first accepted write.
    pub fn takeover_to_first_write(&self) -> Option<Duration> {
        Some(self.first_write_after?.saturating_since(self.takeover?))
    }
}

impl TraceSnapshot {
    /// Whether the journal captured anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Counts events per kind label.
    pub fn kind_histogram(&self) -> BTreeMap<&'static str, u64> {
        let mut hist = BTreeMap::new();
        for event in &self.events {
            *hist.entry(event.event.kind()).or_insert(0) += 1;
        }
        hist
    }

    /// Flush counts per reason, as the journal saw them (the always-on
    /// counters in [`TraceSnapshot::counters`] survive ring eviction;
    /// this view is journal-local).
    pub fn flush_histogram(&self) -> BTreeMap<&'static str, u64> {
        let mut hist = BTreeMap::new();
        for event in &self.events {
            if let ProtocolEvent::BatchFlushed { reason, .. } = event.event {
                *hist.entry(reason.name()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Joins per-write stage instants on the node that ordered each
    /// write (the sequencer), keyed by write id. Writes the journal
    /// only partially covers produce partially filled breakdowns.
    pub fn write_breakdowns(&self) -> Vec<WriteBreakdown> {
        // Join on the ordering node so a replica's own apply of the
        // same write does not pollute the sequencer-side breakdown.
        let mut orderer: BTreeMap<WriteId, NodeId> = BTreeMap::new();
        for event in &self.events {
            if let ProtocolEvent::WriteOrdered { write, .. } = event.event {
                orderer.entry(write).or_insert(event.node);
            }
        }
        let mut map: BTreeMap<WriteId, WriteBreakdown> = BTreeMap::new();
        for event in &self.events {
            let (write, slot): (WriteId, fn(&mut WriteBreakdown) -> &mut Option<SimTime>) =
                match event.event {
                    ProtocolEvent::WriteStaged { write } => (write, |b| &mut b.staged),
                    ProtocolEvent::WriteOrdered { write, .. } => (write, |b| &mut b.ordered),
                    ProtocolEvent::WriteApplied { write } => (write, |b| &mut b.applied),
                    ProtocolEvent::WriteAcked { write } => (write, |b| &mut b.acked),
                    _ => continue,
                };
            if let Some(&home) = orderer.get(&write) {
                if event.node != home {
                    continue;
                }
            }
            let entry = map.entry(write).or_insert(WriteBreakdown {
                write,
                staged: None,
                ordered: None,
                applied: None,
                fanout: None,
                acked: None,
            });
            let field = slot(entry);
            if field.is_none() {
                *field = Some(event.at);
            }
            // The first fan-out at/after this write's application.
            if entry.fanout.is_none() {
                if let Some(applied) = entry.applied {
                    entry.fanout = self
                        .events
                        .iter()
                        .find(|e| {
                            matches!(e.event, ProtocolEvent::FanoutSent { .. })
                                && e.node == event.node
                                && e.at >= applied
                        })
                        .map(|e| e.at);
                }
            }
        }
        map.into_values().collect()
    }

    /// Derives the fail-over timeline (all `None` when the run had no
    /// fail-over).
    pub fn failover_timeline(&self) -> FailoverTimeline {
        let mut timeline = FailoverTimeline::default();
        for event in &self.events {
            match event.event {
                ProtocolEvent::SuspicionRaised { .. } if timeline.suspected.is_none() => {
                    timeline.suspected = Some(event.at);
                }
                ProtocolEvent::ElectionStarted { .. } if timeline.election.is_none() => {
                    timeline.election = Some(event.at);
                }
                ProtocolEvent::TakeoverAnnounced { .. } if timeline.takeover.is_none() => {
                    timeline.takeover = Some(event.at);
                }
                ProtocolEvent::WriteApplied { .. } if timeline.first_write_after.is_none() => {
                    if let Some(takeover) = timeline.takeover {
                        if event.at >= takeover {
                            timeline.first_write_after = Some(event.at);
                        }
                    }
                }
                _ => {}
            }
        }
        timeline
    }

    /// Serializes the snapshot to JSON (events, counters, derived
    /// views) — the CI artifact format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.events.len() * 96);
        out.push_str("{\n  \"capacity\": ");
        out.push_str(&self.capacity.to_string());
        out.push_str(",\n  \"dropped\": ");
        out.push_str(&self.dropped.to_string());
        out.push_str(",\n  \"counters\": ");
        out.push_str(&self.counters_json());
        out.push_str(",\n  \"kind_histogram\": {");
        let hist = self.kind_histogram();
        for (i, (kind, count)) in hist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{kind}\": {count}"));
        }
        out.push_str("},\n  \"events\": [\n");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    ");
            out.push_str(&event_json(event));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    fn counters_json(&self) -> String {
        let c = &self.counters;
        format!(
            "{{\"flush_max\": {}, \"flush_window\": {}, \"flush_read\": {}, \
             \"flush_demand\": {}, \"flush_policy\": {}, \"batch_writes\": {}, \
             \"batch_max_size\": {}, \"lease_served\": {}, \"lease_forwarded\": {}, \
             \"lease_refused\": {}, \"lease_hit_ratio\": {:.4}, \"log_truncated\": {}}}",
            c.flush_max,
            c.flush_window,
            c.flush_read,
            c.flush_demand,
            c.flush_policy,
            c.batch_writes,
            c.batch_max_size,
            c.lease_served,
            c.lease_forwarded,
            c.lease_refused,
            c.lease_hit_ratio(),
            c.log_truncated,
        )
    }
}

fn event_json(event: &TraceEvent) -> String {
    let mut detail = String::new();
    match &event.event {
        ProtocolEvent::WriteStaged { write }
        | ProtocolEvent::WriteApplied { write }
        | ProtocolEvent::WriteAcked { write } => {
            detail = format!("\"client\": {}, \"seq\": {}", write.client.raw(), write.seq);
        }
        ProtocolEvent::BatchFlushed { reason, size } => {
            detail = format!("\"reason\": \"{}\", \"size\": {}", reason.name(), size);
        }
        ProtocolEvent::WriteOrdered { write, seq, epoch } => {
            detail = format!(
                "\"client\": {}, \"client_seq\": {}, \"order\": {}, \"epoch\": {}",
                write.client.raw(),
                write.seq,
                seq,
                epoch
            );
        }
        ProtocolEvent::FanoutSent { peers } => {
            detail = format!("\"peers\": {peers}");
        }
        ProtocolEvent::ReadServed { source } => {
            detail = format!("\"source\": \"{}\"", source.name());
        }
        ProtocolEvent::LeaseGranted { epoch }
        | ProtocolEvent::LeaseRenewed { epoch }
        | ProtocolEvent::LeaseRevoked { epoch }
        | ProtocolEvent::LeaseExpired { epoch }
        | ProtocolEvent::ElectionStarted { epoch }
        | ProtocolEvent::TakeoverAnnounced { epoch } => {
            detail = format!("\"epoch\": {epoch}");
        }
        ProtocolEvent::SuspicionRaised { peer } => {
            detail = format!("\"peer\": {}", peer.raw());
        }
        ProtocolEvent::StateTransferSent { to, entries } => {
            detail = format!("\"to\": {}, \"entries\": {}", to.raw(), entries);
        }
        ProtocolEvent::StateTransferInstalled => {}
        ProtocolEvent::CheckpointTaken { log_len } => {
            detail = format!("\"log_len\": {log_len}");
        }
        ProtocolEvent::CheckpointAcked { from, outstanding } => {
            detail = format!("\"from\": {}, \"outstanding\": {}", from.raw(), outstanding);
        }
        ProtocolEvent::LogCompacted { truncated } => {
            detail = format!("\"truncated\": {truncated}");
        }
        ProtocolEvent::DeltaTransferSent {
            to,
            entries,
            chunks,
        } => {
            detail = format!(
                "\"to\": {}, \"entries\": {}, \"chunks\": {}",
                to.raw(),
                entries,
                chunks
            );
        }
        ProtocolEvent::DeltaTransferInstalled { entries } => {
            detail = format!("\"entries\": {entries}");
        }
        ProtocolEvent::CheckpointInstalled { version } => {
            let clocks: Vec<String> = version
                .iter()
                .map(|(client, seq)| format!("\"{}\": {}", client.raw(), seq))
                .collect();
            detail = format!("\"version\": {{{}}}", clocks.join(", "));
        }
    }
    let sep = if detail.is_empty() { "" } else { ", " };
    format!(
        "{{\"at_ns\": {}, \"node\": {}, \"object\": {}, \"store\": {}, \"kind\": \"{}\"{sep}{detail}}}",
        event.at.as_nanos(),
        event.node.raw(),
        event.object.raw(),
        event.store.raw(),
        event.event.kind(),
    )
}

/// One invariant the journal contradicts.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The node whose journal broke the rule.
    pub node: NodeId,
    /// The rule that failed.
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[node {}] {}: {}",
            self.node.raw(),
            self.rule,
            self.detail
        )
    }
}

/// Asserts protocol invariants directly from a captured journal:
///
/// 1. **No ack before apply** — per (node, write), the first
///    acknowledgement never precedes the first application; an
///    acknowledgement with no application in a loss-free journal
///    (`dropped == 0`) is a violation.
/// 2. **Contiguous sequencing** — per (node, epoch), the observed
///    total-order slots are consecutive. Ring eviction only drops a
///    prefix, so a surviving suffix must still be gap-free.
/// 3. **No lease-served read after invalidation** — per node, a
///    `ReadServed{Lease}` whose most recent preceding lease event is a
///    revocation or expiry is a violation.
/// 4. **No apply below an installed checkpoint** — per (node, store),
///    once a recovering replica restored a checkpoint at some version
///    vector, a later `WriteApplied` already covered by that vector
///    means recovery replayed history it had promised was settled.
pub struct TraceChecker;

impl TraceChecker {
    /// Runs every invariant over the snapshot; an empty result means
    /// the journal is consistent (a disabled trace passes trivially).
    pub fn check(snapshot: &TraceSnapshot) -> Vec<Violation> {
        let mut violations = Vec::new();
        Self::check_ack_after_apply(snapshot, &mut violations);
        Self::check_contiguous_orders(snapshot, &mut violations);
        Self::check_lease_reads(snapshot, &mut violations);
        Self::check_apply_above_checkpoint(snapshot, &mut violations);
        violations
    }

    fn check_ack_after_apply(snapshot: &TraceSnapshot, out: &mut Vec<Violation>) {
        let mut applied: BTreeMap<(NodeId, WriteId), SimTime> = BTreeMap::new();
        let mut acked: BTreeMap<(NodeId, WriteId), SimTime> = BTreeMap::new();
        for event in &snapshot.events {
            match event.event {
                ProtocolEvent::WriteApplied { write } => {
                    applied.entry((event.node, write)).or_insert(event.at);
                }
                ProtocolEvent::WriteAcked { write } => {
                    acked.entry((event.node, write)).or_insert(event.at);
                }
                _ => {}
            }
        }
        for (&(node, write), &ack_at) in &acked {
            match applied.get(&(node, write)) {
                Some(&apply_at) if ack_at < apply_at => out.push(Violation {
                    node,
                    rule: "ack_before_apply",
                    detail: format!(
                        "write {}#{} acked at {} but applied at {}",
                        write.client.raw(),
                        write.seq,
                        ack_at,
                        apply_at
                    ),
                }),
                None if snapshot.dropped == 0 => out.push(Violation {
                    node,
                    rule: "ack_without_apply",
                    detail: format!(
                        "write {}#{} acked at {} with no application in a loss-free journal",
                        write.client.raw(),
                        write.seq,
                        ack_at
                    ),
                }),
                _ => {}
            }
        }
    }

    fn check_contiguous_orders(snapshot: &TraceSnapshot, out: &mut Vec<Violation>) {
        let mut last: BTreeMap<(NodeId, u64), u64> = BTreeMap::new();
        for event in &snapshot.events {
            if let ProtocolEvent::WriteOrdered { seq, epoch, .. } = event.event {
                if let Some(&prev) = last.get(&(event.node, epoch)) {
                    if seq != prev + 1 {
                        out.push(Violation {
                            node: event.node,
                            rule: "order_gap",
                            detail: format!(
                                "epoch {epoch}: order {seq} follows {prev} (expected {})",
                                prev + 1
                            ),
                        });
                    }
                }
                last.insert((event.node, epoch), seq);
            }
        }
    }

    fn check_lease_reads(snapshot: &TraceSnapshot, out: &mut Vec<Violation>) {
        #[derive(Clone, Copy, PartialEq)]
        enum LeaseState {
            Unknown,
            Valid,
            Invalid,
        }
        let mut state: BTreeMap<NodeId, LeaseState> = BTreeMap::new();
        for event in &snapshot.events {
            let slot = state.entry(event.node).or_insert(LeaseState::Unknown);
            match event.event {
                ProtocolEvent::LeaseGranted { .. } | ProtocolEvent::LeaseRenewed { .. } => {
                    *slot = LeaseState::Valid;
                }
                ProtocolEvent::LeaseRevoked { .. } | ProtocolEvent::LeaseExpired { .. } => {
                    *slot = LeaseState::Invalid;
                }
                ProtocolEvent::ReadServed {
                    source: ReadSource::Lease,
                } if *slot == LeaseState::Invalid => {
                    out.push(Violation {
                        node: event.node,
                        rule: "lease_read_after_invalidation",
                        detail: format!("lease-served read at {} after revoke/expiry", event.at),
                    });
                }
                _ => {}
            }
        }
    }

    fn check_apply_above_checkpoint(snapshot: &TraceSnapshot, out: &mut Vec<Violation>) {
        let mut floor: BTreeMap<(NodeId, StoreId), VersionVector> = BTreeMap::new();
        for event in &snapshot.events {
            match &event.event {
                ProtocolEvent::CheckpointInstalled { version } => {
                    floor.insert((event.node, event.store), version.clone());
                }
                ProtocolEvent::WriteApplied { write } => {
                    if let Some(version) = floor.get(&(event.node, event.store)) {
                        if version.covers(*write) {
                            out.push(Violation {
                                node: event.node,
                                rule: "apply_below_checkpoint",
                                detail: format!(
                                    "write {}#{} applied at {} below the checkpoint \
                                     installed from local storage",
                                    write.client.raw(),
                                    write.seq,
                                    event.at
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use globe_coherence::ClientId;

    use super::*;

    fn ev(at_ms: u64, node: u32, event: ProtocolEvent) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(at_ms),
            node: NodeId::new(node),
            object: ObjectId::new(1),
            store: StoreId::new(node),
            event,
        }
    }

    fn wid(seq: u64) -> WriteId {
        WriteId::new(ClientId::new(0), seq)
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = TraceLog::default();
        log.set_capacity(2);
        for i in 0..5 {
            log.record(ev(i, 0, ProtocolEvent::WriteApplied { write: wid(i + 1) }));
        }
        assert_eq!(log.dropped(), 3);
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].event,
            ProtocolEvent::WriteApplied { write: wid(4) }
        );
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut log = TraceLog::default();
        log.record(ev(0, 0, ProtocolEvent::StateTransferInstalled));
        assert!(log.snapshot().is_empty());
        assert!(!log.enabled());
    }

    #[test]
    fn checker_flags_ack_before_apply() {
        let snap = TraceSnapshot {
            capacity: 8,
            dropped: 0,
            events: vec![
                ev(1, 0, ProtocolEvent::WriteAcked { write: wid(1) }),
                ev(2, 0, ProtocolEvent::WriteApplied { write: wid(1) }),
            ],
            counters: ProtocolCounters::default(),
        };
        let violations = TraceChecker::check(&snap);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "ack_before_apply");
    }

    #[test]
    fn checker_accepts_apply_then_ack_same_instant() {
        let snap = TraceSnapshot {
            capacity: 8,
            dropped: 0,
            events: vec![
                ev(1, 0, ProtocolEvent::WriteApplied { write: wid(1) }),
                ev(1, 0, ProtocolEvent::WriteAcked { write: wid(1) }),
            ],
            counters: ProtocolCounters::default(),
        };
        assert!(TraceChecker::check(&snap).is_empty());
    }

    #[test]
    fn checker_flags_order_gap_within_epoch_only() {
        let ordered = |at, seq, epoch| {
            ev(
                at,
                0,
                ProtocolEvent::WriteOrdered {
                    write: wid(seq + 1),
                    seq,
                    epoch,
                },
            )
        };
        let clean = TraceSnapshot {
            capacity: 8,
            dropped: 0,
            events: vec![ordered(1, 0, 0), ordered(2, 1, 0), ordered(3, 5, 1)],
            counters: ProtocolCounters::default(),
        };
        assert!(TraceChecker::check(&clean).is_empty());
        let gapped = TraceSnapshot {
            capacity: 8,
            dropped: 0,
            events: vec![ordered(1, 0, 0), ordered(2, 2, 0)],
            counters: ProtocolCounters::default(),
        };
        assert_eq!(TraceChecker::check(&gapped)[0].rule, "order_gap");
    }

    #[test]
    fn checker_flags_lease_read_after_revoke() {
        let snap = TraceSnapshot {
            capacity: 8,
            dropped: 0,
            events: vec![
                ev(1, 2, ProtocolEvent::LeaseGranted { epoch: 0 }),
                ev(
                    2,
                    2,
                    ProtocolEvent::ReadServed {
                        source: ReadSource::Lease,
                    },
                ),
                ev(3, 2, ProtocolEvent::LeaseRevoked { epoch: 0 }),
                ev(
                    4,
                    2,
                    ProtocolEvent::ReadServed {
                        source: ReadSource::Lease,
                    },
                ),
            ],
            counters: ProtocolCounters::default(),
        };
        let violations = TraceChecker::check(&snap);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "lease_read_after_invalidation");
    }

    #[test]
    fn checker_flags_apply_below_installed_checkpoint() {
        let ckpt: VersionVector = [(ClientId::new(0), 3u64)].into_iter().collect();
        let snap = TraceSnapshot {
            capacity: 8,
            dropped: 0,
            events: vec![
                ev(1, 1, ProtocolEvent::CheckpointInstalled { version: ckpt }),
                ev(2, 1, ProtocolEvent::WriteApplied { write: wid(2) }),
                ev(3, 1, ProtocolEvent::WriteApplied { write: wid(4) }),
            ],
            counters: ProtocolCounters::default(),
        };
        let violations = TraceChecker::check(&snap);
        assert_eq!(violations.len(), 1, "only the covered write violates");
        assert_eq!(violations[0].rule, "apply_below_checkpoint");

        // The same applies on a node without an installed checkpoint
        // are fine.
        let clean = TraceSnapshot {
            capacity: 8,
            dropped: 0,
            events: vec![
                ev(2, 2, ProtocolEvent::WriteApplied { write: wid(2) }),
                ev(3, 2, ProtocolEvent::WriteApplied { write: wid(4) }),
            ],
            counters: ProtocolCounters::default(),
        };
        assert!(TraceChecker::check(&clean).is_empty());
    }

    #[test]
    fn breakdown_joins_stages_and_counters_derive_ratios() {
        let snap = TraceSnapshot {
            capacity: 8,
            dropped: 0,
            events: vec![
                ev(1, 0, ProtocolEvent::WriteStaged { write: wid(1) }),
                ev(
                    3,
                    0,
                    ProtocolEvent::WriteOrdered {
                        write: wid(1),
                        seq: 0,
                        epoch: 0,
                    },
                ),
                ev(3, 0, ProtocolEvent::WriteApplied { write: wid(1) }),
                ev(4, 0, ProtocolEvent::WriteAcked { write: wid(1) }),
            ],
            counters: ProtocolCounters::default(),
        };
        let breakdowns = snap.write_breakdowns();
        assert_eq!(breakdowns.len(), 1);
        assert_eq!(breakdowns[0].stage_wait(), Some(Duration::from_millis(2)));
        assert_eq!(breakdowns[0].total(), Some(Duration::from_millis(3)));

        let mut counters = ProtocolCounters::default();
        counters.record_flush(FlushReason::Max, 8);
        counters.record_flush(FlushReason::Window, 2);
        assert_eq!(counters.flushes(), 2);
        assert_eq!(counters.batch_max_size, 8);
        assert!((counters.mean_batch_occupancy() - 5.0).abs() < f64::EPSILON);
        counters.lease_served = 3;
        counters.lease_forwarded = 1;
        assert!((counters.lease_hit_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_includes_counters_and_events() {
        let snap = TraceSnapshot {
            capacity: 4,
            dropped: 1,
            events: vec![ev(
                2,
                1,
                ProtocolEvent::BatchFlushed {
                    reason: FlushReason::Read,
                    size: 3,
                },
            )],
            counters: ProtocolCounters::default(),
        };
        let json = snap.to_json();
        assert!(json.contains("\"batch_flushed\""));
        assert!(json.contains("\"reason\": \"read\""));
        assert!(json.contains("\"dropped\": 1"));
    }
}
