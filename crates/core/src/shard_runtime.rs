//! The in-process sharded Globe runtime.
//!
//! [`GlobeShard`] is the third backend behind [`GlobeRuntime`], built for
//! throughput on one machine: objects hash-partition across N shard
//! workers — real threads fed by channels — and each shard owns every
//! replica (control object, store, sessions) of the objects in its slice
//! of the object space. Within a shard the full replication/semantics
//! machinery of the simulator runs unchanged; across shards, independent
//! objects make progress in parallel, so a multi-object workload scales
//! with the shard count instead of being serialized through one event
//! loop.
//!
//! Routing is by *object*, not by node: a message addressed to node X
//! about object O is delivered to the worker owning O, which handles it
//! inside its own copy of X's address space. That keeps each object's
//! protocol single-threaded (no per-object races to reason about) while
//! letting the set of objects exploit every core. Timers come from the
//! shared wall-clock [`globe_net::timer::WallTimer`] service, exactly as
//! in the TCP runtime.
//!
//! Unlike [`crate::GlobeTcp`], no node is caller-driven: every event is
//! handled by a shard worker, and the caller's thread only issues calls
//! and polls results. [`GlobeShard::set_policy`] therefore works on a
//! live deployment — the home store's state sits behind the shard lock,
//! not captive on a remote event-loop thread.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use globe_coherence::{ClientId, StoreClass, StoreId};
use globe_naming::{ContactRecord, LocationService, NameSpace, ObjectId};
use globe_net::timer::WallTimer;
use globe_net::{Event, NetCtx, NodeId, RegionId, SimTime, TimerId, TimerToken};
use globe_wire::WireDecode;
use parking_lot::Mutex;

use crate::lifecycle::MembershipView;
use crate::plan::{self, ObjectRecord};
use crate::{
    shared_history, AddressSpace, BindOptions, CallError, ClientHandle, CoherenceMsg, CommObject,
    GlobeRuntime, InvocationMessage, ObjectSpec, ReplicationPolicy, RequestId, RuntimeConfig,
    RuntimeError, Semantics, SharedHistory, SharedMetrics,
};

/// Default number of shard workers when none is requested.
pub const DEFAULT_SHARDS: usize = 4;

/// How long the caller sleeps between result polls, so a tight poll loop
/// cannot starve the shard workers of their space locks.
const POLL_BACKOFF: Duration = Duration::from_micros(200);

/// An event en route to a shard worker: which node's address space must
/// handle it, and the event itself.
type ShardEvent = (NodeId, Event);

/// The per-object state a shard worker owns: one [`AddressSpace`] per
/// node, holding only the control objects of this shard's objects.
type ShardSpaces = Arc<Mutex<HashMap<NodeId, AddressSpace>>>;

/// Shared routing fabric: one inbox per shard plus the timer service.
struct ShardRouter {
    inboxes: Vec<Sender<ShardEvent>>,
    timer: Arc<WallTimer>,
    epoch: Instant,
    metrics: SharedMetrics,
}

impl ShardRouter {
    fn shard_of(&self, object: ObjectId) -> usize {
        // Node-scoped detector frames carry their sending lane's scope
        // in the envelope id, so replies route back to the copy of the
        // space whose detector sent the ping.
        if object.raw() >= crate::space::NODE_SCOPE_BASE {
            return ((object.raw() - crate::space::NODE_SCOPE_BASE) % self.inboxes.len() as u64)
                as usize;
        }
        (object.raw() % self.inboxes.len() as u64) as usize
    }

    fn deliver(&self, object: ObjectId, node: NodeId, event: Event) {
        // A send can only fail after shutdown, when the receivers are
        // gone; dropping the event then is correct.
        let _ = self.inboxes[self.shard_of(object)].send((node, event));
    }
}

/// [`NetCtx`] for protocol code running on behalf of one node inside a
/// shard (or on the caller's thread while issuing a call).
struct ShardCtx<'a> {
    node: NodeId,
    router: &'a Arc<ShardRouter>,
}

impl NetCtx for ShardCtx<'_> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.router.epoch.elapsed().as_nanos() as u64)
    }

    fn send(&mut self, to: NodeId, payload: Bytes) {
        // The wire envelope leads with the object id; peeking it is
        // enough to pick the owning shard without decoding the message.
        let mut cursor: &[u8] = &payload;
        let Ok(object) = ObjectId::decode(&mut cursor) else {
            // Corrupt frame: drop, like a bad datagram, but observably.
            self.router.metrics.lock().record_malformed_frame();
            return;
        };
        self.router.deliver(
            object,
            to,
            Event::Message {
                from: self.node,
                payload,
            },
        );
    }

    fn set_timer(&mut self, delay: Duration, token: TimerToken) -> TimerId {
        let (object, _) = crate::space::decode_timer(token);
        let node = self.node;
        let router = Arc::clone(self.router);
        self.router.timer.arm(delay, move || {
            router.deliver(object, node, Event::Timer { token })
        })
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.router.timer.cancel(id);
    }
}

fn shard_loop(
    inbox: Receiver<ShardEvent>,
    spaces: ShardSpaces,
    router: Arc<ShardRouter>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match inbox.recv_timeout(Duration::from_millis(20)) {
            Ok((node, event)) => {
                let mut spaces = spaces.lock();
                if let Some(space) = spaces.get_mut(&node) {
                    let mut ctx = ShardCtx {
                        node,
                        router: &router,
                    };
                    space.handle_event(event, &mut ctx);
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The Globe middleware sharded across in-process worker threads.
///
/// Build phase is identical to the other runtimes: add nodes, create
/// objects, bind clients. [`GlobeShard::start`] spawns the shard
/// workers (issuing a call starts them implicitly, so the polling
/// contract of [`GlobeRuntime::result`] holds regardless); the caller's
/// thread drives client calls and the workers do everything else.
///
/// # Examples
///
/// ```
/// use globe_core::{registers, BindOptions, GlobeRuntime, GlobeShard, ObjectSpec,
///                  RegisterDoc, ReplicationPolicy};
/// use globe_coherence::StoreClass;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut shard = GlobeShard::new(2);
/// let server = shard.add_node()?;
/// let browser = shard.add_node()?;
/// let object = ObjectSpec::new("/home/alice")
///     .policy(ReplicationPolicy::personal_home_page())
///     .semantics(RegisterDoc::new)
///     .store(server, StoreClass::Permanent)
///     .create(&mut shard)?;
/// let alice = shard.bind(object, browser, BindOptions::new())?;
/// shard.start(&[]);
/// shard.handle(alice).write(registers::put("index.html", b"<h1>hi</h1>"))?;
/// let page = shard.handle(alice).read(registers::get("index.html"))?;
/// assert_eq!(&page[..], b"<h1>hi</h1>");
/// shard.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct GlobeShard {
    router: Arc<ShardRouter>,
    shards: Vec<ShardSpaces>,
    receivers: Vec<Option<Receiver<ShardEvent>>>,
    threads: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    nodes: HashSet<NodeId>,
    /// Nodes currently isolated by [`GlobeShard::partition_node`]: a
    /// lane that materializes its first copy of such a node's space
    /// *after* the partition must still create it isolated.
    partitioned: HashSet<NodeId>,
    names: NameSpace,
    locations: LocationService,
    objects: HashMap<ObjectId, ObjectRecord>,
    history: SharedHistory,
    metrics: SharedMetrics,
    next_node: u32,
    next_client: u32,
    next_store: u32,
    started: bool,
    seed: u64,
    call_timeout: Duration,
    detector: crate::lifecycle::DetectorConfig,
    tuning: crate::StoreTuning,
    storage: crate::storage::StorageSpec,
}

impl GlobeShard {
    /// Creates a runtime with `shards` worker lanes (at least one) and
    /// the default configuration.
    pub fn new(shards: usize) -> Self {
        GlobeShard::with_shards(shards, RuntimeConfig::new())
    }

    /// Creates a runtime with [`DEFAULT_SHARDS`] worker lanes — the
    /// construction path symmetric with [`crate::GlobeSim::with_config`]
    /// and [`crate::GlobeTcp::with_config`].
    pub fn with_config(config: RuntimeConfig) -> Self {
        GlobeShard::with_shards(DEFAULT_SHARDS, config)
    }

    /// Creates a runtime with an explicit shard count and configuration.
    pub fn with_shards(shards: usize, config: RuntimeConfig) -> Self {
        let shards = shards.max(1);
        let mut inboxes = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        let mut spaces = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(Some(rx));
            spaces.push(Arc::new(Mutex::new(HashMap::new())));
        }
        let metrics = config.build_metrics();
        // A refused timer thread degrades the runtime (timers inert)
        // instead of panicking; the failure is counted like any other
        // transport fault.
        let timer = WallTimer::spawn();
        if timer.is_stopped() {
            metrics.lock().record_spawn_failure();
        }
        GlobeShard {
            router: Arc::new(ShardRouter {
                inboxes,
                timer,
                epoch: Instant::now(),
                metrics: metrics.clone(),
            }),
            shards: spaces,
            receivers,
            threads: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
            nodes: HashSet::new(),
            partitioned: HashSet::new(),
            names: NameSpace::new(),
            locations: LocationService::new(),
            objects: HashMap::new(),
            history: shared_history(),
            metrics,
            next_node: 0,
            next_client: 0,
            next_store: 0,
            started: false,
            seed: config.seed,
            // Wall-clock time, as in the TCP runtime; loopback channels
            // are fast, so the default deadline is tight.
            call_timeout: config.call_timeout.unwrap_or(Duration::from_secs(10)),
            detector: config.detector(),
            tuning: config.tuning(),
            storage: config.storage(),
        }
    }

    /// The number of shard worker lanes.
    pub fn num_shards(&self) -> usize {
        self.router.inboxes.len()
    }

    /// The determinism seed this runtime was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Maximum wall-clock time a synchronous trait-level call may take.
    pub fn set_call_timeout(&mut self, timeout: Duration) {
        self.call_timeout = timeout;
    }

    /// Adds an address space. Its per-object state materializes lazily
    /// in whichever shards come to own objects it participates in.
    ///
    /// # Errors
    ///
    /// Infallible today; the `Result` mirrors the trait contract.
    pub fn add_node(&mut self) -> Result<NodeId, RuntimeError> {
        let node = NodeId::new(self.next_node);
        self.next_node += 1;
        self.nodes.insert(node);
        Ok(node)
    }

    fn shard_of(&self, object: ObjectId) -> usize {
        self.router.shard_of(object)
    }

    /// Shared creation routine behind [`ObjectSpec`]; every replica of
    /// the object lands in the shard owning the object's hash slice.
    fn create_object_impl(
        &mut self,
        name: &str,
        policy: ReplicationPolicy,
        semantics_factory: &mut dyn FnMut() -> Box<dyn Semantics>,
        placement: &[(NodeId, StoreClass)],
    ) -> Result<ObjectId, RuntimeError> {
        let creation = plan::plan_creation(
            name,
            &policy,
            placement,
            &mut self.names,
            |node| self.nodes.contains(&node),
            &mut self.next_store,
        )?;
        let object = creation.object;
        creation.register_locations(&mut self.locations, |_| RegionId::new(0));
        let lane = self.router.shard_of(object);
        let shard = Arc::clone(&self.shards[lane]);
        let router = &self.router;
        let metrics = self.metrics.clone();
        let detector = self.detector;
        let partitioned = &self.partitioned;
        creation.build_replicas(
            &policy,
            semantics_factory,
            &self.history,
            &self.metrics,
            self.detector,
            self.tuning,
            &self.storage,
            |node, replica| {
                let mut spaces = shard.lock();
                let space = spaces.entry(node).or_insert_with(|| {
                    let mut space =
                        AddressSpace::with_scope(node, metrics.clone(), detector, lane as u64);
                    space.set_partitioned(partitioned.contains(&node));
                    space
                });
                plan::install_store(space, object, replica);
                let mut ctx = ShardCtx { node, router };
                space.start_object(object, &mut ctx);
            },
        );
        self.objects.insert(object, creation.into_record(policy));
        Ok(object)
    }

    /// The live `(is_home, epoch)` claim of the replica at `node` in the
    /// object's lane.
    fn replica_claim(&self, object: ObjectId, node: NodeId) -> Option<(bool, u64)> {
        let spaces = self.shards[self.router.shard_of(object)].lock();
        let store = spaces.get(&node)?.control(object)?.store()?;
        Some((store.is_home(), store.home_epoch()))
    }

    /// Refreshes the driver record from the replicas' own view of the
    /// sequencer, so operations planned after an unattended fail-over
    /// target the elected home.
    fn sync_home(&mut self, object: ObjectId) {
        let Some(record) = self.objects.get(&object) else {
            return;
        };
        let home = plan::effective_home(record, |n| self.replica_claim(object, n));
        if let Some(record) = self.objects.get_mut(&object) {
            record.adopt_home(home);
        }
    }

    /// Binds a client in `node`'s address space, mirroring
    /// [`crate::GlobeSim::bind`]. The session lives in the shard owning
    /// the object, inside that shard's copy of the client node's space.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object/node/replica is unknown.
    pub fn bind(
        &mut self,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<ClientHandle, RuntimeError> {
        if !self.nodes.contains(&node) {
            return Err(RuntimeError::UnknownNode(node));
        }
        self.sync_home(object);
        let record = self
            .objects
            .get(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let session = plan::plan_session(object, record, opts, &self.locations, RegionId::new(0))?;
        let client = ClientId::new(self.next_client);
        self.next_client += 1;
        let session =
            session.into_session(client, object, self.history.clone(), self.metrics.clone());
        let lane = self.shard_of(object);
        let mut spaces = self.shards[lane].lock();
        let space = spaces.entry(node).or_insert_with(|| {
            let mut space =
                AddressSpace::with_scope(node, self.metrics.clone(), self.detector, lane as u64);
            space.set_partitioned(self.partitioned.contains(&node));
            space
        });
        plan::install_session(space, object, session);
        Ok(ClientHandle {
            object,
            node,
            client,
        })
    }

    /// Spawns the shard workers. `client_nodes` is accepted for
    /// signature parity with the other runtimes but ignored: no node is
    /// caller-driven here — every event is handled by a shard worker.
    pub fn start(&mut self, _client_nodes: &[NodeId]) {
        if self.started {
            return;
        }
        self.started = true;
        for (index, slot) in self.receivers.iter_mut().enumerate() {
            let Some(inbox) = slot.take() else { continue };
            let spaces = Arc::clone(&self.shards[index]);
            let router = Arc::clone(&self.router);
            let stop = Arc::clone(&self.stop);
            match std::thread::Builder::new()
                .name(format!("globe-shard-{index}"))
                .spawn(move || shard_loop(inbox, spaces, router, stop))
            {
                Ok(handle) => self.threads.push(handle),
                Err(_) => {
                    // Degrade observably: the lane stays dark, the
                    // failure is counted, and the process survives.
                    self.metrics.lock().record_spawn_failure();
                }
            }
        }
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.start(&[]);
        }
    }

    /// Issues one client call from the caller's thread, returning its
    /// request id without waiting for the reply.
    fn issue_call(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
        is_read: bool,
    ) -> Result<RequestId, CallError> {
        // The polling contract promises progress; the workers are the
        // only source of progress here, so make sure they run.
        self.ensure_started();
        let shard = Arc::clone(&self.shards[self.shard_of(handle.object)]);
        let mut spaces = shard.lock();
        let control = spaces
            .get_mut(&handle.node)
            .and_then(|space| space.control_mut(handle.object))
            .ok_or(CallError::NotBound)?;
        let mut ctx = ShardCtx {
            node: handle.node,
            router: &self.router,
        };
        if is_read {
            control.client_read(handle.client, inv, &mut ctx)
        } else {
            control.client_write(handle.client, inv, &mut ctx)
        }
    }

    fn pump_client(
        &mut self,
        handle: &ClientHandle,
        req: RequestId,
        timeout: Duration,
    ) -> Result<Bytes, CallError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(result) = self.take_result(handle, req) {
                return result;
            }
            if Instant::now() > deadline {
                return Err(CallError::TimedOut);
            }
            std::thread::sleep(POLL_BACKOFF);
        }
    }

    fn take_result(
        &mut self,
        handle: &ClientHandle,
        req: RequestId,
    ) -> Option<Result<Bytes, CallError>> {
        let mut spaces = self.shards[self.shard_of(handle.object)].lock();
        spaces
            .get_mut(&handle.node)?
            .control_mut(handle.object)?
            .take_result(handle.client, req)
    }

    /// Changes an object's replication policy at run time; the home
    /// store broadcasts the new policy to every replica. Works on a live
    /// deployment: the home store's state is behind the shard lock, so
    /// no event-loop thread needs to be interrupted.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for unknown objects or invalid
    /// policies.
    pub fn set_policy(
        &mut self,
        object: ObjectId,
        policy: ReplicationPolicy,
    ) -> Result<(), RuntimeError> {
        policy
            .validate()
            .map_err(|e| RuntimeError::BadPolicy(e.to_string()))?;
        self.sync_home(object);
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        record.policy = policy.clone();
        let home = record.home_node;
        let mut spaces = self.shards[self.router.shard_of(object)].lock();
        if let Some(store) = spaces
            .get_mut(&home)
            .and_then(|space| space.control_mut(object))
            .and_then(|control| control.store_mut())
        {
            let mut ctx = ShardCtx {
                node: home,
                router: &self.router,
            };
            store.set_policy(policy, &mut ctx);
        }
        Ok(())
    }

    /// Installs an additional store at run time — live deployments
    /// included, since every replica sits behind its shard's lock. The
    /// new replica joins via the home store's state-transfer protocol.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or node is unknown, or
    /// the node already hosts a replica.
    pub fn add_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        class: StoreClass,
        semantics: Box<dyn Semantics>,
    ) -> Result<StoreId, RuntimeError> {
        if !self.nodes.contains(&node) {
            return Err(RuntimeError::UnknownNode(node));
        }
        self.sync_home(object);
        let (store_id, replica) = plan::plan_add_store(
            self.objects
                .get_mut(&object)
                .ok_or(RuntimeError::UnknownObject(object))?,
            node,
            class,
            &mut self.next_store,
            plan::ReplicaParts {
                object,
                semantics,
                history: &self.history,
                metrics: &self.metrics,
                detector: self.detector,
                tuning: self.tuning,
                storage: self.storage.clone(),
            },
        )?;
        self.locations.register(
            object,
            ContactRecord {
                node,
                class,
                region: RegionId::new(0),
            },
        );
        let lane = self.shard_of(object);
        let mut spaces = self.shards[lane].lock();
        let space = spaces.entry(node).or_insert_with(|| {
            let mut space =
                AddressSpace::with_scope(node, self.metrics.clone(), self.detector, lane as u64);
            space.set_partitioned(self.partitioned.contains(&node));
            space
        });
        plan::install_store(space, object, replica);
        let mut ctx = ShardCtx {
            node,
            router: &self.router,
        };
        space.start_object(object, &mut ctx);
        if let Some(store) = space.control_mut(object).and_then(|c| c.store_mut()) {
            store.join(&mut ctx);
        }
        Ok(store_id)
    }

    /// Points every bound session of `object` away from a failed home.
    fn reroute_sessions(
        &mut self,
        object: ObjectId,
        old_home: NodeId,
        new_home: NodeId,
        new_store: StoreId,
        reroute_reads: bool,
    ) {
        let mut spaces = self.shards[self.shard_of(object)].lock();
        for space in spaces.values_mut() {
            if let Some(control) = space.control_mut(object) {
                control.reroute_sessions(old_home, new_home, new_store, reroute_reads);
            }
        }
    }

    /// Removes the replica at `node` gracefully, telling the home store
    /// to stop propagating and heartbeating to it. Removing the *home*
    /// store elects a surviving permanent store as the new sequencer and
    /// hands it the retiring home's write log.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or replica is unknown,
    /// or the replica is the home store and no surviving permanent store
    /// can take over.
    pub fn remove_store(&mut self, object: ObjectId, node: NodeId) -> Result<(), RuntimeError> {
        self.sync_home(object);
        let view = self.membership(object).ok();
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let home = record.home_node;
        let (_, failover) = plan::plan_remove_store(record, node, view.as_ref())?;
        self.locations.unregister(object, node);
        let store = {
            let mut spaces = self.shards[self.shard_of(object)].lock();
            spaces
                .get_mut(&node)
                .and_then(|space| space.control_mut(object))
                .and_then(|control| control.take_store())
        };
        let comm = CommObject::new(object, self.metrics.clone());
        let mut ctx = ShardCtx {
            node,
            router: &self.router,
        };
        match failover {
            None => comm.send(&mut ctx, home, &CoherenceMsg::Leave { node }),
            Some(f) => {
                let msg = f.handoff_msg(store.as_ref());
                comm.send(&mut ctx, f.new_home, &msg);
                self.reroute_sessions(object, f.old_home, f.new_home, f.new_home_store, true);
            }
        }
        Ok(())
    }

    /// Crash-and-recovers the replica at `node` through the lifecycle
    /// state-transfer protocol. Restarting the *home* store triggers a
    /// fail-over: the elected permanent store promotes itself from its
    /// own write log and the old home rejoins as an ordinary replica.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or replica is unknown,
    /// or the replica is the home store and no surviving permanent store
    /// can take over.
    pub fn restart_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        fresh_semantics: Box<dyn Semantics>,
    ) -> Result<(), RuntimeError> {
        self.sync_home(object);
        let view = self.membership(object).ok();
        let record = self
            .objects
            .get_mut(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        let (replica, failover) = plan::plan_restart_store(
            record,
            node,
            view.as_ref(),
            plan::ReplicaParts {
                object,
                semantics: fresh_semantics,
                history: &self.history,
                metrics: &self.metrics,
                detector: self.detector,
                tuning: self.tuning,
                storage: self.storage.clone(),
            },
        )?;
        {
            let mut spaces = self.shards[self.shard_of(object)].lock();
            let control = spaces
                .get_mut(&node)
                .and_then(|space| space.control_mut(object))
                .ok_or(RuntimeError::NoSuchReplica)?;
            control.set_store(replica);
        }
        if let Some(f) = &failover {
            // Promote the winner before the fresh replica's join reaches
            // it (same shard inbox, so ordering holds).
            let comm = CommObject::new(object, self.metrics.clone());
            let mut ctx = ShardCtx {
                node,
                router: &self.router,
            };
            comm.send(&mut ctx, f.new_home, &f.elect_msg());
            self.reroute_sessions(object, f.old_home, f.new_home, f.new_home_store, false);
        }
        let mut spaces = self.shards[self.shard_of(object)].lock();
        let space = spaces.get_mut(&node).ok_or(RuntimeError::NoSuchReplica)?;
        let mut ctx = ShardCtx {
            node,
            router: &self.router,
        };
        space.start_object(object, &mut ctx);
        if let Some(store) = space.control_mut(object).and_then(|c| c.store_mut()) {
            store.join(&mut ctx);
        }
        Ok(())
    }

    /// Fault injection: isolates (or heals) the node's address space in
    /// every lane that materialized a copy of it — and any copy a lane
    /// materializes later starts with the same flag — see
    /// [`GlobeRuntime::partition_node`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the node is unknown.
    pub fn partition_node(&mut self, node: NodeId, isolated: bool) -> Result<(), RuntimeError> {
        if !self.nodes.contains(&node) {
            return Err(RuntimeError::UnknownNode(node));
        }
        if isolated {
            self.partitioned.insert(node);
        } else {
            self.partitioned.remove(&node);
        }
        for shard in &self.shards {
            if let Some(space) = shard.lock().get_mut(&node) {
                space.set_partitioned(isolated);
            }
        }
        Ok(())
    }

    /// A snapshot of the object's membership plus the home store's
    /// failure-detector verdicts.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object is unknown.
    pub fn membership(&self, object: ObjectId) -> Result<MembershipView, RuntimeError> {
        let record = self
            .objects
            .get(&object)
            .ok_or(RuntimeError::UnknownObject(object))?;
        // The record may predate an unattended election: follow the
        // replicas' own claim of where the sequencer lives.
        let (home_node, _, _) = plan::effective_home(record, |n| self.replica_claim(object, n));
        let spaces = self.shards[self.router.shard_of(object)].lock();
        let home_space = spaces.get(&home_node);
        Ok(plan::membership_view(object, record, home_node, |peer| {
            home_space
                .map(|s| s.node_health(peer))
                .unwrap_or((crate::lifecycle::StoreHealth::Alive, None))
        }))
    }

    /// Injects one raw frame into the routing fabric as if `node` had
    /// sent it — the fault-injection hook the transport-hardening tests
    /// use to exercise the malformed-frame drop path.
    #[doc(hidden)]
    pub fn inject_frame(&mut self, node: NodeId, to: NodeId, payload: Bytes) {
        let mut ctx = ShardCtx {
            node,
            router: &self.router,
        };
        ctx.send(to, payload);
    }

    /// The shared execution history.
    pub fn history(&self) -> SharedHistory {
        self.history.clone()
    }

    /// The shared metrics.
    pub fn metrics(&self) -> SharedMetrics {
        self.metrics.clone()
    }

    /// Stops the workers and the timer service. Idempotent; calls after
    /// shutdown fail with [`CallError::TimedOut`].
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.router.timer.stop();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// The shard runtime's [`EnginePort`]: issuing and polling both go
/// through the owning lane's space lock, exactly like the trait-level
/// path, so N engine threads contend only when their objects share a
/// lane — objects on different lanes issue fully in parallel.
struct ShardPort {
    shards: Vec<ShardSpaces>,
    router: Arc<ShardRouter>,
}

impl ShardPort {
    fn lane(&self, object: ObjectId) -> &ShardSpaces {
        &self.shards[self.router.shard_of(object)]
    }
}

impl crate::EnginePort for ShardPort {
    fn issue(
        &self,
        handle: &ClientHandle,
        inv: InvocationMessage,
        is_read: bool,
    ) -> Result<RequestId, CallError> {
        let mut spaces = self.lane(handle.object).lock();
        let control = spaces
            .get_mut(&handle.node)
            .and_then(|space| space.control_mut(handle.object))
            .ok_or(CallError::NotBound)?;
        let mut ctx = ShardCtx {
            node: handle.node,
            router: &self.router,
        };
        if is_read {
            control.client_read(handle.client, inv, &mut ctx)
        } else {
            control.client_write(handle.client, inv, &mut ctx)
        }
    }

    fn try_result(
        &self,
        handle: &ClientHandle,
        req: RequestId,
    ) -> Option<Result<Bytes, CallError>> {
        let mut spaces = self.lane(handle.object).lock();
        spaces
            .get_mut(&handle.node)?
            .control_mut(handle.object)?
            .take_result(handle.client, req)
    }
}

impl GlobeRuntime for GlobeShard {
    fn add_node(&mut self) -> Result<NodeId, RuntimeError> {
        GlobeShard::add_node(self)
    }

    fn create_object(&mut self, spec: ObjectSpec) -> Result<ObjectId, RuntimeError> {
        let (path, policy, mut factory, placement) = spec.into_parts();
        self.create_object_impl(&path, policy, &mut *factory, &placement)
    }

    fn bind(
        &mut self,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<ClientHandle, RuntimeError> {
        GlobeShard::bind(self, object, node, opts)
    }

    fn issue_read(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError> {
        self.issue_call(handle, inv, true)
    }

    fn issue_write(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError> {
        self.issue_call(handle, inv, false)
    }

    fn result(
        &mut self,
        handle: &ClientHandle,
        req: RequestId,
    ) -> Option<Result<Bytes, CallError>> {
        if let Some(result) = self.take_result(handle, req) {
            return Some(result);
        }
        // Progress is autonomous (the shard workers run on their own
        // threads); yield the space lock briefly so a tight poll loop
        // cannot starve them, which keeps the contract's promise that a
        // plain issue/poll loop terminates.
        std::thread::sleep(POLL_BACKOFF);
        self.take_result(handle, req)
    }

    fn read(&mut self, handle: &ClientHandle, inv: InvocationMessage) -> Result<Bytes, CallError> {
        let req = self.issue_call(handle, inv, true)?;
        self.pump_client(handle, req, self.call_timeout)
    }

    fn write(&mut self, handle: &ClientHandle, inv: InvocationMessage) -> Result<Bytes, CallError> {
        let req = self.issue_call(handle, inv, false)?;
        self.pump_client(handle, req, self.call_timeout)
    }

    fn set_policy(
        &mut self,
        object: ObjectId,
        policy: ReplicationPolicy,
    ) -> Result<(), RuntimeError> {
        GlobeShard::set_policy(self, object, policy)
    }

    fn add_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        class: StoreClass,
        semantics: Box<dyn Semantics>,
    ) -> Result<StoreId, RuntimeError> {
        GlobeShard::add_store(self, object, node, class, semantics)
    }

    fn remove_store(&mut self, object: ObjectId, node: NodeId) -> Result<(), RuntimeError> {
        GlobeShard::remove_store(self, object, node)
    }

    fn restart_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        fresh_semantics: Box<dyn Semantics>,
    ) -> Result<(), RuntimeError> {
        GlobeShard::restart_store(self, object, node, fresh_semantics)
    }

    fn partition_node(&mut self, node: NodeId, isolated: bool) -> Result<(), RuntimeError> {
        GlobeShard::partition_node(self, node, isolated)
    }

    fn membership(&self, object: ObjectId) -> Result<MembershipView, RuntimeError> {
        GlobeShard::membership(self, object)
    }

    fn history(&self) -> SharedHistory {
        GlobeShard::history(self)
    }

    fn metrics(&self) -> SharedMetrics {
        GlobeShard::metrics(self)
    }

    fn start(&mut self, client_nodes: &[NodeId]) {
        GlobeShard::start(self, client_nodes);
    }

    fn shutdown(&mut self) {
        GlobeShard::shutdown(self);
    }

    fn settle(&mut self, d: Duration) {
        // The workers run in real time; let the wall clock advance.
        self.ensure_started();
        std::thread::sleep(d);
    }

    fn engine_port(&mut self) -> Option<Arc<dyn crate::EnginePort>> {
        // The port issues into live machinery; make sure the workers
        // that provide progress are running.
        self.ensure_started();
        Some(Arc::new(ShardPort {
            shards: self.shards.clone(),
            router: Arc::clone(&self.router),
        }))
    }
}

impl Default for GlobeShard {
    fn default() -> Self {
        GlobeShard::with_config(RuntimeConfig::new())
    }
}

impl Drop for GlobeShard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for GlobeShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobeShard")
            .field("shards", &self.num_shards())
            .field("nodes", &self.nodes.len())
            .field("objects", &self.objects.len())
            .field("started", &self.started)
            .finish()
    }
}
