//! The runtime-agnostic client API: [`GlobeRuntime`], [`ObjectSpec`],
//! and [`ObjectHandle`].
//!
//! The paper's central claim is that a Web object "fully encapsulates
//! its own state, methods, and policies" while the framework hides
//! *where* and *how* it runs. This module is that claim's API surface:
//! one trait captures the contract shared by every runtime (the
//! deterministic simulator [`crate::GlobeSim`], the real-socket
//! [`crate::GlobeTcp`], and the in-process sharded
//! [`crate::GlobeShard`]), one builder describes an object independently
//! of any runtime, and one handle type lets client code invoke a bound
//! object without knowing which runtime serves it. The [`crate::matrix`]
//! harness replays one scenario across all three and asserts the
//! outcomes agree.
//!
//! # Examples
//!
//! A scenario written once against the trait runs verbatim on every
//! runtime:
//!
//! ```
//! use globe_core::{registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec,
//!                  RegisterDoc, ReplicationPolicy};
//! use globe_coherence::StoreClass;
//! use globe_net::Topology;
//!
//! fn roundtrip<R: GlobeRuntime>(rt: &mut R) -> Result<(), Box<dyn std::error::Error>> {
//!     let server = rt.add_node()?;
//!     let browser = rt.add_node()?;
//!     let object = ObjectSpec::new("/home/alice")
//!         .policy(ReplicationPolicy::personal_home_page())
//!         .semantics(RegisterDoc::new)
//!         .store(server, StoreClass::Permanent)
//!         .create(rt)?;
//!     let alice = rt.bind(object, browser, BindOptions::new())?;
//!     rt.start(&[browser]);
//!     rt.handle(alice).write(registers::put("index.html", b"<h1>hi</h1>"))?;
//!     let page = rt.handle(alice).read(registers::get("index.html"))?;
//!     assert_eq!(&page[..], b"<h1>hi</h1>");
//!     rt.shutdown();
//!     Ok(())
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! roundtrip(&mut GlobeSim::new(Topology::lan(), 42))
//! # }
//! ```

use std::fmt;
use std::time::Duration;

use bytes::Bytes;
use globe_coherence::StoreClass;
use globe_naming::ObjectId;
use globe_net::NodeId;

use globe_coherence::StoreId;

use crate::lifecycle::MembershipView;
use crate::{
    BindOptions, CallError, ClientHandle, InvocationMessage, RegisterDoc, ReplicationPolicy,
    RequestId, RuntimeError, Semantics, SharedHistory, SharedMetrics,
};

/// Runtime-independent construction parameters, so [`crate::GlobeSim`],
/// [`crate::GlobeTcp`], and [`crate::GlobeShard`] build symmetrically.
///
/// # Examples
///
/// ```
/// use globe_core::{GlobeTcp, RuntimeConfig};
///
/// let tcp = GlobeTcp::with_config(RuntimeConfig::new().seed(42));
/// assert_eq!(tcp.seed(), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Seed for any randomized behavior (link jitter in the simulator,
    /// future retry jitter over sockets). The same seed must yield the
    /// same decisions.
    pub seed: u64,
    /// Maximum time a synchronous call may take; `None` selects a
    /// runtime-appropriate default (virtual time is free in the
    /// simulator, wall-clock time is not over sockets).
    pub call_timeout: Option<Duration>,
    /// Heartbeat period of the replica failure detector; `None` (the
    /// default) disables it. When set, every object's home store pings
    /// its peers each period and marks replicas that miss
    /// [`RuntimeConfig::suspect_after_misses`] consecutive periods
    /// suspect, surfaced via [`GlobeRuntime::membership`] and the
    /// metrics store's lifecycle events.
    pub heartbeat: Option<Duration>,
    /// Consecutive missed heartbeat periods before the detector marks a
    /// peer suspect (default
    /// [`crate::lifecycle::SUSPECT_AFTER_MISSES`]). Lower values detect
    /// failures faster at the cost of false suspicion under jitter;
    /// values below 1 are treated as 1.
    pub suspect_after_misses: u32,
    /// Unattended fail-over: when the node-level failure detector keeps
    /// the current home suspect past
    /// [`RuntimeConfig::failover_confirm_periods`] additional heartbeat
    /// periods, the surviving permanent stores run the election and the
    /// winner self-promotes — no `remove_store`/`restart_store` call.
    /// Requires the detector ([`RuntimeConfig::heartbeat_period`]).
    pub auto_failover: bool,
    /// Additional heartbeat periods a suspect home must stay silent
    /// before unattended fail-over confirms it down and elects (default
    /// [`crate::lifecycle::CONFIRM_PERIODS`]). The window bounds the
    /// client-visible outage and gives a flapping home time to answer
    /// before the sequencer moves.
    pub failover_confirm_periods: u32,
    /// Group-commit size at the home sequencer: pending writes
    /// accumulate per object until this many are staged (or
    /// [`RuntimeConfig::batch_window`] elapses), then one ordering
    /// decision covers the whole run and one `WriteBatch` frame fans it
    /// out. The default `1` disables batching entirely — every write
    /// takes exactly today's per-write path, bit for bit.
    pub batch_max: usize,
    /// Longest a staged write may wait for the batch to fill before the
    /// sequencer flushes anyway (only meaningful with
    /// [`RuntimeConfig::batch_max`] above 1).
    pub batch_window: Duration,
    /// Read leases: the home grants epoch-stamped leases to up-to-date
    /// permanent replicas, which then serve reads locally — without a
    /// round trip to the sequencer — while the lease is valid. Off by
    /// default; when on, a non-home replica *without* a valid lease
    /// forwards reads to the home instead of serving possibly-stale
    /// state.
    pub read_leases: bool,
    /// Validity window of a read lease, measured at the grantee; leases
    /// renew at half this period. A fail-over or policy change
    /// invalidates outstanding leases regardless of time left.
    pub lease_duration: Duration,
    /// Per-node capacity of the protocol flight recorder's event rings
    /// ([`crate::trace`]). `0` — the default — disables capture
    /// entirely: the hot path pays exactly one branch per would-be
    /// event. When set, [`GlobeRuntime::trace`] returns the captured
    /// journal.
    pub trace_capacity: usize,
    /// Cap on retained per-operation latency samples in the metrics
    /// store (`0` = unbounded, the historical default). Long open-loop
    /// engine runs should set this so the sample vector stops growing
    /// — and stops measuring allocator churn.
    pub op_sample_capacity: usize,
    /// Directory for durable replica storage (write-ahead logs +
    /// checkpoint snapshots). `None` — the default — keeps every
    /// replica on the RAM-only backend, bit-for-bit the historical
    /// behavior. When set, a restarted store recovers from its local
    /// files and fetches only the missing log suffix from the home.
    pub durable_dir: Option<std::path::PathBuf>,
    /// Checkpoint cadence: the home store checkpoints (and starts the
    /// compaction handshake that bounds every replica's write log)
    /// every this many applied writes. `0` — the default — disables
    /// checkpointing and compaction.
    pub checkpoint_every: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            seed: 0,
            call_timeout: None,
            heartbeat: None,
            suspect_after_misses: crate::lifecycle::SUSPECT_AFTER_MISSES,
            auto_failover: false,
            failover_confirm_periods: crate::lifecycle::CONFIRM_PERIODS,
            batch_max: 1,
            batch_window: crate::store_engine::DEFAULT_BATCH_WINDOW,
            read_leases: false,
            lease_duration: crate::store_engine::DEFAULT_LEASE_DURATION,
            trace_capacity: 0,
            op_sample_capacity: 0,
            durable_dir: None,
            checkpoint_every: 0,
        }
    }
}

impl RuntimeConfig {
    /// The default configuration.
    pub fn new() -> Self {
        RuntimeConfig::default()
    }

    /// Sets the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the synchronous-call timeout.
    pub fn call_timeout(mut self, timeout: Duration) -> Self {
        self.call_timeout = Some(timeout);
        self
    }

    /// Enables the replica failure detector with the given heartbeat
    /// period (see [`crate::lifecycle::DEFAULT_HEARTBEAT`] for a
    /// reasonable choice).
    pub fn heartbeat_period(mut self, period: Duration) -> Self {
        self.heartbeat = Some(period);
        self
    }

    /// Sets how many consecutive missed heartbeat periods the failure
    /// detector tolerates before suspecting a peer (clamped to at
    /// least 1).
    pub fn suspect_after_misses(mut self, misses: u32) -> Self {
        self.suspect_after_misses = misses.max(1);
        self
    }

    /// Enables (or disables) unattended fail-over: a home the detector
    /// confirms down is replaced by an elected survivor without any
    /// driver lifecycle call. Only meaningful with
    /// [`RuntimeConfig::heartbeat_period`] set.
    pub fn auto_failover(mut self, enabled: bool) -> Self {
        self.auto_failover = enabled;
        self
    }

    /// Sets how many *additional* heartbeat periods a suspect home must
    /// stay silent before unattended fail-over elects a successor.
    pub fn failover_confirm_periods(mut self, periods: u32) -> Self {
        self.failover_confirm_periods = periods;
        self
    }

    /// Sets the group-commit size (clamped to at least 1; `1` keeps
    /// today's per-write protocol exactly).
    pub fn batch_max(mut self, max: usize) -> Self {
        self.batch_max = max.max(1);
        self
    }

    /// Sets how long a staged write may wait for its batch to fill.
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Enables (or disables) the read-lease fast path at permanent
    /// replicas.
    pub fn read_leases(mut self, enabled: bool) -> Self {
        self.read_leases = enabled;
        self
    }

    /// Sets the read-lease validity window.
    pub fn lease_duration(mut self, duration: Duration) -> Self {
        self.lease_duration = duration;
        self
    }

    /// Enables the protocol flight recorder with the given per-node
    /// ring capacity (`0` keeps it off).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Caps retained per-operation latency samples (`0` = unbounded).
    pub fn op_sample_capacity(mut self, capacity: usize) -> Self {
        self.op_sample_capacity = capacity;
        self
    }

    /// Puts every replica on the durable WAL + snapshot backend rooted
    /// at `dir` (one file pair per replica; the directory is created on
    /// demand).
    pub fn durable_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Sets the checkpoint/compaction cadence in applied writes (`0`
    /// keeps both off).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// The failure-detector tuning implied by this configuration.
    pub(crate) fn detector(&self) -> crate::lifecycle::DetectorConfig {
        crate::lifecycle::DetectorConfig {
            period: self.heartbeat,
            suspect_after: self.suspect_after_misses.max(1),
            auto_failover: self.auto_failover,
            confirm_after: self.failover_confirm_periods,
        }
    }

    /// The store-engine tuning (group commit + read leases) implied by
    /// this configuration.
    pub(crate) fn tuning(&self) -> crate::store_engine::StoreTuning {
        crate::store_engine::StoreTuning {
            batch_max: self.batch_max.max(1),
            batch_window: self.batch_window,
            read_leases: self.read_leases,
            lease_duration: self.lease_duration,
            trace_capacity: self.trace_capacity,
        }
    }

    /// The storage spec (backend choice + checkpoint cadence) implied
    /// by this configuration.
    pub(crate) fn storage(&self) -> crate::storage::StorageSpec {
        crate::storage::StorageSpec {
            durable_dir: self.durable_dir.clone(),
            checkpoint_every: self.checkpoint_every,
        }
    }

    /// Builds the runtime's shared metrics store with this
    /// configuration's capture capacities applied (flight-recorder ring
    /// size and the op-sample cap).
    pub(crate) fn build_metrics(&self) -> SharedMetrics {
        let metrics = crate::shared_metrics();
        {
            let mut guard = metrics.lock();
            guard.set_trace_capacity(self.trace_capacity);
            guard.set_op_capacity(self.op_sample_capacity);
        }
        metrics
    }
}

/// A factory producing one fresh semantics instance per replica.
pub type SemanticsFactory = Box<dyn FnMut() -> Box<dyn Semantics>>;

/// A runtime-independent description of a distributed Web object: its
/// name, replication policy, semantics, and replica placement.
///
/// Built fluently and handed to any [`GlobeRuntime`]; the first
/// `Permanent` store becomes the home (sequencing) store, exactly as in
/// the paper's Fig. 3.
///
/// # Examples
///
/// ```
/// use globe_core::{GlobeSim, ObjectSpec, RegisterDoc, ReplicationPolicy};
/// use globe_coherence::StoreClass;
/// use globe_net::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = GlobeSim::new(Topology::lan(), 1);
/// let server = sim.add_node();
/// let cache = sim.add_node();
/// let object = ObjectSpec::new("/conf/icdcs98")
///     .policy(ReplicationPolicy::conference_page())
///     .semantics(RegisterDoc::new)
///     .store(server, StoreClass::Permanent)
///     .store(cache, StoreClass::ClientInitiated)
///     .create(&mut sim)?;
/// # let _ = object;
/// # Ok(())
/// # }
/// ```
pub struct ObjectSpec {
    path: String,
    policy: ReplicationPolicy,
    placement: Vec<(NodeId, StoreClass)>,
    factory: SemanticsFactory,
}

impl ObjectSpec {
    /// Starts a spec for the object named `path`.
    ///
    /// Defaults: the paper's personal-home-page policy and
    /// [`RegisterDoc`] semantics; override with [`ObjectSpec::policy`]
    /// and [`ObjectSpec::semantics`].
    pub fn new(path: impl Into<String>) -> Self {
        ObjectSpec {
            path: path.into(),
            policy: ReplicationPolicy::personal_home_page(),
            placement: Vec::new(),
            factory: Box::new(|| Box::new(RegisterDoc::new())),
        }
    }

    /// Sets the per-object replication policy.
    pub fn policy(mut self, policy: ReplicationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the semantics factory; each replica gets a fresh instance.
    pub fn semantics<S, F>(mut self, mut factory: F) -> Self
    where
        S: Semantics + 'static,
        F: FnMut() -> S + 'static,
    {
        self.factory = Box::new(move || Box::new(factory()));
        self
    }

    /// Sets a factory returning already-boxed semantics.
    pub fn semantics_boxed(
        mut self,
        factory: impl FnMut() -> Box<dyn Semantics> + 'static,
    ) -> Self {
        self.factory = Box::new(factory);
        self
    }

    /// Adds a replica of class `class` on `node`.
    pub fn store(mut self, node: NodeId, class: StoreClass) -> Self {
        self.placement.push((node, class));
        self
    }

    /// Adds the home store: shorthand for a `Permanent` replica.
    pub fn home(self, node: NodeId) -> Self {
        self.store(node, StoreClass::Permanent)
    }

    /// Adds several replicas at once.
    pub fn stores(mut self, placement: &[(NodeId, StoreClass)]) -> Self {
        self.placement.extend_from_slice(placement);
        self
    }

    /// Creates the object in `rt` (sugar for
    /// [`GlobeRuntime::create_object`], reading naturally at the end of
    /// a builder chain).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the name is taken or malformed, a
    /// node is unknown, no permanent store is listed, or the policy is
    /// invalid.
    pub fn create<R: GlobeRuntime + ?Sized>(self, rt: &mut R) -> Result<ObjectId, RuntimeError> {
        rt.create_object(self)
    }

    /// The object's path name.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The placement list as given so far.
    pub fn placement(&self) -> &[(NodeId, StoreClass)] {
        &self.placement
    }

    /// Decomposes the spec for a runtime's internal creation routine.
    pub(crate) fn into_parts(
        self,
    ) -> (
        String,
        ReplicationPolicy,
        SemanticsFactory,
        Vec<(NodeId, StoreClass)>,
    ) {
        (self.path, self.policy, self.factory, self.placement)
    }
}

impl fmt::Debug for ObjectSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectSpec")
            .field("path", &self.path)
            .field("policy", &self.policy.model)
            .field("placement", &self.placement)
            .finish_non_exhaustive()
    }
}

/// The contract shared by every Globe runtime: create nodes and
/// objects, bind clients, invoke methods, and manage policies — without
/// client code knowing whether the transport is a simulated network or
/// real sockets.
///
/// Synchronous [`read`](GlobeRuntime::read) / [`write`](GlobeRuntime::write)
/// drive the runtime until the reply arrives (virtual time in the
/// simulator, wall-clock polling over sockets and shard channels). The
/// [`issue_read`](GlobeRuntime::issue_read) /
/// [`issue_write`](GlobeRuntime::issue_write) /
/// [`result`](GlobeRuntime::result) split exposes the same calls
/// asynchronously.
///
/// # Examples
///
/// Code written against the trait cannot tell which runtime serves it;
/// here the asynchronous issue/poll split acknowledges a write on the
/// simulator, and would do the same on [`crate::GlobeTcp`] or
/// [`crate::GlobeShard`]:
///
/// ```
/// use globe_core::{registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec};
/// use globe_coherence::StoreClass;
/// use globe_net::Topology;
///
/// fn publish<R: GlobeRuntime>(rt: &mut R) -> Result<(), Box<dyn std::error::Error>> {
///     let server = rt.add_node()?;
///     let object = ObjectSpec::new("/news/today")
///         .store(server, StoreClass::Permanent)
///         .create(rt)?;
///     let editor = rt.bind(object, server, BindOptions::new())?;
///     rt.start(&[server]);
///     let req = rt.handle(editor).issue_write(registers::put("lead", b"scoop"))?;
///     let ack = loop {
///         // The polling contract: every poll lets the runtime advance,
///         // so this loop terminates on all backends.
///         if let Some(result) = rt.handle(editor).result(req) {
///             break result;
///         }
///     };
///     ack?;
///     rt.shutdown();
///     Ok(())
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// publish(&mut GlobeSim::new(Topology::lan(), 1))
/// # }
/// ```
pub trait GlobeRuntime {
    /// Adds an address space.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the runtime cannot host another
    /// node (e.g. a socket endpoint cannot be created).
    fn add_node(&mut self) -> Result<NodeId, RuntimeError>;

    /// Creates a distributed Web object from its spec.
    ///
    /// Prefer the builder-terminal spelling `spec.create(rt)`, which
    /// reads naturally at the end of an [`ObjectSpec`] chain.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the name is taken or malformed, a
    /// node is unknown, no permanent store is listed, or the policy is
    /// invalid.
    fn create_object(&mut self, spec: ObjectSpec) -> Result<ObjectId, RuntimeError>;

    /// Binds a client in `node`'s address space to `object`.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object/node is unknown or the
    /// requested replica does not exist.
    fn bind(
        &mut self,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<ClientHandle, RuntimeError>;

    /// Issues an asynchronous read; poll with [`GlobeRuntime::result`].
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] for an unknown handle.
    fn issue_read(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError>;

    /// Issues an asynchronous write; poll with [`GlobeRuntime::result`].
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] for an unknown handle.
    fn issue_write(
        &mut self,
        handle: &ClientHandle,
        inv: InvocationMessage,
    ) -> Result<RequestId, CallError>;

    /// Takes the result of an asynchronous call, if it completed.
    ///
    /// Polling makes progress: each call lets the runtime advance a
    /// little (one simulation step, or a drain of pending socket
    /// events), so a plain issue/poll loop terminates on every runtime.
    fn result(&mut self, handle: &ClientHandle, req: RequestId)
        -> Option<Result<Bytes, CallError>>;

    /// Executes a read synchronously.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails, stalls, or times out.
    fn read(&mut self, handle: &ClientHandle, inv: InvocationMessage) -> Result<Bytes, CallError>;

    /// Executes a write synchronously.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails, stalls, or times out.
    fn write(&mut self, handle: &ClientHandle, inv: InvocationMessage) -> Result<Bytes, CallError>;

    /// Changes an object's replication policy at run time.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for unknown objects, invalid
    /// policies, or runtimes in a state that cannot deliver the change.
    fn set_policy(
        &mut self,
        object: ObjectId,
        policy: ReplicationPolicy,
    ) -> Result<(), RuntimeError>;

    /// Installs an additional store (mirror or cache) at run time, on
    /// any backend and on a live deployment. The new replica announces
    /// itself to the home store, which ships back a state transfer
    /// carrying the object's current state *and* its coherence
    /// history/version vector, so reads served by the new replica are
    /// indistinguishable from reads served by an original one.
    ///
    /// # Examples
    ///
    /// ```
    /// use globe_core::{registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, RegisterDoc};
    /// use globe_coherence::StoreClass;
    /// use globe_net::Topology;
    /// use std::time::Duration;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut sim = GlobeSim::new(Topology::lan(), 11);
    /// let server = sim.add_node();
    /// let mirror = sim.add_node();
    /// let object = ObjectSpec::new("/live/mirror")
    ///     .store(server, StoreClass::Permanent)
    ///     .create(&mut sim)?;
    /// let master = sim.bind(object, server, BindOptions::new())?;
    /// sim.handle(master).write(registers::put("p", b"v1"))?;
    /// // Install a mirror mid-run; it catches up via state transfer.
    /// GlobeRuntime::add_store(&mut sim, object, mirror, StoreClass::ObjectInitiated,
    ///     Box::new(RegisterDoc::new()))?;
    /// sim.settle(Duration::from_secs(1));
    /// assert_eq!(sim.store_digest(object, mirror), sim.store_digest(object, server));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or node is unknown, or
    /// the node already hosts a replica of this object.
    fn add_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        class: StoreClass,
        semantics: Box<dyn Semantics>,
    ) -> Result<StoreId, RuntimeError>;

    /// Removes the replica at `node` gracefully: the home store stops
    /// propagating and heartbeating to it, and the location service
    /// forgets it. Clients bound to it for reads should rebind first.
    ///
    /// Removing the *home* (sequencer) store triggers a fail-over: the
    /// lowest-id surviving permanent store is elected the new sequencer
    /// (suspects passed over via the failure detector's membership
    /// view), the retiring home hands it the coherence write log and
    /// version vector in a `SequencerHandoff`, and every client session
    /// is rerouted — post-failover reads and
    /// [`GlobeRuntime::history`] are a prefix-consistent continuation.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or replica is unknown,
    /// or the replica is the home store and no surviving permanent
    /// store can be elected ([`RuntimeError::NoFailoverCandidate`]).
    fn remove_store(&mut self, object: ObjectId, node: NodeId) -> Result<(), RuntimeError>;

    /// Crash-and-recovers the replica at `node`: its in-memory state is
    /// discarded and rebuilt from a home-store state transfer that
    /// preserves the coherence history, so post-recovery reads — and
    /// the recorded history — continue exactly where the pre-failure
    /// replica left off.
    ///
    /// Crash-restarting the *home* (sequencer) store triggers a
    /// fail-over: the lowest-id surviving permanent store is elected
    /// and promotes itself from its own replica of the write log (an
    /// `ElectRequest`), client sessions are rerouted to it, and the old
    /// home rejoins its own object as an ordinary permanent replica.
    ///
    /// # Examples
    ///
    /// ```
    /// use globe_core::{registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec, RegisterDoc};
    /// use globe_coherence::StoreClass;
    /// use globe_net::Topology;
    /// use std::time::Duration;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut sim = GlobeSim::new(Topology::lan(), 12);
    /// let server = sim.add_node();
    /// let cache = sim.add_node();
    /// let object = ObjectSpec::new("/live/restart")
    ///     .store(server, StoreClass::Permanent)
    ///     .store(cache, StoreClass::ClientInitiated)
    ///     .create(&mut sim)?;
    /// let master = sim.bind(object, server, BindOptions::new())?;
    /// sim.handle(master).write(registers::put("p", b"pre-crash"))?;
    /// sim.settle(Duration::from_secs(1));
    /// // Crash the cache and recover it from the home store.
    /// GlobeRuntime::restart_store(&mut sim, object, cache, Box::new(RegisterDoc::new()))?;
    /// sim.settle(Duration::from_secs(1));
    /// assert_eq!(sim.store_digest(object, cache), sim.store_digest(object, server));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object or replica is unknown,
    /// or the replica is the home store and no surviving permanent
    /// store can be elected ([`RuntimeError::NoFailoverCandidate`]).
    fn restart_store(
        &mut self,
        object: ObjectId,
        node: NodeId,
        fresh_semantics: Box<dyn Semantics>,
    ) -> Result<(), RuntimeError>;

    /// Fault injection: isolates (`true`) or heals (`false`) the node's
    /// address space. While isolated, every inbound message is dropped
    /// and every outbound send is muted — a symmetric partition of one
    /// node, uniform across backends — but local timers keep firing, so
    /// the node's protocol machinery survives and can rejoin when
    /// healed. With the failure detector and
    /// [`RuntimeConfig::auto_failover`] enabled, isolating an object's
    /// home is exactly the unattended fail-over drill: the survivors
    /// elect a new sequencer with no lifecycle call, and healing lets
    /// the deposed home rejoin as an ordinary replica.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the node is unknown.
    fn partition_node(&mut self, node: NodeId, isolated: bool) -> Result<(), RuntimeError>;

    /// A snapshot of the object's replica membership: every current
    /// store, its class, and the home store's failure-detector verdict
    /// for it (always `Alive` unless a heartbeat period was configured
    /// via [`RuntimeConfig::heartbeat_period`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use globe_core::{GlobeRuntime, GlobeSim, ObjectSpec, RuntimeConfig};
    /// use globe_core::lifecycle::StoreHealth;
    /// use globe_coherence::StoreClass;
    /// use globe_net::Topology;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut sim = GlobeSim::with_config(Topology::lan(), RuntimeConfig::new().seed(13));
    /// let server = sim.add_node();
    /// let cache = sim.add_node();
    /// let object = ObjectSpec::new("/live/members")
    ///     .store(server, StoreClass::Permanent)
    ///     .store(cache, StoreClass::ClientInitiated)
    ///     .create(&mut sim)?;
    /// let view = sim.membership(object)?;
    /// assert_eq!(view.members.len(), 2);
    /// assert!(view.members[0].is_home);
    /// assert!(view.all_alive());
    /// assert_eq!(view.member(cache).unwrap().health, StoreHealth::Alive);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object is unknown.
    fn membership(&self, object: ObjectId) -> Result<MembershipView, RuntimeError>;

    /// The shared execution history (for coherence checking).
    fn history(&self) -> SharedHistory;

    /// The shared metrics store.
    fn metrics(&self) -> SharedMetrics;

    /// A snapshot of the protocol flight recorder: the captured event
    /// journal plus the always-on protocol counters. Empty (but still
    /// carrying the counters) unless the runtime was built with
    /// [`RuntimeConfig::trace_capacity`] above zero.
    fn trace(&self) -> crate::trace::TraceSnapshot {
        self.metrics().lock().trace_snapshot()
    }

    /// Starts background machinery, keeping `client_nodes` caller-driven.
    ///
    /// A no-op in runtimes that need none (the simulator); the TCP
    /// runtime spawns store event loops here.
    fn start(&mut self, client_nodes: &[NodeId]) {
        let _ = client_nodes;
    }

    /// Stops background machinery; further calls may fail.
    fn shutdown(&mut self) {}

    /// Lets `d` of runtime time pass so propagation can settle:
    /// virtual time in the simulator, wall-clock time over sockets.
    fn settle(&mut self, d: Duration);

    /// A thread-safe issuing surface over this runtime's client plane,
    /// or `None` when the runtime is single-threaded (the simulator,
    /// whose address spaces are `Rc`-shared and advance only in virtual
    /// time). Backends whose protocol machinery runs on its own threads
    /// (TCP, shard) return a port that N load-generator threads can
    /// issue and poll through concurrently — the surface the workload
    /// engine's open-loop drivers saturate. Call [`GlobeRuntime::start`]
    /// first: the port issues into live machinery.
    fn engine_port(&mut self) -> Option<std::sync::Arc<dyn EnginePort>> {
        None
    }

    /// An object-centric view over a bound client, so call sites read
    /// `handle.write(..)` instead of threading `&mut runtime` around.
    fn handle(&mut self, client: ClientHandle) -> ObjectHandle<'_, Self>
    where
        Self: Sized,
    {
        ObjectHandle {
            runtime: self,
            client,
        }
    }

    /// Binds and immediately wraps the binding in an [`ObjectHandle`].
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the object/node is unknown or the
    /// requested replica does not exist.
    fn bind_handle(
        &mut self,
        object: ObjectId,
        node: NodeId,
        opts: BindOptions,
    ) -> Result<ObjectHandle<'_, Self>, RuntimeError>
    where
        Self: Sized,
    {
        let client = self.bind(object, node, opts)?;
        Ok(self.handle(client))
    }
}

/// A thread-safe, object-safe slice of a runtime's client plane: issue
/// an asynchronous call, poll for its result. Obtained from
/// [`GlobeRuntime::engine_port`]; cloneable via `Arc`, so one port fans
/// out to N concurrent load-generator threads while the runtime's own
/// machinery (shard workers, store event loops) makes the progress.
///
/// The contract mirrors the trait's issue/result split, minus the
/// pumping duties: `try_result` never blocks and never sleeps — the
/// caller owns its poll cadence (an open-loop driver polls between
/// issues; a closed-loop one spins with its own backoff).
pub trait EnginePort: Send + Sync {
    /// Issues an asynchronous call for `handle`; a read when `is_read`,
    /// a write otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] for an unknown handle.
    fn issue(
        &self,
        handle: &ClientHandle,
        inv: InvocationMessage,
        is_read: bool,
    ) -> Result<RequestId, CallError>;

    /// Takes the result of an asynchronous call if it has completed;
    /// returns immediately either way.
    fn try_result(&self, handle: &ClientHandle, req: RequestId)
        -> Option<Result<Bytes, CallError>>;
}

/// An owning view of one bound client on one runtime: invocation calls
/// hang off the handle, not the runtime.
///
/// Obtained from [`GlobeRuntime::handle`] or
/// [`GlobeRuntime::bind_handle`]; it borrows the runtime mutably, so
/// scope it to one client's burst of calls and re-acquire (cheaply) to
/// speak for another client.
///
/// # Examples
///
/// ```
/// use globe_core::{registers, BindOptions, GlobeRuntime, GlobeSim, ObjectSpec};
/// use globe_coherence::StoreClass;
/// use globe_net::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sim = GlobeSim::new(Topology::lan(), 9);
/// let server = sim.add_node();
/// let object = ObjectSpec::new("/home/bob")
///     .store(server, StoreClass::Permanent)
///     .create(&mut sim)?;
/// let mut bob = sim.bind_handle(object, server, BindOptions::new())?;
/// bob.write(registers::put("bio.html", b"hello"))?;
/// assert_eq!(&bob.read(registers::get("bio.html"))?[..], b"hello");
/// assert_eq!(bob.object(), object);
/// # Ok(())
/// # }
/// ```
pub struct ObjectHandle<'r, R: GlobeRuntime + ?Sized> {
    runtime: &'r mut R,
    client: ClientHandle,
}

impl<R: GlobeRuntime> ObjectHandle<'_, R> {
    /// The underlying client binding.
    pub fn client(&self) -> ClientHandle {
        self.client
    }

    /// The bound object.
    pub fn object(&self) -> ObjectId {
        self.client.object
    }

    /// The node this client runs in.
    pub fn node(&self) -> NodeId {
        self.client.node
    }

    /// The runtime behind the handle.
    pub fn runtime(&mut self) -> &mut R {
        self.runtime
    }

    /// Executes a read synchronously.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails, stalls, or times out.
    pub fn read(&mut self, inv: InvocationMessage) -> Result<Bytes, CallError> {
        self.runtime.read(&self.client, inv)
    }

    /// Executes a write synchronously.
    ///
    /// # Errors
    ///
    /// Returns a [`CallError`] if the call fails, stalls, or times out.
    pub fn write(&mut self, inv: InvocationMessage) -> Result<Bytes, CallError> {
        self.runtime.write(&self.client, inv)
    }

    /// Issues an asynchronous read; poll with [`ObjectHandle::result`].
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] for an unknown handle.
    pub fn issue_read(&mut self, inv: InvocationMessage) -> Result<RequestId, CallError> {
        self.runtime.issue_read(&self.client, inv)
    }

    /// Issues an asynchronous write; poll with [`ObjectHandle::result`].
    ///
    /// # Errors
    ///
    /// Returns [`CallError::NotBound`] for an unknown handle.
    pub fn issue_write(&mut self, inv: InvocationMessage) -> Result<RequestId, CallError> {
        self.runtime.issue_write(&self.client, inv)
    }

    /// Takes the result of an asynchronous call, if it completed.
    pub fn result(&mut self, req: RequestId) -> Option<Result<Bytes, CallError>> {
        self.runtime.result(&self.client, req)
    }
}

impl<R: GlobeRuntime> fmt::Debug for ObjectHandle<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectHandle")
            .field("client", &self.client)
            .finish_non_exhaustive()
    }
}
