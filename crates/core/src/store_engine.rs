//! The store-side engine: one replica of one distributed object.
//!
//! A [`StoreReplica`] combines the semantics object, a pluggable
//! replication object, and the communication object, and interprets every
//! Table-1 implementation parameter: update vs invalidate propagation,
//! push vs pull initiative, immediate vs lazy (aggregated) transfer,
//! partial/full/notification coherence transfers, and the wait/demand
//! outdate reactions. The home (primary permanent) store additionally
//! propagates writes to its peers and answers pulls.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Duration;

use bytes::Bytes;
use globe_coherence::{ClientId, PageKey, StoreClass, StoreId, VersionVector, WriteId};
use globe_naming::ObjectId;
use globe_net::{NetCtx, NodeId};

use crate::lifecycle::{DetectorConfig, LifecycleEvent, LifecycleEventKind};
use crate::replication::{replication_for, Readiness, RecordMode, ReplicaView, ReplicationObject};
use crate::storage::{CheckpointImage, Recovery, StorageSpec, StoreBackend};
use crate::trace::{FlushReason, ProtocolEvent, ReadSource, TraceEvent};
use crate::{
    CallOutcome, CoherenceMsg, CoherenceTransfer, CommObject, InvocationMessage, LoggedWrite,
    OutdateReaction, Propagation, ReplicationPolicy, RequestId, Semantics, SharedHistory,
    SharedMetrics, TransferInitiative, TransferInstant,
};

/// Page label used in histories for whole-document operations.
pub const WHOLE_DOC: &str = "*";

/// Interval at which unmet demands are re-issued (loss recovery).
const RETRY_PERIOD: Duration = Duration::from_millis(200);

/// Default longest wait before a partially filled batch flushes anyway.
pub const DEFAULT_BATCH_WINDOW: Duration = Duration::from_millis(5);

/// Default validity window of a read lease.
pub const DEFAULT_LEASE_DURATION: Duration = Duration::from_secs(2);

/// Logical timers a replica arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Periodic lazy propagation at the home store.
    LazyPush = 0,
    /// Periodic pull (pull initiative or anti-entropy).
    PullPoll = 1,
    /// Re-issue of unmet demands.
    DemandRetry = 2,
    /// Client-proxy retransmission of unacknowledged writes.
    SessionRetry = 3,
    /// Node-level failure-detector heartbeat round (armed under the
    /// node-scope token by the address space, not by any one replica).
    Heartbeat = 4,
    /// Group-commit window expiry at the home sequencer: flush the
    /// partially filled batch.
    BatchFlush = 5,
    /// Periodic read-lease renewal at a leased permanent replica.
    LeaseRenew = 6,
}

impl TimerKind {
    /// Decodes a timer kind from its raw value.
    pub fn from_raw(raw: u64) -> Option<TimerKind> {
        match raw {
            0 => Some(TimerKind::LazyPush),
            1 => Some(TimerKind::PullPoll),
            2 => Some(TimerKind::DemandRetry),
            3 => Some(TimerKind::SessionRetry),
            4 => Some(TimerKind::Heartbeat),
            5 => Some(TimerKind::BatchFlush),
            6 => Some(TimerKind::LeaseRenew),
            _ => None,
        }
    }
}

/// Store-engine tuning shared by every replica of a deployment: the
/// sequencer's group-commit parameters and the read-lease fast path.
/// Built from [`crate::RuntimeConfig`]; the defaults (`batch_max = 1`,
/// leases off) reproduce the per-write protocol exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreTuning {
    /// Writes staged at the sequencer before a forced flush; `1`
    /// disables group commit.
    pub batch_max: usize,
    /// Longest a staged write waits for the batch to fill.
    pub batch_window: Duration,
    /// Whether the home grants read leases to permanent replicas.
    pub read_leases: bool,
    /// Validity window of a granted lease (renewed at half-period).
    pub lease_duration: Duration,
    /// Per-node capacity of the flight-recorder event rings; `0` (the
    /// default) disables capture, leaving one branch per would-be
    /// event on the hot path.
    pub trace_capacity: usize,
}

impl Default for StoreTuning {
    fn default() -> Self {
        StoreTuning {
            batch_max: 1,
            batch_window: DEFAULT_BATCH_WINDOW,
            read_leases: false,
            lease_duration: DEFAULT_LEASE_DURATION,
            trace_capacity: 0,
        }
    }
}

/// A replica-side read lease: local reads are allowed while the epoch
/// still names the sequencer that granted it, the validity window has
/// not elapsed, and the replica has caught up to the grant point.
#[derive(Debug, Clone)]
struct ReadLease {
    epoch: u64,
    version: VersionVector,
    expires: globe_net::SimTime,
}

/// Another store holding a replica of the same object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerStore {
    /// The peer's node.
    pub node: NodeId,
    /// The peer's store id — the election key: when the home dies, the
    /// lowest-id surviving permanent store wins.
    pub store: StoreId,
    /// The peer's store class.
    pub class: StoreClass,
}

#[derive(Debug)]
struct BufferedWrite {
    write: LoggedWrite,
    reply_to: Option<(NodeId, RequestId, ClientId)>,
}

#[derive(Debug)]
struct QueuedRead {
    req: RequestId,
    from: NodeId,
    client: ClientId,
    inv: InvocationMessage,
    min_version: VersionVector,
}

/// Configuration for constructing a [`StoreReplica`].
pub struct StoreConfig {
    /// The distributed object this replica belongs to.
    pub object: ObjectId,
    /// This replica's store id.
    pub store_id: StoreId,
    /// This replica's store class.
    pub class: StoreClass,
    /// The object's replication policy.
    pub policy: ReplicationPolicy,
    /// The node of the home (primary permanent) store.
    pub home_node: NodeId,
    /// The store id of the home store (the election tie-break key; when
    /// this replica *is* the home it equals `store_id`).
    pub home_store: StoreId,
    /// Whether this replica is the home store.
    pub is_home: bool,
    /// Every other replica of the object. The home uses the list to
    /// propagate; every permanent replica additionally needs it to run
    /// the unattended election from its own copy of the membership.
    pub peers: Vec<PeerStore>,
    /// The semantics object instance for this replica.
    pub semantics: Box<dyn Semantics>,
    /// Shared execution history for checkers.
    pub history: SharedHistory,
    /// Shared metrics.
    pub metrics: SharedMetrics,
    /// Failure-detector tuning (period and suspicion threshold); a
    /// `None` period disables it. Only the home store runs the detector.
    pub detector: DetectorConfig,
    /// Store-engine tuning: sequencer group commit and read leases.
    pub tuning: StoreTuning,
    /// Storage backend selection and checkpoint cadence: in-memory by
    /// default, WAL + snapshots when a durable directory is configured.
    pub storage: StorageSpec,
}

/// One store's replica of a distributed shared object.
pub struct StoreReplica {
    object: ObjectId,
    store_id: StoreId,
    class: StoreClass,
    policy: ReplicationPolicy,
    repl: Box<dyn ReplicationObject>,
    semantics: Box<dyn Semantics>,
    comm: CommObject,
    applied: VersionVector,
    extra_seen: BTreeSet<WriteId>,
    next_order: u64,
    order_assigned: u64,
    page_last_writer: HashMap<PageKey, WriteId>,
    invalid_pages: HashSet<PageKey>,
    whole_invalid: bool,
    known_version: VersionVector,
    log: Box<dyn StoreBackend>,
    peer_sent: HashMap<NodeId, usize>,
    buffered: Vec<BufferedWrite>,
    queued_reads: Vec<QueuedRead>,
    forwarded: HashMap<RequestId, NodeId>,
    client_nodes: HashMap<ClientId, NodeId>,
    is_home: bool,
    home_node: NodeId,
    home_store: StoreId,
    /// The node the sequencer most recently moved away from (equals
    /// `home_node` until a takeover happens): re-announcements name it
    /// so late-arriving sessions still reroute off the dead home.
    prev_home: NodeId,
    /// The election epoch of the sequencer this replica follows: 0 for
    /// the object's original home, incremented by every fail-over. A
    /// handoff or election carrying a stale epoch is rejected, so a
    /// detector flap cannot install two sequencers for one epoch.
    home_epoch: u64,
    peers: Vec<PeerStore>,
    needs_bootstrap: bool,
    history: SharedHistory,
    metrics: SharedMetrics,
    detector: DetectorConfig,
    tuning: StoreTuning,
    /// Writes staged for the next group commit (home sequencer only,
    /// `tuning.batch_max > 1`): acknowledged only when the flush applies
    /// them, so an ack never precedes application.
    pending_batch: Vec<BufferedWrite>,
    /// Read leases the home has granted, per grantee node, with expiry.
    granted_leases: HashMap<NodeId, globe_net::SimTime>,
    /// This replica's own read lease, when one is held.
    lease: Option<ReadLease>,
    lazy_armed: bool,
    pull_armed: bool,
    retry_armed: bool,
    batch_armed: bool,
    lease_renew_armed: bool,
    /// Checkpoint cadence: the home snapshots every this many applies
    /// (`0` disables checkpointing and compaction entirely).
    checkpoint_every: usize,
    applies_since_ckpt: usize,
    /// Home only: the announced checkpoint version still collecting
    /// acks. Compaction happens only once every current peer acked.
    ckpt_pending: Option<VersionVector>,
    ckpt_acks: BTreeSet<NodeId>,
    /// Peer only: an announced checkpoint this replica has not caught
    /// up to yet; re-checked after every apply.
    ckpt_deferred: Option<VersionVector>,
    /// The version below which the log was compacted. A joiner whose
    /// vector does not dominate it needs a full transfer, not a delta.
    compact_floor: Option<VersionVector>,
    /// Chunks of an in-flight incremental state transfer, buffered by
    /// chunk index until the set completes.
    delta_chunks: HashMap<u64, Vec<LoggedWrite>>,
    /// A checkpoint recovered from local durable storage, reported as a
    /// trace event on the first `join` (construction has no net ctx).
    recovered_ckpt: Option<VersionVector>,
}

impl StoreReplica {
    /// Builds a replica from its configuration. A durable backend that
    /// salvaged a checkpoint and/or write-ahead log from disk is
    /// replayed immediately, so the replica rejoins with a non-empty
    /// version vector and only needs the missing suffix over the wire.
    pub fn new(config: StoreConfig) -> Self {
        let comm = CommObject::new(config.object, config.metrics.clone());
        let metrics = config.metrics;
        let mut log = config.storage.make_backend(config.object, config.store_id);
        let recovery = log.take_recovery();
        let mut replica = StoreReplica {
            object: config.object,
            store_id: config.store_id,
            class: config.class,
            repl: replication_for(config.policy.model),
            policy: config.policy,
            semantics: config.semantics,
            comm,
            applied: VersionVector::new(),
            extra_seen: BTreeSet::new(),
            next_order: 0,
            order_assigned: 0,
            page_last_writer: HashMap::new(),
            invalid_pages: HashSet::new(),
            whole_invalid: false,
            known_version: VersionVector::new(),
            log,
            peer_sent: HashMap::new(),
            buffered: Vec::new(),
            queued_reads: Vec::new(),
            forwarded: HashMap::new(),
            client_nodes: HashMap::new(),
            is_home: config.is_home,
            home_node: config.home_node,
            home_store: config.home_store,
            prev_home: config.home_node,
            home_epoch: 0,
            peers: config.peers,
            needs_bootstrap: false,
            history: config.history,
            metrics,
            detector: config.detector,
            tuning: config.tuning,
            pending_batch: Vec::new(),
            granted_leases: HashMap::new(),
            lease: None,
            lazy_armed: false,
            pull_armed: false,
            retry_armed: false,
            batch_armed: false,
            lease_renew_armed: false,
            checkpoint_every: config.storage.checkpoint_every,
            applies_since_ckpt: 0,
            ckpt_pending: None,
            ckpt_acks: BTreeSet::new(),
            ckpt_deferred: None,
            compact_floor: None,
            delta_chunks: HashMap::new(),
            recovered_ckpt: None,
        };
        if let Some(recovery) = recovery {
            replica.recover_local(recovery);
        }
        replica
    }

    /// Replays locally recovered state (checkpoint snapshot plus the
    /// write-ahead-log suffix past it) into this fresh replica. The
    /// shared history survives a restart in-process, so nothing is
    /// re-recorded — a replayed apply would break the per-client apply
    /// order the checkers verify.
    fn recover_local(&mut self, recovery: Recovery) {
        if let Some(ckpt) = &recovery.checkpoint {
            if self.semantics.restore(&ckpt.state).is_err() {
                return;
            }
            self.page_last_writer = ckpt.writers.iter().cloned().collect();
            self.applied.merge_max(&ckpt.version);
            self.known_version.merge_max(&ckpt.version);
            if let Some(high) = ckpt.order_high {
                self.next_order = self.next_order.max(high);
            }
            self.recovered_ckpt = Some(ckpt.version.clone());
        }
        for write in &recovery.log {
            if self.applied.covers(write.wid) {
                continue;
            }
            let dispatch = match &write.page {
                Some(p) => self
                    .repl
                    .should_dispatch(self.page_last_writer.get(p).copied(), write.wid),
                None => true,
            };
            if dispatch {
                let _ = self.semantics.dispatch(&write.inv);
                if let Some(page) = &write.page {
                    self.page_last_writer.insert(page.clone(), write.wid);
                }
            }
            match self.repl.record_mode() {
                RecordMode::Exact => self.mark_seen(write.wid),
                RecordMode::Advance => self.applied.advance_to(write.wid),
            }
            self.known_version.advance_to(write.wid);
            if let Some(order) = write.order {
                self.next_order = self.next_order.max(order + 1);
            }
        }
    }

    /// This replica's store id.
    pub fn store_id(&self) -> StoreId {
        self.store_id
    }

    /// This replica's store class.
    pub fn class(&self) -> StoreClass {
        self.class
    }

    /// Whether this replica is the home (sequencing) store.
    pub fn is_home(&self) -> bool {
        self.is_home
    }

    /// The replica's applied-write vector.
    pub fn applied(&self) -> &VersionVector {
        &self.applied
    }

    /// The current policy.
    pub fn policy(&self) -> &ReplicationPolicy {
        &self.policy
    }

    /// Name of the active replication protocol.
    pub fn protocol_name(&self) -> &'static str {
        self.repl.name()
    }

    /// Digest of the replica's semantics state.
    pub fn final_digest(&self) -> u64 {
        self.semantics.digest()
    }

    /// Direct read-only access to the semantics object (tests, gateways).
    pub fn semantics(&self) -> &dyn Semantics {
        self.semantics.as_ref()
    }

    /// Marks this replica as born empty and awaiting its first state
    /// transfer. Under jump-ahead models (FIFO, eventual) a fresh
    /// replica can apply a *newer* write before the transfer arrives,
    /// after which its version vector dominates the snapshot's — the
    /// staleness check alone would then reject the very transfer the
    /// replica needs. The flag forces the first install through; the
    /// locally-newer writes the snapshot lacks are re-imposed on top.
    pub(crate) fn mark_needs_bootstrap(&mut self) {
        self.needs_bootstrap = true;
    }

    /// Registers an additional peer store (dynamic mirror installation).
    pub fn add_peer(&mut self, peer: PeerStore) {
        if !self.peers.iter().any(|p| p.node == peer.node) {
            self.peers.push(peer);
        }
    }

    /// Forgets a peer store (graceful removal): no more propagation or
    /// heartbeats will be sent to it.
    pub fn remove_peer(&mut self, node: NodeId) {
        self.peers.retain(|p| p.node != node);
        self.peer_sent.remove(&node);
    }

    /// The peer stores this replica currently propagates to (the home
    /// store's view of the membership, minus itself).
    pub fn peers(&self) -> &[PeerStore] {
        &self.peers
    }

    /// The election epoch of the sequencer this replica follows.
    pub fn home_epoch(&self) -> u64 {
        self.home_epoch
    }

    /// The node this replica believes is the object's home.
    pub fn home_node(&self) -> NodeId {
        self.home_node
    }

    /// Adds this replica's failure-detection interest to the node-level
    /// detector's monitored set: the home store watches its peer nodes;
    /// a permanent replica watches the home *and* every other permanent
    /// replica (so the election's liveness filter has real verdicts for
    /// the candidates); other replicas watch only the home. One entry
    /// per node — the address space dedupes across objects, which is
    /// exactly the O(objects × peers) → O(peers) consolidation.
    pub fn heartbeat_targets(&self, out: &mut std::collections::BTreeSet<NodeId>) {
        if self.detector.period.is_none() {
            return;
        }
        if self.is_home {
            out.extend(self.peers.iter().map(|p| p.node));
        } else {
            out.insert(self.home_node);
            if self.class == StoreClass::Permanent {
                out.extend(
                    self.peers
                        .iter()
                        .filter(|p| p.class == StoreClass::Permanent)
                        .map(|p| p.node),
                );
            }
        }
    }

    fn record_lifecycle(&self, node: NodeId, kind: LifecycleEventKind, now: globe_net::SimTime) {
        self.metrics.lock().record_lifecycle(LifecycleEvent {
            at: now,
            object: self.object,
            node,
            kind,
        });
    }

    /// Records one flight-recorder event. The `trace_capacity == 0`
    /// early return is the entire hot-path cost while capture is off.
    fn trace_event(&self, ctx: &dyn NetCtx, event: ProtocolEvent) {
        if self.tuning.trace_capacity == 0 {
            return;
        }
        self.metrics.lock().record_trace(TraceEvent {
            at: ctx.now(),
            node: ctx.node(),
            object: self.object,
            store: self.store_id,
            event,
        });
    }

    fn token(&self, kind: TimerKind) -> globe_net::TimerToken {
        crate::space::timer_token(self.object, kind)
    }

    fn wants_lazy_timer(&self) -> bool {
        self.is_home
            && self.policy.initiative == TransferInitiative::Push
            && (self.policy.instant == TransferInstant::Lazy
                || self.policy.object_outdate == OutdateReaction::Demand
                || self.peers.iter().any(|p| !self.policy.in_scope(p.class)))
    }

    /// Arms the timers this replica's policy requires. Idempotent.
    pub fn start(&mut self, ctx: &mut dyn NetCtx) {
        let wants_lazy = self.wants_lazy_timer();
        if wants_lazy && !self.lazy_armed {
            ctx.set_timer(self.policy.lazy_period, self.token(TimerKind::LazyPush));
            self.lazy_armed = true;
        }
        let wants_pull = !self.is_home
            && (self.policy.initiative == TransferInitiative::Pull
                || self.repl.wants_anti_entropy());
        if wants_pull && !self.pull_armed {
            ctx.set_timer(self.policy.lazy_period, self.token(TimerKind::PullPoll));
            self.pull_armed = true;
        }
        // A permanent non-home replica under the lease fast path keeps
        // a renewal loop running: request now, renew at half-period so
        // an unbroken lease never lapses between grants.
        let wants_lease = self.tuning.read_leases
            && !self.is_home
            && self.class == StoreClass::Permanent
            && self.tuning.lease_duration > Duration::ZERO;
        if wants_lease && !self.lease_renew_armed {
            self.request_lease(ctx);
            ctx.set_timer(
                self.tuning.lease_duration / 2,
                self.token(TimerKind::LeaseRenew),
            );
            self.lease_renew_armed = true;
        }
        // Heartbeats are node-level since the detector consolidation:
        // the owning address space arms one heartbeat timer per node,
        // not one per replica.
    }

    fn ensure_retry(&mut self, ctx: &mut dyn NetCtx) {
        if !self.retry_armed {
            ctx.set_timer(RETRY_PERIOD, self.token(TimerKind::DemandRetry));
            self.retry_armed = true;
        }
    }

    fn view(&self) -> ReplicaView<'_> {
        ReplicaView {
            applied: &self.applied,
            extra_seen: &self.extra_seen,
            next_order: self.next_order,
        }
    }

    fn mark_seen(&mut self, wid: WriteId) {
        if self.applied.is_next(wid) {
            self.applied.record(wid);
            // Absorb now-contiguous out-of-band writes of this client.
            loop {
                let next = WriteId::new(wid.client, self.applied.get(wid.client) + 1);
                if self.extra_seen.remove(&next) {
                    self.applied.record(next);
                } else {
                    break;
                }
            }
        } else if !self.applied.covers(wid) {
            self.extra_seen.insert(wid);
        }
    }

    /// Applies a write to local state. Returns the finalized write (page
    /// and order filled in) and the semantics outcome.
    fn apply_now(
        &mut self,
        mut write: LoggedWrite,
        ctx: &mut dyn NetCtx,
    ) -> (LoggedWrite, CallOutcome) {
        if write.page.is_none() {
            write.page = self.semantics.part_of(&write.inv);
        }
        if self.is_home && self.repl.orders_writes() && write.order.is_none() {
            let seq = self.order_assigned;
            write.order = Some(seq);
            self.order_assigned += 1;
            self.trace_event(
                ctx,
                ProtocolEvent::WriteOrdered {
                    write: write.wid,
                    seq,
                    epoch: self.home_epoch,
                },
            );
        }
        let dispatch = match &write.page {
            Some(p) => self
                .repl
                .should_dispatch(self.page_last_writer.get(p).copied(), write.wid),
            None => true,
        };
        let outcome = if dispatch {
            match self.semantics.dispatch(&write.inv) {
                Ok(bytes) => CallOutcome::Ok(bytes),
                Err(e) => CallOutcome::Err(e.to_string()),
            }
        } else {
            // Overridden by a newer write (eventual LWW): processed, not
            // dispatched.
            CallOutcome::Ok(Bytes::new())
        };
        match self.repl.record_mode() {
            RecordMode::Exact => self.mark_seen(write.wid),
            RecordMode::Advance => self.applied.advance_to(write.wid),
        }
        self.known_version.advance_to(write.wid);
        if let Some(order) = write.order {
            self.next_order = self.next_order.max(order + 1);
        }
        if let Some(page) = &write.page {
            if dispatch {
                self.page_last_writer.insert(page.clone(), write.wid);
            }
            self.invalid_pages.remove(page);
        }
        self.log.append(&write);
        self.history.lock().record_apply(
            ctx.now(),
            self.store_id,
            write.wid,
            write.page.clone().unwrap_or_else(|| WHOLE_DOC.to_string()),
        );
        self.trace_event(ctx, ProtocolEvent::WriteApplied { write: write.wid });
        self.applies_since_ckpt += 1;
        self.after_apply_checkpointing(ctx);
        (write, outcome)
    }

    /// Checkpoint bookkeeping after every apply: the home snapshots
    /// every `checkpoint_every` applies and announces the checkpoint; a
    /// peer that deferred an announced checkpoint (it had not caught up
    /// yet) re-checks whether its applied vector now covers it.
    fn after_apply_checkpointing(&mut self, ctx: &mut dyn NetCtx) {
        if self.checkpoint_every == 0 {
            return;
        }
        if self.is_home {
            if self.applies_since_ckpt >= self.checkpoint_every {
                self.take_checkpoint_and_announce(ctx);
            }
        } else if let Some(version) = self.ckpt_deferred.clone() {
            if self.applied.dominates(&version) {
                self.ckpt_deferred = None;
                self.checkpoint_and_ack(version, ctx);
            }
        }
    }

    /// A checkpoint image of the current state at `applied`.
    fn checkpoint_image(&self) -> CheckpointImage {
        CheckpointImage {
            version: self.applied.clone(),
            state: self.semantics.snapshot(),
            writers: self
                .page_last_writer
                .iter()
                .map(|(p, w)| (p.clone(), *w))
                .collect(),
            order_high: self.repl.orders_writes().then_some(self.order_assigned),
        }
    }

    /// Home: persist a checkpoint now, announce its version to every
    /// peer, and start collecting acks. The log is compacted only once
    /// every current peer has acked — a straggler blocks compaction,
    /// which is the conservative-safe choice: the suffix it still needs
    /// is never dropped under it.
    fn take_checkpoint_and_announce(&mut self, ctx: &mut dyn NetCtx) {
        self.applies_since_ckpt = 0;
        let image = self.checkpoint_image();
        let version = image.version.clone();
        self.log.checkpoint(&image);
        self.trace_event(
            ctx,
            ProtocolEvent::CheckpointTaken {
                log_len: self.log.len(),
            },
        );
        self.ckpt_pending = Some(version.clone());
        self.ckpt_acks.clear();
        if self.peers.is_empty() {
            self.finish_checkpoint(ctx);
            return;
        }
        let peers: Vec<NodeId> = self.peers.iter().map(|p| p.node).collect();
        self.comm
            .multicast(ctx, peers, &CoherenceMsg::CheckpointAnnounce { version });
    }

    /// Every current peer acked the pending checkpoint: compact the log
    /// below it, record the floor, and tell the peers to do the same.
    fn finish_checkpoint(&mut self, ctx: &mut dyn NetCtx) {
        let Some(version) = self.ckpt_pending.take() else {
            return;
        };
        self.ckpt_acks.clear();
        let truncated = self.log.truncate_covered(&version);
        if truncated > 0 {
            self.metrics.lock().protocol.log_truncated += truncated as u64;
            self.trace_event(ctx, ProtocolEvent::LogCompacted { truncated });
        }
        self.compact_floor = Some(version.clone());
        let peers: Vec<NodeId> = self.peers.iter().map(|p| p.node).collect();
        if !peers.is_empty() {
            self.comm
                .multicast(ctx, peers, &CoherenceMsg::CompactBelow { version });
        }
    }

    /// Home side of a checkpoint ack. Acks for a superseded checkpoint
    /// (version mismatch) are dropped; compaction fires once every
    /// current peer has acked the pending one.
    pub fn handle_checkpoint_ack(
        &mut self,
        node: NodeId,
        version: VersionVector,
        ctx: &mut dyn NetCtx,
    ) {
        if !self.is_home || self.ckpt_pending.as_ref() != Some(&version) {
            return;
        }
        self.ckpt_acks.insert(node);
        let outstanding = self
            .peers
            .iter()
            .filter(|p| !self.ckpt_acks.contains(&p.node))
            .count();
        self.trace_event(
            ctx,
            ProtocolEvent::CheckpointAcked {
                from: node,
                outstanding,
            },
        );
        if outstanding == 0 {
            self.finish_checkpoint(ctx);
        }
    }

    /// Peer side of a checkpoint announcement from the home: snapshot
    /// locally once caught up to the announced version and ack it. A
    /// replica still behind defers — the slot is re-checked after every
    /// apply — and demands the missing writes when the policy allows.
    pub fn handle_checkpoint_announce(
        &mut self,
        from: NodeId,
        version: VersionVector,
        ctx: &mut dyn NetCtx,
    ) {
        if self.is_home || from != self.home_node {
            return;
        }
        if self.applied.dominates(&version) {
            self.checkpoint_and_ack(version, ctx);
        } else {
            self.ckpt_deferred = Some(version);
            if self.policy.object_outdate == OutdateReaction::Demand {
                self.demand_update(ctx);
                self.ensure_retry(ctx);
            }
        }
    }

    /// Persists a local checkpoint (at this replica's own vector, which
    /// covers the announced one) and acks the announced version.
    fn checkpoint_and_ack(&mut self, version: VersionVector, ctx: &mut dyn NetCtx) {
        let image = self.checkpoint_image();
        self.log.checkpoint(&image);
        self.trace_event(
            ctx,
            ProtocolEvent::CheckpointTaken {
                log_len: self.log.len(),
            },
        );
        let node = ctx.node();
        self.comm.send(
            ctx,
            self.home_node,
            &CoherenceMsg::CheckpointAck { node, version },
        );
    }

    /// Peer side of a compaction notice: every current peer (this one
    /// included) acked the checkpoint, so the covered prefix can go.
    pub fn handle_compact_below(
        &mut self,
        from: NodeId,
        version: VersionVector,
        ctx: &mut dyn NetCtx,
    ) {
        if self.is_home || from != self.home_node {
            return;
        }
        let truncated = self.log.truncate_covered(&version);
        if truncated > 0 {
            self.metrics.lock().protocol.log_truncated += truncated as u64;
            self.trace_event(ctx, ProtocolEvent::LogCompacted { truncated });
        }
        self.compact_floor = Some(version);
    }

    /// Retained (not yet compacted) entries in the coherence log — the
    /// bounded-growth observable the compaction tests assert on.
    pub fn log_retained(&self) -> usize {
        self.log.retained().len()
    }

    /// Logical length of the coherence log, compacted entries included.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Whether this replica is a sequencer that group-commits: writes
    /// are staged and flushed together instead of ordered one by one.
    fn batching_active(&self) -> bool {
        self.is_home && self.tuning.batch_max > 1
    }

    /// Accepts a write from a client proxy (`reply_to` set) or a peer
    /// store (`reply_to` empty), per the replication object's verdict.
    /// A group-committing sequencer stages the write instead; the batch
    /// flush runs the same admission logic with propagation coalesced
    /// into one fan-out frame per peer.
    pub fn accept_write(
        &mut self,
        reply_to: Option<(NodeId, RequestId, ClientId)>,
        write: LoggedWrite,
        ctx: &mut dyn NetCtx,
    ) {
        if self.batching_active() {
            if let Some((node, _, client)) = reply_to {
                self.client_nodes.insert(client, node);
            }
            // Duplicates (client retransmissions) are staged too and
            // resolve to `Stale` at flush time, after the original has
            // been applied — an ack never precedes application.
            self.trace_event(ctx, ProtocolEvent::WriteStaged { write: write.wid });
            self.pending_batch.push(BufferedWrite { write, reply_to });
            if self.pending_batch.len() >= self.tuning.batch_max {
                self.flush_batch(FlushReason::Max, ctx);
            } else if !self.batch_armed {
                ctx.set_timer(self.tuning.batch_window, self.token(TimerKind::BatchFlush));
                self.batch_armed = true;
            }
            return;
        }
        self.admit_write(reply_to, write, true, ctx);
    }

    /// The per-write admission path: readiness verdict, application,
    /// acknowledgement. `propagate_now` is false during a batch flush,
    /// which coalesces propagation afterwards.
    fn admit_write(
        &mut self,
        reply_to: Option<(NodeId, RequestId, ClientId)>,
        write: LoggedWrite,
        propagate_now: bool,
        ctx: &mut dyn NetCtx,
    ) {
        if let Some((node, _, client)) = reply_to {
            self.client_nodes.insert(client, node);
        }
        match self.repl.readiness(&self.view(), &write) {
            Readiness::Stale => {
                // Duplicate or superseded: acknowledge idempotently.
                if let Some((node, req, _)) = reply_to {
                    self.send_reply(ctx, node, req, CallOutcome::Ok(Bytes::new()), None);
                    self.trace_event(ctx, ProtocolEvent::WriteAcked { write: write.wid });
                }
            }
            Readiness::Buffer => {
                let gap_wid = write.wid;
                if !self
                    .buffered
                    .iter()
                    .any(|b| b.write.wid == write.wid && b.write.order == write.order)
                {
                    self.buffered.push(BufferedWrite { write, reply_to });
                }
                self.react_to_gap(gap_wid, ctx);
            }
            Readiness::Ready => {
                let from_client = reply_to.is_some();
                let (finalized, outcome) = self.apply_now(write, ctx);
                if propagate_now {
                    self.propagate(&finalized, from_client, ctx);
                }
                if let Some((node, req, _)) = reply_to {
                    self.send_reply(ctx, node, req, outcome, None);
                    self.trace_event(
                        ctx,
                        ProtocolEvent::WriteAcked {
                            write: finalized.wid,
                        },
                    );
                }
                self.drain_buffered(ctx);
                self.drain_queued_reads(ctx);
            }
        }
    }

    /// Flushes the staged batch: one admission pass over the staged
    /// writes (one ordering decision each, assigned contiguously since
    /// nothing interleaves within the flush), then one coalesced
    /// fan-out frame per in-scope peer covering the whole run.
    fn flush_batch(&mut self, reason: FlushReason, ctx: &mut dyn NetCtx) {
        if self.pending_batch.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.pending_batch);
        let size = staged.len();
        self.metrics.lock().protocol.record_flush(reason, size);
        self.trace_event(ctx, ProtocolEvent::BatchFlushed { reason, size });
        for entry in staged {
            self.admit_write(entry.reply_to, entry.write, false, ctx);
        }
        self.propagate_flushed(ctx);
    }

    /// Coalesced propagation after a batch flush: each in-scope peer
    /// gets everything it has not been sent, as a single
    /// [`CoherenceMsg::WriteBatch`] when the run is an ordered multi-write
    /// sequence under partial update propagation, or the policy's usual
    /// transfer message otherwise.
    fn propagate_flushed(&mut self, ctx: &mut dyn NetCtx) {
        if !self.is_home
            || self.policy.instant != TransferInstant::Immediate
            || self.policy.initiative != TransferInitiative::Push
        {
            return;
        }
        let peers: Vec<PeerStore> = self
            .peers
            .iter()
            .copied()
            .filter(|p| self.policy.in_scope(p.class))
            .collect();
        let log_len = self.log.len();
        let mut sent_to = 0usize;
        for peer in peers {
            let sent = self.peer_sent.get(&peer.node).copied().unwrap_or(0);
            if sent >= log_len {
                continue;
            }
            let pending = self.log.suffix_from(sent);
            let batched_run = pending.len() > 1
                && self.policy.propagation == Propagation::Update
                && self.policy.coherence_transfer == CoherenceTransfer::Partial
                && pending.iter().all(|w| w.order.is_some());
            let msg = if batched_run {
                CoherenceMsg::WriteBatch {
                    first_order: pending[0].order.unwrap_or(0),
                    writes: pending.to_vec(),
                    version: self.applied.clone(),
                }
            } else {
                self.transfer_msg(pending)
            };
            self.comm.send(ctx, peer.node, &msg);
            self.peer_sent.insert(peer.node, log_len);
            sent_to += 1;
        }
        if sent_to > 0 {
            self.trace_event(ctx, ProtocolEvent::FanoutSent { peers: sent_to });
        }
    }

    /// Receiver side of a group commit: the batch is applied atomically
    /// within this single handler invocation, in sequencer order —
    /// no read can observe a prefix of the batch across invocations.
    pub fn handle_write_batch(
        &mut self,
        first_order: u64,
        writes: Vec<LoggedWrite>,
        version: VersionVector,
        ctx: &mut dyn NetCtx,
    ) {
        // The frame promises a contiguous run; writes past a hole in the
        // numbering still land correctly (readiness buffers them), so
        // the promise is advisory, not trusted.
        let _ = first_order;
        for write in writes {
            self.accept_write(None, write, ctx);
        }
        self.known_version.merge_max(&version);
        self.maybe_demand_on_known(ctx);
    }

    /// The paper's outdate reaction: wait passively, or demand the
    /// missing information (from the home store, or — for a home store
    /// missing client writes — from the client's proxy, the §4.2
    /// reliability mechanism).
    fn react_to_gap(&mut self, wid: WriteId, ctx: &mut dyn NetCtx) {
        if self.policy.object_outdate != OutdateReaction::Demand {
            return;
        }
        if self.is_home {
            if let Some(&node) = self.client_nodes.get(&wid.client) {
                let from_seq = self.applied.get(wid.client) + 1;
                self.comm.send(
                    ctx,
                    node,
                    &CoherenceMsg::DemandResend {
                        client: wid.client,
                        from_seq,
                    },
                );
            }
        } else {
            self.demand_update(ctx);
        }
        self.ensure_retry(ctx);
    }

    /// Announces this replica to the home store and requests a full
    /// state transfer. Called once when a store is installed or
    /// restarted at run time: the home adds it as a peer and replies
    /// with a [`CoherenceMsg::StateTransfer`] carrying the current
    /// state, version vector, and coherence write log.
    pub fn join(&mut self, ctx: &mut dyn NetCtx) {
        self.emit_recovered_checkpoint(ctx);
        if !self.is_home {
            let node = ctx.node();
            self.comm.send(
                ctx,
                self.home_node,
                &CoherenceMsg::JoinRequest {
                    node,
                    store: self.store_id,
                    class: self.class,
                    version: self.applied.clone(),
                },
            );
        }
    }

    /// Emits the deferred `CheckpointInstalled` event for a replica
    /// that restarted from a local checkpoint + WAL. Construction has
    /// no net context, so the first call that does one (the direct
    /// `join`, or the transfer reply on runtimes that relay the join
    /// through the control endpoint) reports it.
    fn emit_recovered_checkpoint(&mut self, ctx: &mut dyn NetCtx) {
        if let Some(version) = self.recovered_ckpt.take() {
            self.trace_event(ctx, ProtocolEvent::CheckpointInstalled { version });
        }
    }

    /// The object's full replica membership as this store sees it:
    /// itself plus every peer, as wire members. `me` is this store's
    /// node (stores do not know their own placement; the caller's
    /// context does).
    fn membership(&self, me: NodeId) -> Vec<crate::WireMember> {
        std::iter::once((me, self.store_id, self.class))
            .chain(self.peers.iter().map(|p| (p.node, p.store, p.class)))
            .collect()
    }

    /// Replaces this replica's peer list with `membership` minus itself
    /// (the form every state transfer and takeover announcement
    /// carries), and refreshes the home store id from it when present.
    fn adopt_membership(&mut self, membership: &[crate::WireMember], me: NodeId) {
        if membership.is_empty() {
            return;
        }
        self.peers = membership
            .iter()
            .filter(|(node, _, _)| *node != me)
            .map(|&(node, store, class)| PeerStore { node, store, class })
            .collect();
        if let Some(&(_, store, _)) = membership
            .iter()
            .find(|(node, _, _)| *node == self.home_node)
        {
            self.home_store = store;
        }
    }

    /// Home-store side of a join: register the peer and ship it the full
    /// state (snapshot + version vector + write log + membership).
    ///
    /// A join can land on a non-home replica when the joiner's record of
    /// the sequencer is stale (an election completed between planning the
    /// install and the frame arriving). Joins are one-shot — the joiner
    /// does not retry — so dropping the frame would strand it without a
    /// state transfer. Forward it to the sequencer this replica follows
    /// instead; the frame keeps hopping until it reaches the current home.
    pub fn handle_join(
        &mut self,
        node: NodeId,
        store: StoreId,
        class: StoreClass,
        version: VersionVector,
        ctx: &mut dyn NetCtx,
    ) {
        if !self.is_home {
            if self.home_node != ctx.node() && self.home_node != node {
                self.comm.send(
                    ctx,
                    self.home_node,
                    &CoherenceMsg::JoinRequest {
                        node,
                        store,
                        class,
                        version,
                    },
                );
            }
            return;
        }
        self.add_peer(PeerStore { node, store, class });
        // A joiner that recovered state locally (durable restart) names
        // its applied vector; ship only the missing log suffix — unless
        // compaction already dropped part of what it would need, in
        // which case only a full transfer is complete.
        let behind_floor = self
            .compact_floor
            .as_ref()
            .is_some_and(|floor| !version.dominates(floor));
        if !version.is_empty() && !behind_floor {
            self.send_delta(node, &version, ctx);
        } else {
            let log = self.log.retained().to_vec();
            let entries = log.len();
            let msg = CoherenceMsg::StateTransfer {
                version: self.applied.clone(),
                state: self.semantics.snapshot(),
                writers: self
                    .page_last_writer
                    .iter()
                    .map(|(p, w)| (p.clone(), *w))
                    .collect(),
                order_high: self.repl.orders_writes().then_some(self.order_assigned),
                log,
                peers: self.membership(ctx.node()),
            };
            self.comm.send(ctx, node, &msg);
            self.trace_event(ctx, ProtocolEvent::StateTransferSent { to: node, entries });
            // The transfer covers the entire log; immediate propagation
            // must not replay it.
            self.peer_sent.insert(node, self.log.len());
        }
        self.record_lifecycle(node, LifecycleEventKind::Joined, ctx.now());
        self.broadcast_membership(Some(node), ctx);
    }

    /// Ships an incremental state transfer: only the retained log
    /// entries the joiner's vector does not cover, chunked so one giant
    /// frame never stalls the link. At least one (possibly empty) chunk
    /// is sent, so the joiner always receives the membership and the
    /// sequencer height even when it is fully caught up.
    fn send_delta(&mut self, node: NodeId, since: &VersionVector, ctx: &mut dyn NetCtx) {
        const DELTA_CHUNK: usize = 64;
        let missing: Vec<LoggedWrite> = self
            .log
            .retained()
            .iter()
            .filter(|w| !since.covers(w.wid))
            .cloned()
            .collect();
        let entries = missing.len();
        let version = self.applied.clone();
        let order_high = self.repl.orders_writes().then_some(self.order_assigned);
        let peers = self.membership(ctx.node());
        let mut runs: Vec<Vec<LoggedWrite>> = missing
            .chunks(DELTA_CHUNK)
            .map(|chunk| chunk.to_vec())
            .collect();
        if runs.is_empty() {
            runs.push(Vec::new());
        }
        let chunks = runs.len() as u64;
        for (index, writes) in runs.into_iter().enumerate() {
            let msg = CoherenceMsg::StateDelta {
                chunk: index as u64,
                chunks,
                writes,
                version: version.clone(),
                order_high,
                peers: peers.clone(),
            };
            self.comm.send(ctx, node, &msg);
        }
        self.trace_event(
            ctx,
            ProtocolEvent::DeltaTransferSent {
                to: node,
                entries,
                chunks: chunks as usize,
            },
        );
        // The delta brings the joiner to the current log head; immediate
        // propagation resumes past it.
        self.peer_sent.insert(node, self.log.len());
    }

    /// Joiner side of an incremental state transfer. Chunks may arrive
    /// in any order; the delta is applied once the whole set has been
    /// buffered, then the replica's timers are (re)armed exactly as
    /// after a full transfer.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_state_delta(
        &mut self,
        chunk: u64,
        chunks: u64,
        writes: Vec<LoggedWrite>,
        version: VersionVector,
        order_high: Option<u64>,
        peers: Vec<crate::WireMember>,
        ctx: &mut dyn NetCtx,
    ) {
        if self.is_home {
            return;
        }
        self.emit_recovered_checkpoint(ctx);
        self.delta_chunks.insert(chunk, writes);
        if (self.delta_chunks.len() as u64) < chunks {
            return;
        }
        let mut buffered: Vec<(u64, Vec<LoggedWrite>)> = self.delta_chunks.drain().collect();
        buffered.sort_by_key(|(index, _)| *index);
        let missing: Vec<LoggedWrite> = buffered.into_iter().flat_map(|(_, run)| run).collect();
        let entries = missing.len();
        self.adopt_membership(&peers, ctx.node());
        self.needs_bootstrap = false;
        for write in missing {
            self.accept_write(None, write, ctx);
        }
        if let Some(high) = order_high {
            self.next_order = self.next_order.max(high);
        }
        self.known_version.merge_max(&version);
        self.trace_event(ctx, ProtocolEvent::DeltaTransferInstalled { entries });
        self.drain_buffered(ctx);
        self.drain_queued_reads(ctx);
        self.start(ctx);
    }

    /// Tells every peer (minus `except`, who just got the same list in
    /// a full transfer) the object's current membership, so the copies
    /// a future unattended election runs over stay current across
    /// joins and leaves.
    fn broadcast_membership(&mut self, except: Option<NodeId>, ctx: &mut dyn NetCtx) {
        let msg = CoherenceMsg::Membership {
            peers: self.membership(ctx.node()),
        };
        let others: Vec<NodeId> = self
            .peers
            .iter()
            .map(|p| p.node)
            .filter(|n| Some(*n) != except)
            .collect();
        self.comm.multicast(ctx, others, &msg);
    }

    /// Replica side of a [`CoherenceMsg::Membership`] refresh. Only the
    /// current home curates the membership, so anything else — a stale
    /// ex-home, a mis-routed frame — is ignored.
    pub fn handle_membership(
        &mut self,
        from: NodeId,
        peers: Vec<crate::WireMember>,
        ctx: &mut dyn NetCtx,
    ) {
        if self.is_home || from != self.home_node {
            return;
        }
        self.adopt_membership(&peers, ctx.node());
    }

    /// Home-store side of a graceful removal: stop propagating and
    /// heartbeating to the departed replica.
    pub fn handle_leave(&mut self, node: NodeId, ctx: &mut dyn NetCtx) {
        if !self.is_home {
            return;
        }
        self.granted_leases.remove(&node);
        self.remove_peer(node);
        self.record_lifecycle(node, LifecycleEventKind::Left, ctx.now());
        self.broadcast_membership(None, ctx);
    }

    /// Installs a lifecycle state transfer: the semantics snapshot, the
    /// version vector, the per-page writers, and the coherence write
    /// log. After this, reads served here are indistinguishable from
    /// reads served before the failure, and the replica's policy timers
    /// are (re)armed.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_state_transfer(
        &mut self,
        version: VersionVector,
        state: Bytes,
        writers: Vec<(PageKey, WriteId)>,
        order_high: Option<u64>,
        log: Vec<LoggedWrite>,
        peers: Vec<crate::WireMember>,
        ctx: &mut dyn NetCtx,
    ) {
        if self.is_home {
            return;
        }
        self.emit_recovered_checkpoint(ctx);
        self.adopt_membership(&peers, ctx.node());
        if self.install_snapshot(version, state, writers, order_high, Some(log), ctx) {
            self.trace_event(ctx, ProtocolEvent::StateTransferInstalled);
        }
        self.drain_buffered(ctx);
        self.drain_queued_reads(ctx);
        self.start(ctx);
    }

    /// Builds the hand-off/takeover message for a sequencer move: the
    /// authoritative coherence write log, version vector, semantics
    /// snapshot, per-page writers, sequencer height, the election
    /// epoch, and the object's full membership. Pure state capture —
    /// the caller decides how the message travels (directly from the
    /// old home's context, or relayed through a control endpoint).
    pub fn sequencer_handoff_msg(
        &self,
        old_home: NodeId,
        new_home: NodeId,
        new_home_store: StoreId,
        epoch: u64,
        peers: Vec<crate::WireMember>,
    ) -> CoherenceMsg {
        CoherenceMsg::SequencerHandoff {
            old_home,
            new_home,
            new_home_store,
            epoch,
            version: self.applied.clone(),
            state: self.semantics.snapshot(),
            writers: self
                .page_last_writer
                .iter()
                .map(|(p, w)| (p.clone(), *w))
                .collect(),
            order_high: self.repl.orders_writes().then_some(self.order_assigned),
            log: self.log.retained().to_vec(),
            peers,
        }
    }

    /// Takes over as the object's home (sequencing) store at election
    /// `epoch`: adopt the membership, continue the sequencer's total
    /// order where it stopped, announce the takeover to every peer and
    /// every known client node with a full-state
    /// [`CoherenceMsg::SequencerHandoff`] (so stores converge on this
    /// replica's log and sessions reroute their writes), and arm the
    /// home-side timers. Idempotent per epoch.
    pub fn promote_to_home(
        &mut self,
        membership: Vec<crate::WireMember>,
        epoch: u64,
        ctx: &mut dyn NetCtx,
    ) {
        let me = ctx.node();
        if self.is_home && self.home_node == me && epoch <= self.home_epoch {
            return;
        }
        let old_home = self.home_node;
        self.prev_home = old_home;
        self.is_home = true;
        // A sequencer holds no lease; readers it leases come to it.
        if self.lease.take().is_some() {
            self.trace_event(
                ctx,
                ProtocolEvent::LeaseRevoked {
                    epoch: self.home_epoch,
                },
            );
        }
        self.home_node = me;
        self.home_store = self.store_id;
        self.home_epoch = self.home_epoch.max(epoch);
        // A sequencer acks no one's checkpoints; it announces its own.
        self.ckpt_deferred = None;
        self.adopt_membership(&membership, me);
        // The old sequencer's height survives in `next_order` (every
        // replica tracks it); continue the total order there.
        self.order_assigned = self.order_assigned.max(self.next_order);
        let announce = self.sequencer_handoff_msg(
            old_home,
            me,
            self.store_id,
            self.home_epoch,
            self.membership(me),
        );
        let peer_nodes: Vec<NodeId> = self.peers.iter().map(|p| p.node).collect();
        let now = ctx.now();
        for &node in &peer_nodes {
            // The announcement carries the full log; propagation resumes
            // from there.
            self.peer_sent.insert(node, self.log.len());
        }
        // Sessions reroute on the same announcement: every client node
        // this replica has served knows the sequencer moved, so pending
        // retransmissions and future writes target a live home.
        let mut targets: BTreeSet<NodeId> = peer_nodes.into_iter().collect();
        targets.extend(self.client_nodes.values().copied());
        targets.remove(&me);
        self.comm.multicast(ctx, targets, &announce);
        self.record_lifecycle(me, LifecycleEventKind::Elected, now);
        self.trace_event(
            ctx,
            ProtocolEvent::TakeoverAnnounced {
                epoch: self.home_epoch,
            },
        );
        self.start(ctx);
        self.drain_buffered(ctx);
        self.drain_queued_reads(ctx);
    }

    /// Control-plane side of a crash fail-over: this replica was elected
    /// (lowest-id surviving permanent store) and must promote itself
    /// from its own copy of the write log. Elections carrying a stale
    /// epoch — a driver decision that lost a race against an unattended
    /// election — are ignored.
    pub fn handle_elect(
        &mut self,
        peers: Vec<crate::WireMember>,
        epoch: u64,
        ctx: &mut dyn NetCtx,
    ) {
        if epoch < self.home_epoch || (epoch == self.home_epoch && self.home_epoch > 0) {
            return;
        }
        self.promote_to_home(peers, epoch.max(self.home_epoch + 1), ctx);
    }

    /// Whether a takeover claiming `epoch` by the store `new_home_store`
    /// on `new_home` supersedes the sequencer this replica currently
    /// follows. Newer epochs always win; a conflicting claim at the
    /// *same* epoch (two survivors with divergent detector views both
    /// promoted) resolves deterministically to the lowest store id, so
    /// every replica converges on one sequencer per epoch.
    fn accepts_handoff(&self, new_home: NodeId, new_home_store: StoreId, epoch: u64) -> bool {
        if epoch != self.home_epoch {
            return epoch > self.home_epoch;
        }
        new_home == self.home_node || new_home_store < self.home_store
    }

    /// Whether this replica's applied vector strictly dominates
    /// `version`: it has applied everything the sender has, plus more.
    fn strictly_ahead_of(&self, version: &VersionVector) -> bool {
        self.applied.dominates(version) && self.applied != *version
    }

    /// Handles a [`CoherenceMsg::SequencerHandoff`]. Two legs share it:
    /// the elected successor receives the retiring home's authoritative
    /// state and takes over; every other replica receives the takeover
    /// announcement, reroutes to the new home, and converges on its log
    /// (a prefix-consistent install, exactly like a lifecycle state
    /// transfer). Stale announcements — an older epoch, or a same-epoch
    /// claim by a higher store id — are rejected: that is the flap
    /// guard that keeps one accepting sequencer per epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_sequencer_handoff(
        &mut self,
        old_home: NodeId,
        new_home: NodeId,
        new_home_store: StoreId,
        epoch: u64,
        version: VersionVector,
        state: Bytes,
        writers: Vec<(PageKey, WriteId)>,
        order_high: Option<u64>,
        log: Vec<LoggedWrite>,
        peers: Vec<crate::WireMember>,
        ctx: &mut dyn NetCtx,
    ) {
        let me = ctx.node();
        if !self.accepts_handoff(new_home, new_home_store, epoch) {
            return;
        }
        if self.is_home && me != new_home && self.strictly_ahead_of(&version) {
            // Arbitration on heal: the claimant elected itself while
            // *it* was the partitioned minority — this incumbent's log
            // strictly dominates the claimant's, so accepting the
            // takeover would roll acknowledged writes out of the
            // authoritative log. Counter-claim at a higher epoch
            // instead; the usurper demotes and converges on this log.
            let membership = self.membership(me);
            self.promote_to_home(membership, epoch + 1, ctx);
            return;
        }
        if me == new_home {
            // `home_node` still names the retiring home here; promotion
            // reads it as the takeover's old_home, so the announcement
            // tells sessions which node their writes must leave.
            self.install_snapshot(version, state, writers, order_high, Some(log), ctx);
            self.promote_to_home(peers, epoch, ctx);
            return;
        }
        if self.is_home {
            // Defensive demotion: an ex-home hearing a newer takeover
            // steps down rather than split-brain the object — and
            // relays the announcement to every client node it served,
            // the only party that knows where those sessions live.
            // Staged-but-unflushed batch writes were never acknowledged;
            // dropping them here is safe because the owning sessions
            // retransmit them to the successor.
            self.pending_batch.clear();
            self.granted_leases.clear();
            self.is_home = false;
            self.peer_sent.clear();
            // A demoted home abandons its in-flight checkpoint round.
            self.ckpt_pending = None;
            self.ckpt_acks.clear();
            let relay = CoherenceMsg::SequencerHandoff {
                old_home,
                new_home,
                new_home_store,
                epoch,
                version: version.clone(),
                state: state.clone(),
                writers: writers.clone(),
                order_high,
                log: log.clone(),
                peers: peers.clone(),
            };
            let mut targets: BTreeSet<NodeId> = self.client_nodes.values().copied().collect();
            targets.remove(&me);
            targets.remove(&new_home);
            self.comm.multicast(ctx, targets, &relay);
        }
        self.home_node = new_home;
        self.home_store = new_home_store;
        self.prev_home = old_home;
        self.home_epoch = epoch;
        // The sequencer moved: any lease the old one granted is void.
        if self.lease.take().is_some() {
            self.trace_event(ctx, ProtocolEvent::LeaseRevoked { epoch });
        }
        self.adopt_membership(&peers, me);
        self.install_snapshot(version, state, writers, order_high, Some(log), ctx);
        self.drain_buffered(ctx);
        self.drain_queued_reads(ctx);
        self.start(ctx);
    }

    /// Fan-in from the node-level failure detector: `node` crossed the
    /// suspicion threshold. Recorded per object, so a workload can
    /// audit which memberships the silence touched.
    pub fn on_node_suspect(&mut self, node: NodeId, ctx: &mut dyn NetCtx) {
        if node == self.home_node && !self.is_home {
            // A suspect sequencer may already have been replaced; the
            // lease it granted must not authorize local reads anymore.
            if self.lease.take().is_some() {
                self.trace_event(
                    ctx,
                    ProtocolEvent::LeaseRevoked {
                        epoch: self.home_epoch,
                    },
                );
            }
        }
        if node == self.home_node || self.peers.iter().any(|p| p.node == node) {
            self.record_lifecycle(node, LifecycleEventKind::Suspected, ctx.now());
            self.trace_event(ctx, ProtocolEvent::SuspicionRaised { peer: node });
        }
    }

    /// Fan-in from the node-level failure detector: a suspect `node`
    /// proved it is alive again. A home store that was *elected*
    /// (epoch above 0) additionally re-announces its takeover to the
    /// recovered node: a deposed ex-home rejoining after a partition
    /// learns it was superseded and converges on the new sequencer's
    /// log.
    pub fn on_node_recovered(&mut self, node: NodeId, ctx: &mut dyn NetCtx) {
        let relevant = node == self.home_node || self.peers.iter().any(|p| p.node == node);
        if !relevant {
            return;
        }
        self.record_lifecycle(node, LifecycleEventKind::Recovered, ctx.now());
        if self.is_home && self.home_epoch > 0 && self.peers.iter().any(|p| p.node == node) {
            let me = ctx.node();
            let announce = self.sequencer_handoff_msg(
                self.prev_home,
                me,
                self.store_id,
                self.home_epoch,
                self.membership(me),
            );
            // The announcement carries the full log; propagation to the
            // recovered peer resumes from there.
            self.peer_sent.insert(node, self.log.len());
            self.comm.send(ctx, node, &announce);
        }
    }

    /// Fan-in from the node-level failure detector: `node` stayed
    /// suspect past the confirmation threshold. With unattended
    /// fail-over enabled, a surviving permanent replica whose *home*
    /// died runs the PR 4 election from its own copy of the membership
    /// — no driver call — and self-promotes if it is the winner
    /// (lowest store id among the candidates its detector believes
    /// alive). Everyone else waits for the winner's announcement.
    pub fn on_node_down(
        &mut self,
        node: NodeId,
        alive: &dyn Fn(NodeId) -> bool,
        ctx: &mut dyn NetCtx,
    ) {
        if !self.detector.auto_failover
            || self.is_home
            || node != self.home_node
            || self.class != StoreClass::Permanent
        {
            return;
        }
        let me = ctx.node();
        let better_candidate = self
            .peers
            .iter()
            .filter(|p| p.node != node && p.node != me && p.class == StoreClass::Permanent)
            .filter(|p| alive(p.node))
            .any(|p| p.store < self.store_id);
        if better_candidate {
            return;
        }
        // The failed home stays in the membership: it rejoins as an
        // ordinary permanent replica when it comes back (the recovery
        // fan-in above re-announces the takeover to it).
        self.trace_event(
            ctx,
            ProtocolEvent::ElectionStarted {
                epoch: self.home_epoch + 1,
            },
        );
        let membership = self.membership(me);
        self.promote_to_home(membership, self.home_epoch + 1, ctx);
    }

    fn demand_update(&mut self, ctx: &mut dyn NetCtx) {
        let order_since = self.repl.orders_writes().then_some(self.next_order);
        let since = self.applied.clone();
        self.comm.send(
            ctx,
            self.home_node,
            &CoherenceMsg::DemandUpdate { since, order_since },
        );
    }

    fn drain_buffered(&mut self, ctx: &mut dyn NetCtx) {
        loop {
            let mut progressed = false;
            let mut index = 0;
            while index < self.buffered.len() {
                match self
                    .repl
                    .readiness(&self.view(), &self.buffered[index].write)
                {
                    Readiness::Ready => {
                        let entry = self.buffered.remove(index);
                        let from_client = entry.reply_to.is_some();
                        let (finalized, outcome) = self.apply_now(entry.write, ctx);
                        self.propagate(&finalized, from_client, ctx);
                        if let Some((node, req, _)) = entry.reply_to {
                            self.send_reply(ctx, node, req, outcome, None);
                            self.trace_event(
                                ctx,
                                ProtocolEvent::WriteAcked {
                                    write: finalized.wid,
                                },
                            );
                        }
                        progressed = true;
                    }
                    Readiness::Stale => {
                        let entry = self.buffered.remove(index);
                        if let Some((node, req, _)) = entry.reply_to {
                            self.send_reply(ctx, node, req, CallOutcome::Ok(Bytes::new()), None);
                            self.trace_event(
                                ctx,
                                ProtocolEvent::WriteAcked {
                                    write: entry.write.wid,
                                },
                            );
                        }
                        progressed = true;
                    }
                    Readiness::Buffer => index += 1,
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Whether this replica's read lease currently authorizes local
    /// reads: the granting sequencer's epoch must still be current, the
    /// validity window must not have elapsed, and the replica must have
    /// caught up to the grant point.
    fn lease_valid(&self, now: globe_net::SimTime) -> bool {
        self.lease.as_ref().is_some_and(|l| {
            l.epoch == self.home_epoch && now < l.expires && self.applied.dominates(&l.version)
        })
    }

    /// Asks the home for a (fresh or renewed) read lease.
    fn request_lease(&mut self, ctx: &mut dyn NetCtx) {
        let node = ctx.node();
        self.comm.send(
            ctx,
            self.home_node,
            &CoherenceMsg::LeaseRequest {
                node,
                store: self.store_id,
            },
        );
    }

    /// Home side of a lease request: grant an epoch-stamped lease to a
    /// permanent replica. Requests landing anywhere else are dropped —
    /// the requester's renewal timer retries against its current home.
    pub fn handle_lease_request(&mut self, node: NodeId, store: StoreId, ctx: &mut dyn NetCtx) {
        let _ = store;
        if !self.is_home || !self.tuning.read_leases {
            return;
        }
        let permanent_peer = self
            .peers
            .iter()
            .any(|p| p.node == node && p.class == StoreClass::Permanent);
        if !permanent_peer {
            return;
        }
        self.granted_leases
            .insert(node, ctx.now() + self.tuning.lease_duration);
        let grant = CoherenceMsg::LeaseGrant {
            epoch: self.home_epoch,
            version: self.applied.clone(),
            duration: self.tuning.lease_duration,
        };
        self.comm.send(ctx, node, &grant);
    }

    /// Replica side of a lease grant. Only the sequencer this replica
    /// follows can grant; a stale ex-home's grant is ignored.
    pub fn handle_lease_grant(
        &mut self,
        from: NodeId,
        epoch: u64,
        version: VersionVector,
        duration: Duration,
        ctx: &mut dyn NetCtx,
    ) {
        if self.is_home || from != self.home_node || epoch < self.home_epoch {
            return;
        }
        let event = if self.lease.is_some() {
            ProtocolEvent::LeaseRenewed { epoch }
        } else {
            ProtocolEvent::LeaseGranted { epoch }
        };
        self.trace_event(ctx, event);
        self.lease = Some(ReadLease {
            epoch,
            version,
            expires: ctx.now() + duration,
        });
    }

    /// Replica side of a lease revocation.
    pub fn handle_lease_revoke(&mut self, from: NodeId, epoch: u64, ctx: &mut dyn NetCtx) {
        let _ = epoch;
        if from == self.home_node && self.lease.take().is_some() {
            self.trace_event(
                ctx,
                ProtocolEvent::LeaseRevoked {
                    epoch: self.home_epoch,
                },
            );
        }
    }

    /// Home side: revoke every outstanding lease (policy change,
    /// demotion). Grantees fall back to forwarding reads immediately.
    fn revoke_all_leases(&mut self, ctx: &mut dyn NetCtx) {
        if self.granted_leases.is_empty() {
            return;
        }
        let grantees: Vec<NodeId> = self.granted_leases.drain().map(|(n, _)| n).collect();
        let revoke = CoherenceMsg::LeaseRevoke {
            epoch: self.home_epoch,
        };
        self.comm.multicast(ctx, grantees, &revoke);
    }

    /// Serves a read request, enforcing session-guard minimum versions
    /// and invalidation state, with the configured outdate reaction.
    ///
    /// With read leases enabled, a non-home replica serves locally only
    /// under a valid lease; otherwise the read is forwarded to the
    /// sequencer, whose reply is relayed back through this store. A
    /// group-committing sequencer flushes its staged batch first, so a
    /// client always reads its own acknowledged-or-staged writes.
    pub fn serve_read(
        &mut self,
        from: NodeId,
        req: RequestId,
        client: ClientId,
        inv: InvocationMessage,
        min_version: VersionVector,
        ctx: &mut dyn NetCtx,
    ) {
        if self.batching_active() && !self.pending_batch.is_empty() {
            self.flush_batch(FlushReason::Read, ctx);
        }
        if !self.is_home && self.tuning.read_leases && !self.lease_valid(ctx.now()) {
            // Count the miss: a held-but-lapsed lease refuses the read,
            // no lease at all forwards it outright.
            if self.lease.is_some() {
                self.metrics.lock().protocol.lease_refused += 1;
                self.trace_event(
                    ctx,
                    ProtocolEvent::LeaseExpired {
                        epoch: self.home_epoch,
                    },
                );
            } else {
                self.metrics.lock().protocol.lease_forwarded += 1;
            }
            // No valid lease: the sequencer serves the read. The reply
            // comes back through this store's `forwarded` table (or
            // straight to a co-located session).
            self.forwarded.insert(req, from);
            self.comm.send(
                ctx,
                self.home_node,
                &CoherenceMsg::ReadReq {
                    req,
                    client,
                    inv,
                    min_version,
                },
            );
            return;
        }
        if !self.is_home && self.tuning.read_leases {
            // Reaching here means the lease authorized a local read.
            self.metrics.lock().protocol.lease_served += 1;
        }
        self.client_nodes.insert(client, from);
        let page = self.semantics.part_of(&inv);
        let invalid = self.whole_invalid
            || page
                .as_ref()
                .is_some_and(|p| self.invalid_pages.contains(p));
        let behind = !self.applied.dominates(&min_version);
        if invalid || behind {
            // "A store containing an outdated replica may either passively
            // wait until an update arrives, or demand that its copy is
            // immediately updated" (§3.3). Invalidated pages always
            // demand: an invalidation protocol must refetch data to serve.
            let demand = invalid || self.policy.client_outdate == OutdateReaction::Demand;
            self.queued_reads.push(QueuedRead {
                req,
                from,
                client,
                inv,
                min_version,
            });
            if demand {
                if self.is_home {
                    // The home store can only be behind on the client's
                    // own in-flight writes: ask the proxy to resend.
                    self.demand_resend_for_reads(ctx);
                } else {
                    self.demand_update(ctx);
                }
                self.ensure_retry(ctx);
            }
            return;
        }
        self.execute_read(from, req, client, inv, page, ctx);
    }

    fn demand_resend_for_reads(&mut self, ctx: &mut dyn NetCtx) {
        let mut demands: Vec<(ClientId, u64, NodeId)> = Vec::new();
        for read in &self.queued_reads {
            for (client, seq) in read.min_version.iter() {
                if self.applied.get(client) < seq {
                    if let Some(&node) = self.client_nodes.get(&client) {
                        demands.push((client, self.applied.get(client) + 1, node));
                    }
                }
            }
        }
        for (client, from_seq, node) in demands {
            self.comm
                .send(ctx, node, &CoherenceMsg::DemandResend { client, from_seq });
        }
    }

    fn execute_read(
        &mut self,
        from: NodeId,
        req: RequestId,
        client: ClientId,
        inv: InvocationMessage,
        page: Option<PageKey>,
        ctx: &mut dyn NetCtx,
    ) {
        let outcome = match self.semantics.dispatch(&inv) {
            Ok(bytes) => CallOutcome::Ok(bytes),
            Err(e) => CallOutcome::Err(e.to_string()),
        };
        let sees = page
            .as_ref()
            .and_then(|p| self.page_last_writer.get(p).copied());
        self.history.lock().record_read(
            ctx.now(),
            client,
            self.store_id,
            page.unwrap_or_else(|| WHOLE_DOC.to_string()),
            sees,
            self.applied.clone(),
        );
        let source = if self.is_home {
            ReadSource::Home
        } else if self.tuning.read_leases {
            ReadSource::Lease
        } else {
            ReadSource::LocalPolicy
        };
        self.trace_event(ctx, ProtocolEvent::ReadServed { source });
        self.send_reply(ctx, from, req, outcome, sees);
    }

    fn send_reply(
        &mut self,
        ctx: &mut dyn NetCtx,
        to: NodeId,
        req: RequestId,
        outcome: CallOutcome,
        sees: Option<WriteId>,
    ) {
        let full_state = (self.policy.access_transfer == crate::AccessTransfer::Full)
            .then(|| self.semantics.snapshot());
        let reply = CoherenceMsg::Reply {
            req,
            outcome,
            version: self.applied.clone(),
            sees,
            full_state,
        };
        self.comm.send(ctx, to, &reply);
    }

    fn drain_queued_reads(&mut self, ctx: &mut dyn NetCtx) {
        let mut remaining = Vec::new();
        let queued = std::mem::take(&mut self.queued_reads);
        for read in queued {
            let page = self.semantics.part_of(&read.inv);
            let invalid = self.whole_invalid
                || page
                    .as_ref()
                    .is_some_and(|p| self.invalid_pages.contains(p));
            if invalid || !self.applied.dominates(&read.min_version) {
                remaining.push(read);
            } else {
                self.execute_read(read.from, read.req, read.client, read.inv, page, ctx);
            }
        }
        self.queued_reads = remaining;
    }

    /// Propagates freshly applied writes to peers (home store only),
    /// honouring propagation mode, transfer instant, scope, and
    /// granularity. Sends each peer everything it has not been sent yet,
    /// so a policy switched to `immediate` at run time also flushes the
    /// backlog accumulated under the previous policy.
    fn propagate(&mut self, write: &LoggedWrite, from_client: bool, ctx: &mut dyn NetCtx) {
        if !self.is_home {
            // Local write ingress (weak models): relay the finalized
            // write to the home store, which propagates it onward.
            if from_client {
                self.comm.send(
                    ctx,
                    self.home_node,
                    &CoherenceMsg::Update {
                        write: write.clone(),
                    },
                );
            }
            return;
        }
        if self.policy.instant != TransferInstant::Immediate
            || self.policy.initiative != TransferInitiative::Push
        {
            // Lazy or pull: the LazyPush timer / peer demands move data.
            return;
        }
        let peers: Vec<PeerStore> = self
            .peers
            .iter()
            .copied()
            .filter(|p| self.policy.in_scope(p.class))
            .collect();
        let log_len = self.log.len();
        let mut sent_to = 0usize;
        for peer in peers {
            let sent = self.peer_sent.get(&peer.node).copied().unwrap_or(0);
            if sent >= log_len {
                continue;
            }
            let msg = self.transfer_msg(self.log.suffix_from(sent));
            self.comm.send(ctx, peer.node, &msg);
            self.peer_sent.insert(peer.node, log_len);
            sent_to += 1;
        }
        if sent_to > 0 {
            self.trace_event(ctx, ProtocolEvent::FanoutSent { peers: sent_to });
        }
    }

    /// Builds the propagation message for a run of pending writes, per
    /// the policy's propagation mode and coherence transfer type.
    fn transfer_msg(&self, pending: &[LoggedWrite]) -> CoherenceMsg {
        match (self.policy.propagation, self.policy.coherence_transfer) {
            (Propagation::Invalidate, _) => {
                let mut pages: Vec<Option<PageKey>> =
                    pending.iter().map(|w| w.page.clone()).collect();
                pages.dedup();
                CoherenceMsg::Invalidate {
                    pages,
                    version: self.applied.clone(),
                }
            }
            (Propagation::Update, CoherenceTransfer::Partial) => {
                if pending.len() == 1 {
                    CoherenceMsg::Update {
                        write: pending[0].clone(),
                    }
                } else {
                    CoherenceMsg::UpdateBatch {
                        writes: pending.to_vec(),
                        version: self.applied.clone(),
                    }
                }
            }
            (Propagation::Update, CoherenceTransfer::Full) => self.full_state_msg(),
            (Propagation::Update, CoherenceTransfer::Notification) => CoherenceMsg::Notify {
                version: self.applied.clone(),
            },
        }
    }

    fn full_state_msg(&self) -> CoherenceMsg {
        let writers = self
            .page_last_writer
            .iter()
            .map(|(p, w)| (p.clone(), *w))
            .collect();
        CoherenceMsg::FullState {
            version: self.applied.clone(),
            state: self.semantics.snapshot(),
            writers,
            order_high: self.repl.orders_writes().then_some(self.order_assigned),
        }
    }

    /// Periodic lazy propagation: flush everything peers have not seen,
    /// aggregated per the coherence transfer type. Out-of-scope stores are
    /// served here too — "simple propagation of updates to other store
    /// layers" (§3.2.1). Under the demand outdate reaction this timer
    /// additionally heartbeats the current version to peers that are
    /// nominally up to date, so a trailing lost update is detected and
    /// demanded rather than lost forever (the §4.2 reliability story).
    fn lazy_flush(&mut self, ctx: &mut dyn NetCtx) {
        if !self.is_home || self.policy.initiative != TransferInitiative::Push {
            return;
        }
        let log_len = self.log.len();
        let peers: Vec<PeerStore> = self.peers.clone();
        for peer in peers {
            let sent = self.peer_sent.get(&peer.node).copied().unwrap_or(0);
            let in_scope = self.policy.in_scope(peer.class);
            let nothing_new =
                sent >= log_len || (in_scope && self.policy.instant == TransferInstant::Immediate);
            if nothing_new {
                self.peer_sent.insert(peer.node, log_len);
                if self.policy.object_outdate == OutdateReaction::Demand && log_len > 0 {
                    let heartbeat = CoherenceMsg::Notify {
                        version: self.applied.clone(),
                    };
                    self.comm.send(ctx, peer.node, &heartbeat);
                }
                continue;
            }
            let msg = self.transfer_msg(self.log.suffix_from(sent));
            self.comm.send(ctx, peer.node, &msg);
            self.peer_sent.insert(peer.node, log_len);
        }
    }

    /// Answers a pull/demand: ship the writes the requester is missing.
    pub fn handle_demand_update(
        &mut self,
        from: NodeId,
        since: VersionVector,
        order_since: Option<u64>,
        ctx: &mut dyn NetCtx,
    ) {
        if self.batching_active() && !self.pending_batch.is_empty() {
            // A peer is pulling: answer with the staged writes ordered,
            // not a view that excludes them.
            self.flush_batch(FlushReason::Demand, ctx);
        }
        // A requester whose vector predates the compaction floor cannot
        // be served from the retained suffix — part of what it needs was
        // truncated. Only a full-state answer is complete.
        let floor_gap = self
            .compact_floor
            .as_ref()
            .is_some_and(|floor| !since.dominates(floor));
        if self.policy.coherence_transfer == CoherenceTransfer::Full || floor_gap {
            let msg = self.full_state_msg();
            self.comm.send(ctx, from, &msg);
            return;
        }
        let missing: Vec<LoggedWrite> = match order_since {
            Some(order) => self
                .log
                .retained()
                .iter()
                .filter(|w| w.order.is_some_and(|o| o >= order))
                .cloned()
                .collect(),
            None => self
                .log
                .retained()
                .iter()
                .filter(|w| !since.covers(w.wid))
                .cloned()
                .collect(),
        };
        let msg = CoherenceMsg::UpdateBatch {
            writes: missing,
            version: self.applied.clone(),
        };
        self.comm.send(ctx, from, &msg);
    }

    /// Handles an incoming aggregated update.
    pub fn handle_update_batch(
        &mut self,
        writes: Vec<LoggedWrite>,
        version: VersionVector,
        ctx: &mut dyn NetCtx,
    ) {
        for write in writes {
            self.accept_write(None, write, ctx);
        }
        self.known_version.merge_max(&version);
        self.maybe_demand_on_known(ctx);
    }

    /// Handles a full-state transfer.
    pub fn handle_full_state(
        &mut self,
        version: VersionVector,
        state: Bytes,
        writers: Vec<(PageKey, WriteId)>,
        order_high: Option<u64>,
        ctx: &mut dyn NetCtx,
    ) {
        if !self.install_snapshot(version, state, writers, order_high, None, ctx) {
            return;
        }
        self.drain_buffered(ctx);
        self.drain_queued_reads(ctx);
    }

    /// Restores a snapshot (semantics state, per-page writers, version
    /// vector, sequencer height) into this replica. Returns `false` if
    /// the snapshot was stale or failed to restore. When the sender's
    /// coherence log is attached, it *replaces* this replica's log.
    ///
    /// Synthetic apply records keep the shared history truthful across
    /// the install, and the post-install history must read as a
    /// *prefix-consistent continuation*: records this store already has
    /// are never re-recorded (a replay would break the per-client apply
    /// order the checkers verify). When the sender's coherence log is
    /// available (a lifecycle state transfer), every not-yet-recorded
    /// write is recorded in the home store's order, so dependency-based
    /// checkers see each write's antecedents; without it (a policy-level
    /// full transfer), only the changed page winners can be recorded.
    ///
    /// A replica awaiting bootstrap (fresh install or crash-restart) may
    /// have jumped ahead of the snapshot under a weak model — a write
    /// newer than the transfer raced in first. Those locally-applied
    /// writes are re-imposed on the restored state (and appended to the
    /// adopted log) rather than lost; they are *not* re-recorded in the
    /// history, which already has them.
    fn install_snapshot(
        &mut self,
        version: VersionVector,
        state: Bytes,
        writers: Vec<(PageKey, WriteId)>,
        order_high: Option<u64>,
        log: Option<Vec<LoggedWrite>>,
        ctx: &mut dyn NetCtx,
    ) -> bool {
        if !self.needs_bootstrap && self.applied.dominates(&version) && !self.applied.is_empty() {
            return false; // stale snapshot
        }
        // Writes this replica already applied that the snapshot does not
        // cover: their effects must survive the restore.
        let retained: Vec<LoggedWrite> = self
            .log
            .retained()
            .iter()
            .filter(|w| self.applied.covers(w.wid) && !version.covers(w.wid))
            .cloned()
            .collect();
        if self.semantics.restore(&state).is_err() {
            return false;
        }
        {
            let mut history = self.history.lock();
            // The dedup scan over this store's past applies is only
            // needed when the in-memory replica is fresh (a restart or
            // join): a live replica's own `applied`/`page_last_writer`
            // already prevent replays, and scanning the global history
            // on every steady-state full transfer would be quadratic
            // over a long run.
            let already: HashSet<WriteId> = if self.applied.is_empty() {
                history
                    .store_applies(self.store_id)
                    .map(|a| a.wid)
                    .collect()
            } else {
                HashSet::new()
            };
            match &log {
                Some(log) => {
                    // Writes the live replica already applied are known
                    // even without the history scan: skip both.
                    for write in log
                        .iter()
                        .filter(|w| !self.applied.covers(w.wid) && !already.contains(&w.wid))
                    {
                        history.record_apply(
                            ctx.now(),
                            self.store_id,
                            write.wid,
                            write.page.clone().unwrap_or_else(|| WHOLE_DOC.to_string()),
                        );
                    }
                }
                None => {
                    let mut changed: Vec<(PageKey, WriteId)> = writers
                        .iter()
                        .filter(|(p, w)| self.page_last_writer.get(p) != Some(w))
                        .cloned()
                        .collect();
                    changed.sort_by_key(|(_, w)| *w);
                    for (page, wid) in changed.iter().filter(|(_, w)| !already.contains(w)) {
                        history.record_apply(ctx.now(), self.store_id, *wid, page.clone());
                    }
                }
            }
        }
        if let Some(log_entries) = log {
            // The sender's log replaces this one wholesale. Durable
            // backends also persist the snapshot image, so a local
            // recovery reflects the transfer rather than replaying a
            // pre-transfer WAL onto post-transfer state.
            self.log.install(
                &CheckpointImage {
                    version: version.clone(),
                    state: state.clone(),
                    writers: writers.clone(),
                    order_high,
                },
                log_entries,
            );
            // The sender may itself have compacted below its snapshot:
            // when checkpointing is on, adopt the snapshot version as a
            // conservative floor (demands from below it fall back to
            // full state). With checkpointing off no log is ever
            // truncated and no floor exists.
            self.compact_floor = (self.checkpoint_every > 0).then(|| version.clone());
        }
        self.page_last_writer = writers.into_iter().collect();
        self.applied.merge_max(&version);
        self.known_version.merge_max(&version);
        if let Some(high) = order_high {
            self.next_order = self.next_order.max(high);
        }
        // Re-impose the locally-newer writes the snapshot lacked, in
        // their original apply order, respecting the model's per-page
        // arbitration. Already recorded in the history; not re-recorded.
        for write in retained {
            let dispatch = match &write.page {
                Some(p) => self
                    .repl
                    .should_dispatch(self.page_last_writer.get(p).copied(), write.wid),
                None => true,
            };
            if dispatch {
                let _ = self.semantics.dispatch(&write.inv);
                if let Some(page) = &write.page {
                    self.page_last_writer.insert(page.clone(), write.wid);
                }
            }
            if !self.log.retained().iter().any(|w| w.wid == write.wid) {
                self.log.append(&write);
            }
        }
        self.needs_bootstrap = false;
        self.whole_invalid = false;
        self.invalid_pages.clear();
        true
    }

    /// Handles an invalidation.
    pub fn handle_invalidate(
        &mut self,
        pages: Vec<Option<PageKey>>,
        version: VersionVector,
        ctx: &mut dyn NetCtx,
    ) {
        for page in pages {
            match page {
                Some(p) => {
                    // Only mark stale if we have not already applied the
                    // write that invalidated it.
                    self.invalid_pages.insert(p);
                }
                None => self.whole_invalid = true,
            }
        }
        self.known_version.merge_max(&version);
        if self.policy.object_outdate == OutdateReaction::Demand {
            self.demand_update(ctx);
            self.ensure_retry(ctx);
        }
    }

    /// Handles a data-less change notification.
    pub fn handle_notify(&mut self, version: VersionVector, ctx: &mut dyn NetCtx) {
        self.known_version.merge_max(&version);
        self.maybe_demand_on_known(ctx);
    }

    fn maybe_demand_on_known(&mut self, ctx: &mut dyn NetCtx) {
        if self.policy.object_outdate == OutdateReaction::Demand
            && !self.is_home
            && !self.applied.dominates(&self.known_version)
        {
            self.demand_update(ctx);
            self.ensure_retry(ctx);
        }
    }

    /// Handles a write request. The home store accepts directly; a
    /// non-home store either accepts locally and relays (models without
    /// global ordering) or forwards the request to the sequencer.
    pub fn handle_write_req(
        &mut self,
        from: NodeId,
        req: RequestId,
        client: ClientId,
        write: LoggedWrite,
        ctx: &mut dyn NetCtx,
    ) {
        if self.is_home || self.repl.accepts_local_writes() {
            self.accept_write(Some((from, req, client)), write, ctx);
        } else {
            self.forwarded.insert(req, from);
            self.comm.send(
                ctx,
                self.home_node,
                &CoherenceMsg::WriteReq { req, client, write },
            );
        }
    }

    /// Drops the forwarding record for a request whose reply reached a
    /// co-located session directly (the control object consumed it by
    /// `req_owner`), so the table does not accumulate dead entries.
    pub fn forget_forwarded(&mut self, req: RequestId) {
        self.forwarded.remove(&req);
    }

    /// Relays a reply for a write this store forwarded to the home store.
    /// Returns `false` if the request is unknown here.
    pub fn relay_reply(&mut self, msg: &CoherenceMsg, ctx: &mut dyn NetCtx) -> bool {
        if let CoherenceMsg::Reply { req, .. } = msg {
            if let Some(origin) = self.forwarded.remove(req) {
                self.comm.send(ctx, origin, msg);
                return true;
            }
        }
        false
    }

    /// Handles a timer.
    pub fn handle_timer(&mut self, kind: TimerKind, ctx: &mut dyn NetCtx) {
        match kind {
            // Session retries belong to the control object's sessions.
            TimerKind::SessionRetry => {}
            TimerKind::LazyPush => {
                self.lazy_armed = false;
                self.lazy_flush(ctx);
                if self.wants_lazy_timer() {
                    ctx.set_timer(self.policy.lazy_period, self.token(TimerKind::LazyPush));
                    self.lazy_armed = true;
                }
            }
            TimerKind::PullPoll => {
                self.pull_armed = false;
                self.demand_update(ctx);
                let wants = !self.is_home
                    && (self.policy.initiative == TransferInitiative::Pull
                        || self.repl.wants_anti_entropy());
                if wants {
                    ctx.set_timer(self.policy.lazy_period, self.token(TimerKind::PullPoll));
                    self.pull_armed = true;
                }
            }
            // Heartbeats are node-scoped: the address space's node-level
            // detector handles them before any replica sees the timer.
            TimerKind::Heartbeat => {}
            TimerKind::BatchFlush => {
                self.batch_armed = false;
                if self.batching_active() {
                    self.flush_batch(FlushReason::Window, ctx);
                }
            }
            TimerKind::LeaseRenew => {
                self.lease_renew_armed = false;
                let wants = self.tuning.read_leases
                    && !self.is_home
                    && self.class == StoreClass::Permanent
                    && self.tuning.lease_duration > Duration::ZERO;
                if wants {
                    self.request_lease(ctx);
                    ctx.set_timer(
                        self.tuning.lease_duration / 2,
                        self.token(TimerKind::LeaseRenew),
                    );
                    self.lease_renew_armed = true;
                }
            }
            TimerKind::DemandRetry => {
                self.retry_armed = false;
                let gaps = !self.buffered.is_empty()
                    || !self.queued_reads.is_empty()
                    || !self.applied.dominates(&self.known_version);
                if gaps && self.policy.object_outdate == OutdateReaction::Demand
                    || (!self.queued_reads.is_empty()
                        && self.policy.client_outdate == OutdateReaction::Demand)
                {
                    if self.is_home {
                        let wids: Vec<WriteId> =
                            self.buffered.iter().map(|b| b.write.wid).collect();
                        for wid in wids {
                            self.react_to_gap(wid, ctx);
                        }
                        self.demand_resend_for_reads(ctx);
                        self.ensure_retry(ctx);
                    } else {
                        self.demand_update(ctx);
                        self.ensure_retry(ctx);
                    }
                }
            }
        }
    }

    /// Adopts a new replication policy at run time. The home store also
    /// broadcasts the change to every peer (§5: dynamically adaptable
    /// implementation parameters).
    pub fn set_policy(&mut self, policy: ReplicationPolicy, ctx: &mut dyn NetCtx) {
        if self.batching_active() {
            // Order every staged write under the outgoing policy before
            // the switch, and pull leased readers back through the
            // sequencer until they re-lease under the new policy.
            self.flush_batch(FlushReason::Policy, ctx);
        }
        if self.is_home {
            self.revoke_all_leases(ctx);
        }
        if policy.model != self.policy.model {
            self.repl = replication_for(policy.model);
        }
        let broadcast = self.is_home;
        self.policy = policy.clone();
        if broadcast {
            let peers: Vec<NodeId> = self.peers.iter().map(|p| p.node).collect();
            self.comm
                .multicast(ctx, peers, &CoherenceMsg::PolicyUpdate { policy });
            // Ship the backlog under the incoming policy. Writes
            // admitted while the old policy was lazy (or admitted
            // concurrently with this switch — over TCP the policy frame
            // and a client write ride different connections, so either
            // order is possible) would otherwise sit unsent until the
            // old lazy timer fires.
            self.propagate_flushed(ctx);
        }
        self.start(ctx);
    }

    /// Records this replica's final digest into the shared history.
    pub fn record_final_digest(&self) {
        self.history
            .lock()
            .record_final_digest(self.store_id, self.final_digest());
    }
}

impl std::fmt::Debug for StoreReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreReplica")
            .field("object", &self.object)
            .field("store", &self.store_id)
            .field("class", &self.class)
            .field("protocol", &self.repl.name())
            .field("applied", &self.applied)
            .field("buffered", &self.buffered.len())
            .field("queued_reads", &self.queued_reads.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use globe_net::{Event, SimNet, Topology};

    use crate::{shared_history, shared_metrics, NetMsg, RegisterDoc, ReplicationPolicy};

    use super::*;

    /// A join that lands on a deposed ex-home (stale joiner record) must
    /// be forwarded to the sequencer the replica follows, not dropped —
    /// joins are one-shot and the joiner would otherwise never receive
    /// its state transfer.
    #[test]
    fn non_home_forwards_misrouted_join_to_its_home() {
        let mut net = SimNet::new(Topology::lan(), 0);
        let ex_home = net.add_node();
        let home = net.add_node();
        let joiner = net.add_node();
        let mut replica = StoreReplica::new(StoreConfig {
            object: ObjectId::new(7),
            store_id: StoreId::new(1),
            class: StoreClass::Permanent,
            policy: ReplicationPolicy::whiteboard(),
            home_node: home,
            home_store: StoreId::new(0),
            is_home: false,
            peers: vec![PeerStore {
                node: home,
                store: StoreId::new(0),
                class: StoreClass::Permanent,
            }],
            semantics: Box::new(RegisterDoc::new()),
            history: shared_history(),
            metrics: shared_metrics(),
            detector: DetectorConfig::default(),
            tuning: StoreTuning::default(),
            storage: StorageSpec::default(),
        });

        let forwarded = std::rc::Rc::new(std::cell::Cell::new(false));
        {
            let forwarded = forwarded.clone();
            net.set_handler(home, move |event, _ctx| {
                if let Event::Message { payload, .. } = event {
                    let env: NetMsg = globe_wire::from_bytes(&payload).unwrap();
                    if let CoherenceMsg::JoinRequest { node, .. } = env.msg {
                        assert_eq!(node, joiner);
                        forwarded.set(true);
                    }
                }
            });
        }
        net.with_ctx(ex_home, |ctx| {
            replica.handle_join(
                joiner,
                StoreId::new(9),
                StoreClass::Permanent,
                VersionVector::new(),
                ctx,
            );
        });
        net.run_until_quiescent();
        assert!(forwarded.get(), "misrouted join must reach the real home");
        // The deposed replica itself must not have adopted the joiner.
        assert!(replica.peers().iter().all(|p| p.node != joiner));
    }
}
