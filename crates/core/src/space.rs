//! Address spaces: the unit of distribution.
//!
//! "A local object resides in a single address space and communicates
//! with local objects in other address spaces" (§2). An [`AddressSpace`]
//! hosts one [`ControlObject`] per distributed object it participates in
//! and routes network events to them.
//!
//! Since the detector consolidation the space also owns the node-level
//! failure detector ([`crate::lifecycle::NodeDetector`]): one heartbeat
//! stream per *node pair*, shared by every object the pair co-hosts,
//! with suspicion fanned out to each local control object. Detector
//! frames travel under a reserved *node-scope* envelope id (above
//! [`NODE_SCOPE_BASE`]) so they are routed to the space — never to any
//! one object's control object.

use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

use bytes::Bytes;
use globe_naming::ObjectId;
use globe_net::{Event, NetCtx, NodeId, SimTime, TimerId, TimerToken};

use crate::lifecycle::{DetectorConfig, NodeDetector, StoreHealth};
use crate::{CoherenceMsg, ControlObject, NetMsg, SharedMetrics, TimerKind};

/// First envelope object id reserved for node-scoped traffic (detector
/// frames). Ids `NODE_SCOPE_BASE + k` address the node-level machinery
/// of routing scope `k` — on the sharded runtime, lane `k`'s copy of
/// the node — rather than any distributed object. Chosen so a timer
/// token (`raw * 8 + kind`) still fits in a `u64`.
pub(crate) const NODE_SCOPE_BASE: u64 = 1 << 60;

/// Encodes `(object, timer kind)` into a network timer token.
pub(crate) fn timer_token(object: ObjectId, kind: TimerKind) -> TimerToken {
    TimerToken(object.raw() * 8 + kind as u64)
}

/// Decodes a timer token back into `(object, timer kind)`.
pub(crate) fn decode_timer(token: TimerToken) -> (ObjectId, Option<TimerKind>) {
    (ObjectId::new(token.0 / 8), TimerKind::from_raw(token.0 % 8))
}

/// A [`NetCtx`] wrapper for a partitioned node: timers keep flowing (a
/// "partitioned" node is isolated, not stopped), but every outbound
/// message is dropped on the floor, exactly like a dead link.
struct MutedCtx<'a> {
    inner: &'a mut dyn NetCtx,
}

impl NetCtx for MutedCtx<'_> {
    fn node(&self) -> NodeId {
        self.inner.node()
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn send(&mut self, _to: NodeId, _payload: Bytes) {
        // Isolated: the frame never reaches the wire.
    }
    fn set_timer(&mut self, delay: Duration, token: TimerToken) -> TimerId {
        self.inner.set_timer(delay, token)
    }
    fn cancel_timer(&mut self, id: TimerId) {
        self.inner.cancel_timer(id)
    }
}

/// One process/node participating in the Globe runtime.
pub struct AddressSpace {
    node: NodeId,
    objects: HashMap<ObjectId, ControlObject>,
    metrics: SharedMetrics,
    detector: NodeDetector,
    /// This space's node-scope envelope id (`NODE_SCOPE_BASE + scope`):
    /// detector replies echo the *sender's* scope so they route back to
    /// the sender's copy of the space on sharded runtimes.
    scope: ObjectId,
    detector_armed: bool,
    /// Fault-injection flag: while set, inbound messages are dropped
    /// and outbound sends are muted; timers still fire so the node's
    /// protocol machinery survives the partition and can rejoin.
    partitioned: bool,
}

impl AddressSpace {
    /// Creates an empty address space for `node` in routing scope 0
    /// (sim and TCP runtimes have exactly one copy of each space).
    /// Malformed frames dropped on the receive path are counted into
    /// `metrics`.
    pub fn new(node: NodeId, metrics: SharedMetrics) -> Self {
        AddressSpace::with_scope(node, metrics, DetectorConfig::disabled(), 0)
    }

    /// Creates an empty address space with an explicit failure-detector
    /// configuration and routing scope (the sharded runtime passes the
    /// owning lane's index so detector replies route back to it).
    pub fn with_scope(
        node: NodeId,
        metrics: SharedMetrics,
        detector: DetectorConfig,
        scope: u64,
    ) -> Self {
        AddressSpace {
            node,
            objects: HashMap::new(),
            metrics,
            detector: NodeDetector::new(detector),
            scope: ObjectId::new(NODE_SCOPE_BASE + scope),
            detector_armed: false,
            partitioned: false,
        }
    }

    /// This space's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs (or replaces) the local object for `object`.
    pub fn install(&mut self, control: ControlObject) {
        self.objects.insert(control.object(), control);
    }

    /// The local object for `object`, if installed.
    pub fn control(&self, object: ObjectId) -> Option<&ControlObject> {
        self.objects.get(&object)
    }

    /// Mutable access to the local object for `object`.
    pub fn control_mut(&mut self, object: ObjectId) -> Option<&mut ControlObject> {
        self.objects.get_mut(&object)
    }

    /// Ids of all objects with a local object here.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }

    /// The node-level failure detector's opinion of `node`, plus when it
    /// last proved it was alive. Backends assemble membership views from
    /// the home node's answer.
    pub fn node_health(&self, node: NodeId) -> (StoreHealth, Option<SimTime>) {
        (self.detector.health(node), self.detector.last_heard(node))
    }

    /// Isolates (or heals) this space: see the `partitioned` field.
    pub fn set_partitioned(&mut self, isolated: bool) {
        self.partitioned = isolated;
    }

    /// Whether this space is currently isolated by fault injection.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Arms this object's protocol timers *and* the space's node-level
    /// heartbeat timer (once), then reports whether the detector runs.
    /// Every backend calls this instead of bare `control.start(ctx)`
    /// when it installs or restarts a store.
    pub fn start_object(&mut self, object: ObjectId, ctx: &mut dyn NetCtx) {
        if let Some(control) = self.objects.get_mut(&object) {
            control.start(ctx);
        }
        self.ensure_detector(ctx);
    }

    /// Arms the node-scope heartbeat timer if the detector is enabled
    /// and any local store wants monitoring. Idempotent.
    pub fn ensure_detector(&mut self, ctx: &mut dyn NetCtx) {
        let Some(period) = self.detector.config().period else {
            return;
        };
        if self.detector_armed {
            return;
        }
        let mut monitored = BTreeSet::new();
        for control in self.objects.values() {
            control.heartbeat_targets(&mut monitored);
        }
        if monitored.is_empty() {
            return;
        }
        ctx.set_timer(period, timer_token(self.scope, TimerKind::Heartbeat));
        self.detector_armed = true;
    }

    /// One node-level detector round: dedupe every local store's
    /// monitoring interest into a node set, advance suspicion state,
    /// fan transitions out to the local objects, and ping each
    /// monitored node once — O(peers) frames however many objects the
    /// pairs share.
    fn heartbeat_round(&mut self, ctx: &mut dyn NetCtx) {
        let Some(period) = self.detector.config().period else {
            return;
        };
        let mut monitored = BTreeSet::new();
        for control in self.objects.values() {
            control.heartbeat_targets(&mut monitored);
        }
        let outcome = self.detector.round(&monitored, ctx.now());
        for &node in &outcome.newly_suspect {
            for control in self.objects.values_mut() {
                control.on_node_suspect(node, ctx);
            }
        }
        if !outcome.confirmed_down.is_empty() {
            // The election's liveness filter reads this detector's
            // verdicts; split the borrows so controls can consult it
            // while being driven.
            let detector = &self.detector;
            let alive = |node: NodeId| detector.health(node) == StoreHealth::Alive;
            for &node in &outcome.confirmed_down {
                for control in self.objects.values_mut() {
                    control.on_node_down(node, &alive, ctx);
                }
            }
        }
        let seq = self.detector.next_seq();
        let ping = globe_wire::to_bytes(&NetMsg {
            object: self.scope,
            msg: CoherenceMsg::NodePing { seq },
        });
        for &node in &outcome.ping {
            self.metrics.lock().record_msg("NodePing", ping.len());
            ctx.send(node, ping.clone());
        }
        if !monitored.is_empty() {
            ctx.set_timer(period, timer_token(self.scope, TimerKind::Heartbeat));
        } else {
            self.detector_armed = false;
        }
    }

    /// Handles a node-scoped frame: record proof of life (any frame a
    /// peer sends is one), fan a recovery out to the local objects, and
    /// answer pings. Replies echo the *sender's* scope id so they route
    /// back to the copy of the space that sent the ping.
    fn handle_node_msg(
        &mut self,
        from: NodeId,
        scope: ObjectId,
        msg: CoherenceMsg,
        ctx: &mut dyn NetCtx,
    ) {
        let recovered = self.detector.observe(from, ctx.now());
        if recovered {
            for control in self.objects.values_mut() {
                control.on_node_recovered(from, ctx);
            }
        }
        if let CoherenceMsg::NodePing { seq } = msg {
            let pong = globe_wire::to_bytes(&NetMsg {
                object: scope,
                msg: CoherenceMsg::NodePong { seq },
            });
            self.metrics.lock().record_msg("NodePong", pong.len());
            ctx.send(from, pong);
        }
    }

    /// Routes one network event to the owning control object (or, for
    /// node-scoped frames and the heartbeat timer, to the node-level
    /// detector).
    pub fn handle_event(&mut self, event: Event, ctx: &mut dyn NetCtx) {
        if self.partitioned {
            match event {
                // Isolated: inbound traffic never arrives…
                Event::Message { .. } => return,
                // …but local timers still fire, with sends muted.
                Event::Timer { .. } => {
                    let mut muted = MutedCtx { inner: ctx };
                    return self.handle_event_inner(event, &mut muted);
                }
            }
        }
        self.handle_event_inner(event, ctx)
    }

    fn handle_event_inner(&mut self, event: Event, ctx: &mut dyn NetCtx) {
        match event {
            Event::Message { from, payload } => {
                let Ok(env) = globe_wire::from_bytes::<NetMsg>(&payload) else {
                    // Corrupt frame: drop, like a bad datagram — but make
                    // the drop observable instead of silent.
                    self.metrics.lock().record_malformed_frame();
                    return;
                };
                if env.object.raw() >= NODE_SCOPE_BASE {
                    self.handle_node_msg(from, env.object, env.msg, ctx);
                    return;
                }
                if let Some(control) = self.objects.get_mut(&env.object) {
                    control.handle_message(from, env.msg, ctx);
                }
            }
            Event::Timer { token } => {
                let (object, kind) = decode_timer(token);
                let Some(kind) = kind else { return };
                if object.raw() >= NODE_SCOPE_BASE {
                    if kind == TimerKind::Heartbeat {
                        self.heartbeat_round(ctx);
                    }
                    return;
                }
                if let Some(control) = self.objects.get_mut(&object) {
                    control.handle_timer(kind, ctx);
                }
            }
        }
    }
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddressSpace")
            .field("node", &self.node)
            .field("objects", &self.objects.len())
            .field("partitioned", &self.partitioned)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_tokens_roundtrip() {
        for raw in [0u64, 1, 7, 100, NODE_SCOPE_BASE, NODE_SCOPE_BASE + 3] {
            let object = ObjectId::new(raw);
            for kind in [
                TimerKind::LazyPush,
                TimerKind::PullPoll,
                TimerKind::DemandRetry,
                TimerKind::Heartbeat,
                TimerKind::BatchFlush,
                TimerKind::LeaseRenew,
            ] {
                let token = timer_token(object, kind);
                let (obj, decoded) = decode_timer(token);
                assert_eq!(obj, object);
                assert_eq!(decoded, Some(kind));
            }
        }
    }

    #[test]
    fn unknown_kind_decodes_none() {
        let (_, kind) = decode_timer(TimerToken(7)); // kind bits = 7
        assert_eq!(kind, None);
    }
}
