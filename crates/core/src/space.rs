//! Address spaces: the unit of distribution.
//!
//! "A local object resides in a single address space and communicates
//! with local objects in other address spaces" (§2). An [`AddressSpace`]
//! hosts one [`ControlObject`] per distributed object it participates in
//! and routes network events to them.

use std::collections::HashMap;

use globe_naming::ObjectId;
use globe_net::{Event, NetCtx, NodeId, TimerToken};

use crate::{ControlObject, NetMsg, SharedMetrics, TimerKind};

/// Encodes `(object, timer kind)` into a network timer token.
pub(crate) fn timer_token(object: ObjectId, kind: TimerKind) -> TimerToken {
    TimerToken(object.raw() * 8 + kind as u64)
}

/// Decodes a timer token back into `(object, timer kind)`.
pub(crate) fn decode_timer(token: TimerToken) -> (ObjectId, Option<TimerKind>) {
    (ObjectId::new(token.0 / 8), TimerKind::from_raw(token.0 % 8))
}

/// One process/node participating in the Globe runtime.
pub struct AddressSpace {
    node: NodeId,
    objects: HashMap<ObjectId, ControlObject>,
    metrics: SharedMetrics,
}

impl AddressSpace {
    /// Creates an empty address space for `node`. Malformed frames
    /// dropped on the receive path are counted into `metrics`.
    pub fn new(node: NodeId, metrics: SharedMetrics) -> Self {
        AddressSpace {
            node,
            objects: HashMap::new(),
            metrics,
        }
    }

    /// This space's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs (or replaces) the local object for `object`.
    pub fn install(&mut self, control: ControlObject) {
        self.objects.insert(control.object(), control);
    }

    /// The local object for `object`, if installed.
    pub fn control(&self, object: ObjectId) -> Option<&ControlObject> {
        self.objects.get(&object)
    }

    /// Mutable access to the local object for `object`.
    pub fn control_mut(&mut self, object: ObjectId) -> Option<&mut ControlObject> {
        self.objects.get_mut(&object)
    }

    /// Ids of all objects with a local object here.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }

    /// Routes one network event to the owning control object.
    pub fn handle_event(&mut self, event: Event, ctx: &mut dyn NetCtx) {
        match event {
            Event::Message { from, payload } => {
                let Ok(env) = globe_wire::from_bytes::<NetMsg>(&payload) else {
                    // Corrupt frame: drop, like a bad datagram — but make
                    // the drop observable instead of silent.
                    self.metrics.lock().record_malformed_frame();
                    return;
                };
                if let Some(control) = self.objects.get_mut(&env.object) {
                    control.handle_message(from, env.msg, ctx);
                }
            }
            Event::Timer { token } => {
                let (object, kind) = decode_timer(token);
                let Some(kind) = kind else { return };
                if let Some(control) = self.objects.get_mut(&object) {
                    control.handle_timer(kind, ctx);
                }
            }
        }
    }
}

impl std::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AddressSpace")
            .field("node", &self.node)
            .field("objects", &self.objects.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_tokens_roundtrip() {
        for raw in [0u64, 1, 7, 100] {
            let object = ObjectId::new(raw);
            for kind in [
                TimerKind::LazyPush,
                TimerKind::PullPoll,
                TimerKind::DemandRetry,
            ] {
                let token = timer_token(object, kind);
                let (obj, decoded) = decode_timer(token);
                assert_eq!(obj, object);
                assert_eq!(decoded, Some(kind));
            }
        }
    }

    #[test]
    fn unknown_kind_decodes_none() {
        let (_, kind) = decode_timer(TimerToken(7)); // kind bits = 7
        assert_eq!(kind, None);
    }
}
