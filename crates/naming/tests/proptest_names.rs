//! Property tests for the naming layer: parse/display round-trips, wire
//! round-trips, prefix laws, and location-service determinism.

// Test-only crate: helper fns outside #[test] bodies may unwrap/expect
// (clippy's allow-unwrap-in-tests only covers #[test] functions).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use globe_coherence::StoreClass;
use globe_naming::{ContactRecord, LocationService, NameSpace, ObjectId, ObjectName};
use globe_net::{NodeId, RegionId};
use proptest::prelude::*;

fn arb_component() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9._-]{1,12}".prop_filter("non-empty", |s| !s.is_empty())
}

fn arb_name() -> impl Strategy<Value = ObjectName> {
    proptest::collection::vec(arb_component(), 1..6).prop_map(|parts| {
        format!("/{}", parts.join("/"))
            .parse()
            .expect("generated names are valid")
    })
}

proptest! {
    #[test]
    fn display_parse_roundtrip(name in arb_name()) {
        let rendered = name.to_string();
        let reparsed: ObjectName = rendered.parse().unwrap();
        prop_assert_eq!(reparsed, name);
    }

    #[test]
    fn wire_roundtrip(name in arb_name()) {
        let bytes = globe_wire::to_bytes(&name);
        prop_assert_eq!(globe_wire::from_bytes::<ObjectName>(&bytes).unwrap(), name);
    }

    #[test]
    fn child_extends_prefix(name in arb_name(), component in arb_component()) {
        let child = name.child(&component).unwrap();
        prop_assert!(child.starts_with(&name));
        prop_assert_eq!(child.components().count(), name.components().count() + 1);
    }

    #[test]
    fn garbage_strings_never_panic(s in ".{0,64}") {
        let _ = s.parse::<ObjectName>();
    }

    #[test]
    fn namespace_register_resolve(names in proptest::collection::btree_set(arb_name(), 1..16)) {
        let mut ns = NameSpace::new();
        let mut ids = Vec::new();
        for name in &names {
            ids.push(ns.register(name.clone()).unwrap());
        }
        // All ids distinct; every name resolves back.
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), ids.len());
        for (name, id) in names.iter().zip(&ids) {
            prop_assert_eq!(ns.resolve(name).unwrap(), *id);
        }
        // Re-registration always fails.
        for name in &names {
            prop_assert!(ns.register(name.clone()).is_err());
        }
    }

    #[test]
    fn nearest_is_deterministic_and_valid(
        contacts in proptest::collection::vec((0u32..16, 0u8..3, 0u16..4), 1..12),
        from_region in 0u16..4,
    ) {
        let mut ls = LocationService::new();
        let object = ObjectId::new(1);
        for &(node, class, region) in &contacts {
            let class = match class {
                0 => StoreClass::Permanent,
                1 => StoreClass::ObjectInitiated,
                _ => StoreClass::ClientInitiated,
            };
            ls.register(object, ContactRecord {
                node: NodeId::new(node),
                class,
                region: RegionId::new(region),
            });
        }
        let a = ls.nearest(object, RegionId::new(from_region), None).unwrap();
        let b = ls.nearest(object, RegionId::new(from_region), None).unwrap();
        prop_assert_eq!(a, b, "selection must be deterministic");
        prop_assert!(ls.lookup(object).contains(&a));
        // If anything is in the caller's region, the choice must be too.
        let local_exists = ls.lookup(object).iter().any(|r| r.region == RegionId::new(from_region));
        if local_exists {
            prop_assert_eq!(a.region, RegionId::new(from_region));
        }
    }
}
