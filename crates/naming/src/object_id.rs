//! Globally unique object identifiers.

use std::fmt;

use bytes::{Buf, BufMut};
use globe_wire::{WireDecode, WireEncode, WireError};

/// Identifies one distributed shared object, worldwide.
///
/// The name service maps human-readable [`ObjectName`](crate::ObjectName)s
/// to `ObjectId`s; the location service maps `ObjectId`s to contact
/// addresses. Ids are assigned by [`crate::NameSpace::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Creates an object id from its raw value.
    pub const fn new(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl WireEncode for ObjectId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl WireDecode for ObjectId {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        Ok(ObjectId(u64::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_wire() {
        let id = ObjectId::new(17);
        assert_eq!(id.to_string(), "obj17");
        let b = globe_wire::to_bytes(&id);
        assert_eq!(globe_wire::from_bytes::<ObjectId>(&b).unwrap(), id);
    }
}
