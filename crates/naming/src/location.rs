//! The location service: object ids to contact addresses.
//!
//! "In order for a process to invoke an object's method, it must first
//! bind to that object by contacting it at one of the object's contact
//! points" (§2). A contact record names a node holding a replica, its
//! store class, and its region, so binding can pick the nearest replica
//! of an acceptable layer.

use std::collections::HashMap;
use std::fmt;

use globe_coherence::StoreClass;
use globe_net::{NodeId, RegionId};

use crate::ObjectId;

/// One contact point of a distributed object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContactRecord {
    /// The node hosting the replica.
    pub node: NodeId,
    /// The replica's store class.
    pub class: StoreClass,
    /// The region the node lives in.
    pub region: RegionId,
}

impl fmt::Display for ContactRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} ({})", self.node, self.region, self.class)
    }
}

/// Error returned by the location service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocationError {
    /// No contact points are registered for the object.
    NoContacts(ObjectId),
}

impl fmt::Display for LocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocationError::NoContacts(id) => {
                write!(f, "no contact points registered for {id}")
            }
        }
    }
}

impl std::error::Error for LocationError {}

/// Tracks where each object's replicas can be contacted.
///
/// # Examples
///
/// ```
/// use globe_coherence::StoreClass;
/// use globe_naming::{ContactRecord, LocationService, ObjectId};
/// use globe_net::{NodeId, RegionId};
///
/// let mut ls = LocationService::new();
/// let obj = ObjectId::new(1);
/// ls.register(obj, ContactRecord {
///     node: NodeId::new(0),
///     class: StoreClass::Permanent,
///     region: RegionId::new(0),
/// });
/// let contact = ls.nearest(obj, RegionId::new(0), None).unwrap();
/// assert_eq!(contact.node, NodeId::new(0));
/// ```
#[derive(Debug, Default)]
pub struct LocationService {
    contacts: HashMap<ObjectId, Vec<ContactRecord>>,
}

impl LocationService {
    /// An empty location service.
    pub fn new() -> Self {
        LocationService::default()
    }

    /// Adds a contact point for `object` (duplicates by node replaced —
    /// a node hosts at most one replica of a given object).
    pub fn register(&mut self, object: ObjectId, record: ContactRecord) {
        let records = self.contacts.entry(object).or_default();
        if let Some(existing) = records.iter_mut().find(|r| r.node == record.node) {
            *existing = record;
        } else {
            records.push(record);
        }
    }

    /// Removes the contact point at `node` for `object`.
    pub fn unregister(&mut self, object: ObjectId, node: NodeId) {
        if let Some(records) = self.contacts.get_mut(&object) {
            records.retain(|r| r.node != node);
        }
    }

    /// All contact points for `object`, in registration order.
    pub fn lookup(&self, object: ObjectId) -> &[ContactRecord] {
        self.contacts.get(&object).map_or(&[], Vec::as_slice)
    }

    /// The best contact for a client in `from_region`, optionally
    /// restricted to one store class.
    ///
    /// Preference order: same region before other regions, then lower
    /// store layer (permanent first) within a region, then lowest node id
    /// for determinism.
    ///
    /// # Errors
    ///
    /// Returns [`LocationError::NoContacts`] if nothing matches.
    pub fn nearest(
        &self,
        object: ObjectId,
        from_region: RegionId,
        class: Option<StoreClass>,
    ) -> Result<ContactRecord, LocationError> {
        self.lookup(object)
            .iter()
            .filter(|r| class.is_none_or(|c| r.class == c))
            .min_by_key(|r| (r.region != from_region, r.class.layer(), r.node))
            .copied()
            .ok_or(LocationError::NoContacts(object))
    }

    /// The closest contact of the *deepest* available layer — what a
    /// browser does by default: prefer a nearby cache or mirror over the
    /// faraway permanent store.
    ///
    /// # Errors
    ///
    /// Returns [`LocationError::NoContacts`] if nothing is registered.
    pub fn nearest_any_layer(
        &self,
        object: ObjectId,
        from_region: RegionId,
    ) -> Result<ContactRecord, LocationError> {
        self.lookup(object)
            .iter()
            .min_by_key(|r| {
                (
                    r.region != from_region,
                    u8::MAX - r.class.layer(), // deeper layer preferred
                    r.node,
                )
            })
            .copied()
            .ok_or(LocationError::NoContacts(object))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, class: StoreClass, region: u16) -> ContactRecord {
        ContactRecord {
            node: NodeId::new(node),
            class,
            region: RegionId::new(region),
        }
    }

    #[test]
    fn nearest_prefers_same_region_then_layer() {
        let mut ls = LocationService::new();
        let obj = ObjectId::new(1);
        ls.register(obj, rec(0, StoreClass::Permanent, 0));
        ls.register(obj, rec(1, StoreClass::ObjectInitiated, 1));
        ls.register(obj, rec(2, StoreClass::ClientInitiated, 1));
        // From region 1: the mirror wins over the faraway server.
        let got = ls.nearest(obj, RegionId::new(1), None).unwrap();
        assert_eq!(got.node, NodeId::new(1));
        // From region 0: the permanent store wins.
        let got = ls.nearest(obj, RegionId::new(0), None).unwrap();
        assert_eq!(got.node, NodeId::new(0));
    }

    #[test]
    fn nearest_with_class_filter() {
        let mut ls = LocationService::new();
        let obj = ObjectId::new(1);
        ls.register(obj, rec(0, StoreClass::Permanent, 0));
        ls.register(obj, rec(1, StoreClass::ObjectInitiated, 1));
        let got = ls
            .nearest(obj, RegionId::new(1), Some(StoreClass::Permanent))
            .unwrap();
        assert_eq!(got.node, NodeId::new(0));
        assert!(ls
            .nearest(obj, RegionId::new(0), Some(StoreClass::ClientInitiated))
            .is_err());
    }

    #[test]
    fn nearest_any_layer_prefers_deepest() {
        let mut ls = LocationService::new();
        let obj = ObjectId::new(1);
        ls.register(obj, rec(0, StoreClass::Permanent, 0));
        ls.register(obj, rec(1, StoreClass::ClientInitiated, 0));
        let got = ls.nearest_any_layer(obj, RegionId::new(0)).unwrap();
        assert_eq!(got.node, NodeId::new(1), "cache preferred over server");
    }

    #[test]
    fn register_replaces_per_node_and_unregister_removes() {
        let mut ls = LocationService::new();
        let obj = ObjectId::new(1);
        ls.register(obj, rec(0, StoreClass::Permanent, 0));
        ls.register(obj, rec(0, StoreClass::ObjectInitiated, 2));
        assert_eq!(ls.lookup(obj).len(), 1);
        assert_eq!(ls.lookup(obj)[0].class, StoreClass::ObjectInitiated);
        ls.unregister(obj, NodeId::new(0));
        assert!(ls.lookup(obj).is_empty());
        assert!(ls.nearest(obj, RegionId::new(0), None).is_err());
    }
}
