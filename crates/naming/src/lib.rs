//! Globe support services: naming and location.
//!
//! Globe separates a worldwide, human-readable *name space* from a
//! *location service* that maps object ids to contact addresses; binding
//! to an object resolves the name, then picks a contact point — normally
//! the nearest replica of an acceptable store layer (§2: "it must first
//! bind to that object by contacting it at one of the object's contact
//! points").
//!
//! # Examples
//!
//! ```
//! use globe_coherence::StoreClass;
//! use globe_naming::{ContactRecord, LocationService, NameSpace};
//! use globe_net::{NodeId, RegionId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut names = NameSpace::new();
//! let mut locations = LocationService::new();
//! let id = names.register("/conf/icdcs98".parse()?)?;
//! locations.register(id, ContactRecord {
//!     node: NodeId::new(0),
//!     class: StoreClass::Permanent,
//!     region: RegionId::new(0),
//! });
//! let id2 = names.resolve(&"/conf/icdcs98".parse()?)?;
//! assert_eq!(id, id2);
//! assert_eq!(locations.lookup(id2).len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod location;
mod name;
mod namespace;
mod object_id;

pub use location::{ContactRecord, LocationError, LocationService};
pub use name::{ObjectName, ParseNameError};
pub use namespace::{NameError, NameSpace};
pub use object_id::ObjectId;
