//! The name service: hierarchical names to object ids.

use std::collections::BTreeMap;
use std::fmt;

use crate::{ObjectId, ObjectName};

/// Error returned by [`NameSpace`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// The name is already bound to an object.
    AlreadyBound(ObjectName),
    /// The name is not bound.
    NotFound(ObjectName),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::AlreadyBound(n) => write!(f, "name {n} is already bound"),
            NameError::NotFound(n) => write!(f, "name {n} is not bound"),
        }
    }
}

impl std::error::Error for NameError {}

/// Maps worldwide object names to object ids, Globe's name service.
///
/// # Examples
///
/// ```
/// use globe_naming::{NameSpace, ObjectName};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ns = NameSpace::new();
/// let name: ObjectName = "/conf/icdcs98".parse()?;
/// let id = ns.register(name.clone())?;
/// assert_eq!(ns.resolve(&name)?, id);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NameSpace {
    bindings: BTreeMap<ObjectName, ObjectId>,
    next_id: u64,
}

impl NameSpace {
    /// An empty name space.
    pub fn new() -> Self {
        NameSpace::default()
    }

    /// Binds `name` to a freshly allocated object id.
    ///
    /// # Errors
    ///
    /// Returns [`NameError::AlreadyBound`] if the name is taken.
    pub fn register(&mut self, name: ObjectName) -> Result<ObjectId, NameError> {
        if self.bindings.contains_key(&name) {
            return Err(NameError::AlreadyBound(name));
        }
        let id = ObjectId::new(self.next_id);
        self.next_id += 1;
        self.bindings.insert(name, id);
        Ok(id)
    }

    /// Resolves a name to its object id.
    ///
    /// # Errors
    ///
    /// Returns [`NameError::NotFound`] if the name is unbound.
    pub fn resolve(&self, name: &ObjectName) -> Result<ObjectId, NameError> {
        self.bindings
            .get(name)
            .copied()
            .ok_or_else(|| NameError::NotFound(name.clone()))
    }

    /// Removes a binding, returning its object id.
    ///
    /// # Errors
    ///
    /// Returns [`NameError::NotFound`] if the name is unbound.
    pub fn unregister(&mut self, name: &ObjectName) -> Result<ObjectId, NameError> {
        self.bindings
            .remove(name)
            .ok_or_else(|| NameError::NotFound(name.clone()))
    }

    /// All bindings under `prefix` (inclusive), in name order.
    pub fn list(&self, prefix: &ObjectName) -> Vec<(&ObjectName, ObjectId)> {
        self.bindings
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(name, &id)| (name, id))
            .collect()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the name space is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> ObjectName {
        s.parse().unwrap()
    }

    #[test]
    fn register_resolve_unregister() {
        let mut ns = NameSpace::new();
        let id = ns.register(n("/a/b")).unwrap();
        assert_eq!(ns.resolve(&n("/a/b")).unwrap(), id);
        assert_eq!(
            ns.register(n("/a/b")),
            Err(NameError::AlreadyBound(n("/a/b")))
        );
        assert_eq!(ns.unregister(&n("/a/b")).unwrap(), id);
        assert_eq!(ns.resolve(&n("/a/b")), Err(NameError::NotFound(n("/a/b"))));
    }

    #[test]
    fn ids_are_unique() {
        let mut ns = NameSpace::new();
        let a = ns.register(n("/a")).unwrap();
        let b = ns.register(n("/b")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_listing() {
        let mut ns = NameSpace::new();
        ns.register(n("/conf/icdcs98")).unwrap();
        ns.register(n("/conf/icdcs98/cfp")).unwrap();
        ns.register(n("/home/alice")).unwrap();
        let under_conf = ns.list(&n("/conf"));
        assert_eq!(under_conf.len(), 2);
        assert_eq!(ns.list(&n("/home")).len(), 1);
        assert_eq!(ns.len(), 3);
    }
}
