//! Hierarchical object names.

use std::fmt;

use bytes::{Buf, BufMut};
use globe_wire::{WireDecode, WireEncode, WireError};

/// Error returned when parsing an [`ObjectName`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNameError {
    /// The name did not start with `/`.
    NotAbsolute,
    /// A path component was empty (`//`) or the whole name was `/`-only.
    EmptyComponent,
    /// A component contained a disallowed character.
    BadCharacter(char),
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::NotAbsolute => write!(f, "object names must start with '/'"),
            ParseNameError::EmptyComponent => {
                write!(f, "object names may not have empty components")
            }
            ParseNameError::BadCharacter(c) => {
                write!(f, "character {c:?} not allowed in object names")
            }
        }
    }
}

impl std::error::Error for ParseNameError {}

/// A worldwide, human-readable object name, e.g. `/conf/icdcs98/home`.
///
/// Globe's name service maps these to object handles; this reproduction
/// keeps the same hierarchical shape so the examples read like the paper.
///
/// # Examples
///
/// ```
/// use globe_naming::ObjectName;
///
/// # fn main() -> Result<(), globe_naming::ParseNameError> {
/// let name: ObjectName = "/conf/icdcs98/home".parse()?;
/// assert_eq!(name.components().count(), 3);
/// assert!(name.starts_with(&"/conf".parse()?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectName {
    components: Vec<String>,
}

impl ObjectName {
    /// Parses an absolute name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if the name is not absolute, has empty
    /// components, or uses characters outside `[a-zA-Z0-9._-]`.
    pub fn parse(s: &str) -> Result<Self, ParseNameError> {
        let Some(rest) = s.strip_prefix('/') else {
            return Err(ParseNameError::NotAbsolute);
        };
        if rest.is_empty() {
            return Err(ParseNameError::EmptyComponent);
        }
        let mut components = Vec::new();
        for part in rest.split('/') {
            if part.is_empty() {
                return Err(ParseNameError::EmptyComponent);
            }
            if let Some(bad) = part
                .chars()
                .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
            {
                return Err(ParseNameError::BadCharacter(bad));
            }
            components.push(part.to_string());
        }
        Ok(ObjectName { components })
    }

    /// The path components, in order.
    pub fn components(&self) -> impl Iterator<Item = &str> + '_ {
        self.components.iter().map(String::as_str)
    }

    /// Whether `prefix` is an ancestor of (or equal to) this name.
    pub fn starts_with(&self, prefix: &ObjectName) -> bool {
        self.components.len() >= prefix.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }

    /// The name with one more trailing component.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if `component` is invalid.
    pub fn child(&self, component: &str) -> Result<ObjectName, ParseNameError> {
        let mut s = self.to_string();
        s.push('/');
        s.push_str(component);
        ObjectName::parse(&s)
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for part in &self.components {
            write!(f, "/{part}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for ObjectName {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ObjectName::parse(s)
    }
}

impl WireEncode for ObjectName {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.components.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.components.encoded_len()
    }
}

impl WireDecode for ObjectName {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, WireError> {
        let components = Vec::<String>::decode(buf)?;
        if components.is_empty() {
            return Err(WireError::Invalid("object name with no components"));
        }
        Ok(ObjectName { components })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays() {
        let n = ObjectName::parse("/conf/icdcs98/home").unwrap();
        assert_eq!(n.to_string(), "/conf/icdcs98/home");
        assert_eq!(
            n.components().collect::<Vec<_>>(),
            vec!["conf", "icdcs98", "home"]
        );
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(
            ObjectName::parse("relative/name"),
            Err(ParseNameError::NotAbsolute)
        );
        assert_eq!(ObjectName::parse("/"), Err(ParseNameError::EmptyComponent));
        assert_eq!(
            ObjectName::parse("/a//b"),
            Err(ParseNameError::EmptyComponent)
        );
        assert_eq!(
            ObjectName::parse("/a/b c"),
            Err(ParseNameError::BadCharacter(' '))
        );
    }

    #[test]
    fn prefix_and_child() {
        let root: ObjectName = "/conf".parse().unwrap();
        let page = root.child("icdcs98").unwrap();
        assert!(page.starts_with(&root));
        assert!(!root.starts_with(&page));
        assert!(page.starts_with(&page));
        assert!(root.child("bad name").is_err());
    }

    #[test]
    fn wire_roundtrip() {
        let n: ObjectName = "/a/b-c/d.e_f".parse().unwrap();
        let bytes = globe_wire::to_bytes(&n);
        assert_eq!(globe_wire::from_bytes::<ObjectName>(&bytes).unwrap(), n);
    }
}
