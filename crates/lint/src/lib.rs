//! `globe-lint` — the repo-native static-analysis pass.
//!
//! Four rules, all built on one hand-rolled lexer (strings, char
//! literals, and comments are skipped correctly — no regex-over-source
//! false positives):
//!
//! - **panic** — no `unwrap`/`expect`/`panic!`-family in non-test code
//!   of the protocol crates (`core`, `net`, `wire`, `coherence`);
//! - **time** — no raw `-`/`duration_since` on time-named operands
//!   outside the clock implementation (`net/src/time.rs`);
//! - **lock-order** — nested `.lock()` pairs in the runtime files must
//!   follow the partial order declared in `crates/lint/lock_order.toml`;
//! - **wire-frame** — every `CoherenceMsg` variant must have encode +
//!   decode arms with matching tags, proptest coverage, an
//!   ARCHITECTURE.md mention, and a trace story (or exemption) in
//!   `crates/lint/frame_trace.toml`.
//!
//! Suppression grammar: `// lint: allow(<rule>) — <reason>` on the
//! offending line or the line above. The reason is mandatory; a bare
//! allow is itself a finding. See `cargo run -p globe-lint -- --check`.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

use diag::{Diagnostic, Rule};
use rules::locks::LockConfig;
use rules::wire::WireInputs;

/// Crates whose `src/` trees are bound by the panic and time rules.
pub const PROTOCOL_CRATES: &[&str] = &["core", "net", "wire", "coherence"];

/// Files bound by the lock-order rule (workspace-relative).
pub const LOCK_FILES: &[&str] = &[
    "crates/core/src/tcp_runtime.rs",
    "crates/core/src/shard_runtime.rs",
    "crates/core/src/store_engine.rs",
    "crates/core/src/space.rs",
];

/// The clock implementation, exempt from the time rule (it is the one
/// place allowed to define subtraction).
const TIME_IMPL: &str = "crates/net/src/time.rs";

/// Runs every rule over the workspace at `root`. Returns findings
/// sorted by file then line; configuration errors are returned as
/// `Err` (a broken config must fail the gate, not pass it quietly).
pub fn run(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let lock_doc = read_doc(root, "crates/lint/lock_order.toml")?;
    let lock_cfg = LockConfig::from_doc(&lock_doc)?;
    let frame_cfg = read_doc(root, "crates/lint/frame_trace.toml")?;

    let mut diags = Vec::new();

    for krate in PROTOCOL_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        for file in rust_files(&src_dir) {
            let rel = rel_path(root, &file);
            let src = std::fs::read_to_string(&file).map_err(|e| format!("read {rel}: {e}"))?;
            let lexed = lexer::lex(&src);
            let mut file_diags = rules::panics::check(&rel, &lexed);
            if rel != TIME_IMPL {
                file_diags.extend(rules::time::check(&rel, &lexed));
            }
            if LOCK_FILES.contains(&rel.as_str()) {
                file_diags.extend(rules::locks::check(&rel, &lexed, &lock_cfg));
            }
            diags.extend(scan::apply_allows(&rel, &lexed, file_diags));
        }
    }

    // The wire rule is a cross-file check; allow comments do not apply
    // (a missing surface has no single line to hang an allow on —
    // exemptions live in frame_trace.toml instead).
    let messages = read_lexed(root, "crates/core/src/messages.rs")?;
    let proptest = read_lexed(root, "crates/core/tests/proptest_messages.rs")?;
    let trace_src = read(root, "crates/core/src/trace.rs")?;
    let arch_src = read(root, "docs/ARCHITECTURE.md")?;
    diags.extend(rules::wire::check(&WireInputs {
        messages: &messages,
        messages_path: "crates/core/src/messages.rs",
        proptest: &proptest,
        proptest_path: "crates/core/tests/proptest_messages.rs",
        trace_src: &trace_src,
        trace_path: "crates/core/src/trace.rs",
        arch_src: &arch_src,
        arch_path: "docs/ARCHITECTURE.md",
        frame_cfg: &frame_cfg,
        frame_cfg_path: "crates/lint/frame_trace.toml",
    }));

    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

/// Counts findings per rule, for the summary line.
pub fn summarize(diags: &[Diagnostic]) -> String {
    let count = |r: Rule| diags.iter().filter(|d| d.rule == r).count();
    format!(
        "{} finding(s): {} panic, {} time, {} lock-order, {} wire-frame",
        diags.len(),
        count(Rule::Panic),
        count(Rule::Time),
        count(Rule::LockOrder),
        count(Rule::WireFrame),
    )
}

fn read(root: &Path, rel: &str) -> Result<String, String> {
    std::fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))
}

fn read_lexed(root: &Path, rel: &str) -> Result<lexer::Lexed, String> {
    Ok(lexer::lex(&read(root, rel)?))
}

fn read_doc(root: &Path, rel: &str) -> Result<config::Doc, String> {
    config::Doc::parse(&read(root, rel)?).map_err(|e| format!("{rel}: {e}"))
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// All `.rs` files under `dir`, recursively, sorted for deterministic
/// output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}
